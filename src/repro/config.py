"""Framework configuration — the simulation analogue of the VHDL generics.

"The architecture of the controller is specified as a set of generics in
VHDL" (§I); "the word size used for the register file is adjustable, so the
interface can meet the requirements of the functional units while requiring
as small a portion of the FPGA as possible" (§II).  This dataclass is that
generic set: every framework component takes it at construction time, and
the word-size/register-count ablation benchmarks sweep it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class FrameworkConfig:
    """Static parameters of one framework instantiation."""

    #: Register word size in bits — "configurable in multiples of 32 bits" (§III).
    word_bits: int = 32
    #: Number of main data registers (instruction fields address up to 256).
    n_regs: int = 16
    #: Number of flag-vector registers.
    n_flag_regs: int = 8
    #: Width of one flag vector.
    flag_bits: int = 8
    #: Depth of the receiver/transmitter elastic FIFOs.
    transceiver_fifo_depth: int = 8
    #: Depth of the outbound message queue in the encoder stage.
    encoder_fifo_depth: int = 4
    #: Build the case-study units in their pipelined (performance-optimised)
    #: configuration instead of the area-optimised one.
    pipelined_units: bool = False
    #: Speak the sequence-numbered, checksummed frame format of
    #: :mod:`repro.messages.reliability` on both directions of the link.
    #: Required for recovery from injected/real link faults; costs one
    #: trailer word per frame.
    reliable_framing: bool = False
    #: Reliable mode only: cycles of channel silence after which a receiver
    #: stuck mid-frame force-drops one buffered word, so a damaged trailing
    #: frame cannot hold the resynchronisation scanner (and the quiescence
    #: probe) hostage.  Must exceed the slowest link's word spacing.
    resync_flush_cycles: int = 1024

    def __post_init__(self) -> None:
        if self.word_bits < 32 or self.word_bits % 32 != 0:
            raise ValueError(
                f"word_bits must be a positive multiple of 32, got {self.word_bits}"
            )
        if not 1 <= self.n_regs <= 256:
            raise ValueError("n_regs must be in [1, 256] (8-bit register fields)")
        if not 1 <= self.n_flag_regs <= 256:
            raise ValueError("n_flag_regs must be in [1, 256]")
        if not 1 <= self.flag_bits <= 32:
            raise ValueError("flag_bits must fit one channel word")
        if self.resync_flush_cycles < 1:
            raise ValueError("resync_flush_cycles must be positive")

    @property
    def data_words(self) -> int:
        """Channel words per register value (word framing length)."""
        return self.word_bits // 32

    @property
    def word_mask(self) -> int:
        return (1 << self.word_bits) - 1

    def with_(self, **kwargs) -> "FrameworkConfig":
        """Return a modified copy (sweep helper)."""
        return replace(self, **kwargs)


DEFAULT_CONFIG = FrameworkConfig()

"""Framework configuration — the simulation analogue of the VHDL generics.

"The architecture of the controller is specified as a set of generics in
VHDL" (§I); "the word size used for the register file is adjustable, so the
interface can meet the requirements of the functional units while requiring
as small a portion of the FPGA as possible" (§II).  This dataclass is that
generic set: every framework component takes it at construction time, and
the word-size/register-count ablation benchmarks sweep it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class FrameworkConfig:
    """Static parameters of one framework instantiation."""

    #: Register word size in bits — "configurable in multiples of 32 bits" (§III).
    word_bits: int = 32
    #: Number of main data registers (instruction fields address up to 256).
    n_regs: int = 16
    #: Number of flag-vector registers.
    n_flag_regs: int = 8
    #: Width of one flag vector.
    flag_bits: int = 8
    #: Depth of the receiver/transmitter elastic FIFOs.
    transceiver_fifo_depth: int = 8
    #: Depth of the outbound message queue in the encoder stage.
    encoder_fifo_depth: int = 4
    #: Build the case-study units in their pipelined (performance-optimised)
    #: configuration instead of the area-optimised one.
    pipelined_units: bool = False
    #: Speak the sequence-numbered, checksummed frame format of
    #: :mod:`repro.messages.reliability` on both directions of the link.
    #: Required for recovery from injected/real link faults; costs one
    #: trailer word per frame.
    reliable_framing: bool = False
    #: Reliable mode only: cycles of channel silence after which a receiver
    #: stuck mid-frame force-drops one buffered word, so a damaged trailing
    #: frame cannot hold the resynchronisation scanner (and the quiescence
    #: probe) hostage.  Must exceed the slowest link's word spacing.
    resync_flush_cycles: int = 1024
    #: Build the out-of-order issue engine (register renaming + issue queue)
    #: in place of the in-order dispatcher.  Off by default: the in-order
    #: path is constructed exactly as before — cycle- and VCD-identical.
    ooo: bool = False
    #: Issue-queue depth of the out-of-order engine (ignored when ``ooo``
    #: is off).  Also sizes the default physical register headroom.
    ooo_window: int = 8
    #: Physical data-register pool size for renaming (None → ``n_regs``
    #: plus ``2 * ooo_window`` headroom, capped at 256).  Ignored in-order.
    phys_regs: int | None = None
    #: Physical flag-register pool size (None → ``n_flag_regs`` plus
    #: ``2 * ooo_window`` headroom, capped at 256).  Ignored in-order.
    phys_flag_regs: int | None = None

    def __post_init__(self) -> None:
        if self.word_bits < 32 or self.word_bits % 32 != 0:
            raise ValueError(
                f"word_bits must be a positive multiple of 32, got {self.word_bits}"
            )
        if not 1 <= self.n_regs <= 256:
            raise ValueError("n_regs must be in [1, 256] (8-bit register fields)")
        if not 1 <= self.n_flag_regs <= 256:
            raise ValueError("n_flag_regs must be in [1, 256]")
        if not 1 <= self.flag_bits <= 32:
            raise ValueError("flag_bits must fit one channel word")
        if self.resync_flush_cycles < 1:
            raise ValueError("resync_flush_cycles must be positive")
        if self.ooo_window < 1:
            raise ValueError("ooo_window must be at least 1")
        if self.phys_regs is not None and not (
            self.n_regs <= self.phys_regs <= 256
        ):
            raise ValueError("phys_regs must lie in [n_regs, 256]")
        if self.phys_flag_regs is not None and not (
            self.n_flag_regs <= self.phys_flag_regs <= 256
        ):
            raise ValueError("phys_flag_regs must lie in [n_flag_regs, 256]")
        if self.ooo:
            # The rename accept gate needs room for one instruction's worst
            # case (two data destinations, one flag destination); without the
            # headroom the engine could stall forever waiting for a free
            # physical register that cannot exist.
            if self.data_pool_size < self.n_regs + 2:
                raise ValueError(
                    "ooo requires at least 2 spare physical data registers "
                    "(raise phys_regs or lower n_regs)"
                )
            if self.flag_pool_size < self.n_flag_regs + 1:
                raise ValueError(
                    "ooo requires at least 1 spare physical flag register "
                    "(raise phys_flag_regs or lower n_flag_regs)"
                )

    @property
    def data_words(self) -> int:
        """Channel words per register value (word framing length)."""
        return self.word_bits // 32

    @property
    def word_mask(self) -> int:
        return (1 << self.word_bits) - 1

    @property
    def data_pool_size(self) -> int:
        """Physical data-register pool when renaming (== n_regs in-order)."""
        if not self.ooo:
            return self.n_regs
        if self.phys_regs is not None:
            return self.phys_regs
        return min(256, self.n_regs + 2 * self.ooo_window)

    @property
    def flag_pool_size(self) -> int:
        """Physical flag-register pool when renaming (== n_flag_regs in-order)."""
        if not self.ooo:
            return self.n_flag_regs
        if self.phys_flag_regs is not None:
            return self.phys_flag_regs
        return min(256, self.n_flag_regs + 2 * self.ooo_window)

    def with_(self, **kwargs) -> "FrameworkConfig":
        """Return a modified copy (sweep helper)."""
        return replace(self, **kwargs)


DEFAULT_CONFIG = FrameworkConfig()

"""The register-renaming table of the out-of-order issue engine.

Maps each architectural register (the index an instruction names) to a
physical register in the enlarged pool of :mod:`repro.rtm.regfile`.  At
reset the map is the identity, so slots ``0..n_regs-1`` hold the
architectural state and the remaining pool words are rename headroom.

Lifecycle of a physical register:

* **free** — on the free list, unmapped, unreferenced;
* **mapped** — allocated to an architectural destination at rename time
  (and locked in the scoreboard until its producing write commits);
* **pending-free** — its architectural register was renamed again by a
  younger instruction; it still holds the previous architectural value
  until every older in-flight reader has issued and its own producing
  write (if any) has committed, then it recycles back to the free list.

The table is passive: all state lives in object registers staged through
``.nxt`` by the out-of-order dispatcher's single sequential process, so
there is exactly one driver and updates within an edge compose in program
order.  When state protection is on, a :class:`repro.faults.RenameGuard`
shadows the two map registers with per-entry parity — map *writes* pass
through :meth:`guard corruption hooks <allocate>` and every map *query*
re-checks the shadow, exactly like the lock-manager scoreboard.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..config import FrameworkConfig
from ..fu.protocol import WriteSpace
from ..hdl import Component


class RenameTable(Component):
    """Architectural→physical register map with free/pending-free lists."""

    def __init__(
        self,
        name: str,
        config: FrameworkConfig,
        parent: Optional[Component] = None,
    ):
        super().__init__(name, parent)
        self.config = config
        self.n_arch = {
            WriteSpace.DATA: config.n_regs,
            WriteSpace.FLAG: config.n_flag_regs,
        }
        self.n_phys = {
            WriteSpace.DATA: config.data_pool_size,
            WriteSpace.FLAG: config.flag_pool_size,
        }
        # Identity map at reset: architectural index i → physical slot i.
        self._map = {
            WriteSpace.DATA: self.reg(
                "dmap", None, tuple(range(config.n_regs))
            ),
            WriteSpace.FLAG: self.reg(
                "fmap", None, tuple(range(config.n_flag_regs))
            ),
        }
        self._free = {
            WriteSpace.DATA: self.reg(
                "dfree",
                None,
                tuple(range(config.n_regs, self.n_phys[WriteSpace.DATA])),
            ),
            WriteSpace.FLAG: self.reg(
                "ffree",
                None,
                tuple(range(config.n_flag_regs, self.n_phys[WriteSpace.FLAG])),
            ),
        }
        # Per-physical-register count of queued (renamed, not yet issued)
        # readers — a pending-free register must outlive them all.
        self._readers = {
            WriteSpace.DATA: self.reg(
                "dreaders", None, (0,) * self.n_phys[WriteSpace.DATA]
            ),
            WriteSpace.FLAG: self.reg(
                "freaders", None, (0,) * self.n_phys[WriteSpace.FLAG]
            ),
        }
        self._pending = {
            WriteSpace.DATA: self.reg("dpending", None, ()),
            WriteSpace.FLAG: self.reg("fpending", None, ()),
        }
        #: optional rename-map parity guard (repro.faults.RenameGuard):
        #: allocations pass through it and every map query re-checks
        self._guard = None
        # A passive component still needs a process to be simulable alone.
        self.comb(lambda: None)

    # -- analysis metadata -------------------------------------------------------

    def pool_requirement(self) -> dict[WriteSpace, int]:
        """Smallest pool sizes provably exhaustion-free under the window.

        Inductive worst case: the dispatcher holds at most ``ooo_window``
        renamed in-flight instructions, and each allocates at most two
        data destinations and one flag destination
        (:meth:`~repro.rtm.ooo.OoODispatcher._rename`).  Beyond the
        ``n_arch`` mapped registers, live-but-unrecycled physical
        registers are therefore bounded by ``2 * window`` (data) and
        ``window`` (flags); a pool at least this large can never leave
        ``can_accept`` false forever, because the issue queue drains
        head-first and recycles as it goes.
        """
        window = self.config.ooo_window
        return {
            WriteSpace.DATA: self.n_arch[WriteSpace.DATA] + 2 * window,
            WriteSpace.FLAG: self.n_arch[WriteSpace.FLAG] + window,
        }

    # -- queries (combinational, latched state) ---------------------------------

    def phys(self, space: WriteSpace, arch: int) -> int:
        """Current physical register behind an architectural index."""
        if self._guard is not None:
            self._guard.check()
        return self._map[space].value[arch]

    def arch_view(self, space: WriteSpace) -> tuple[int, ...]:
        """The full architectural→physical map (checkpoint/backdoor path)."""
        if self._guard is not None:
            self._guard.check()
        return self._map[space].value

    def free_count(self, space: WriteSpace) -> int:
        return len(self._free[space].value)

    @property
    def can_accept(self) -> bool:
        """Enough free physical registers for one worst-case instruction
        (two data destinations plus one flag destination)."""
        return (
            len(self._free[WriteSpace.DATA].value) >= 2
            and len(self._free[WriteSpace.FLAG].value) >= 1
        )

    @property
    def has_pending(self) -> bool:
        """True while any physical register awaits recycling."""
        return bool(
            self._pending[WriteSpace.DATA].value
            or self._pending[WriteSpace.FLAG].value
        )

    # -- edge operations (called from the OoO dispatcher's seq process) ---------
    #
    # All read-modify-writes go through ``.nxt`` so the rename of one
    # instruction and the reader-drop/recycle of the same edge compose.

    def read_source(self, space: WriteSpace, arch: int) -> int:
        """Rename a source operand: map through the *current* table and
        claim a reader slot on the physical register."""
        if self._guard is not None:
            self._guard.check()
        phys = self._map[space].nxt[arch]
        readers = list(self._readers[space].nxt)
        readers[phys] += 1
        self._readers[space].nxt = tuple(readers)
        return phys

    def allocate(self, space: WriteSpace, arch: int) -> int:
        """Rename a destination: pop a fresh physical register, retire the
        old mapping to the pending-free list, and update the map."""
        if self._guard is not None:
            # Repair the committed map *before* deriving the new one from
            # it: building ``staged`` on top of a corrupt entry would both
            # capture an out-of-range index into the pending-free list and
            # launder the corruption into the guard's shadow via
            # ``on_rename`` (which trusts ``staged`` as the intended map).
            self._guard.check()
        free = self._free[space].nxt
        phys = free[0]
        self._free[space].nxt = free[1:]
        entries = list(self._map[space].nxt)
        old = entries[arch]
        entries[arch] = phys
        staged = tuple(entries)
        if self._guard is not None:
            staged = self._guard.on_rename(space, arch, staged)
        self._map[space].nxt = staged
        self._pending[space].nxt = self._pending[space].nxt + (old,)
        return phys

    def drop_reader(self, space: WriteSpace, phys: int) -> None:
        """Release a reader slot (the consuming instruction issued)."""
        readers = list(self._readers[space].nxt)
        readers[phys] -= 1
        self._readers[space].nxt = tuple(readers)

    def drop_readers(self, pairs: Iterable[tuple[WriteSpace, int]]) -> None:
        for space, phys in pairs:
            self.drop_reader(space, phys)

    def recycle(self, lockmgr) -> None:
        """Move drained pending-free registers back to the free list: no
        queued reader left and the producing write (if any) committed."""
        for space in (WriteSpace.DATA, WriteSpace.FLAG):
            pending = self._pending[space].nxt
            if not pending:
                continue
            readers = self._readers[space].nxt
            keep = []
            freed = []
            for phys in pending:
                if readers[phys] == 0 and not lockmgr.peek_locked(space, phys):
                    freed.append(phys)
                else:
                    keep.append(phys)
            if freed:
                self._pending[space].nxt = tuple(keep)
                self._free[space].nxt = self._free[space].nxt + tuple(freed)

"""The functional unit table.

Routes user instructions to functional-unit ports and carries each unit's
static *write profile* — which destination fields an instruction with a
given variety code actually writes.  Thesis Fig. 1.4 notes the lookup
tables are "implicitly synthesised into [the] Decoder" with "external table
module definitions [to] alleviate customisation": here the table is built
at system-assembly time from the registered units, and the write profile is
the per-unit decode information the dispatcher's lock manager needs (lock
exactly what will be written, no more).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..fu.base import FunctionalUnit
from ..isa.opcodes import ARITH_OUTPUT_DATA, Opcode

#: variety → (writes_dst1, writes_dst2, writes_flags)
WriteProfile = Callable[[int], tuple[bool, bool, bool]]


def default_write_profile(variety: int) -> tuple[bool, bool, bool]:
    """Safe default: one data result plus flags."""
    return True, False, True


def arith_write_profile(variety: int) -> tuple[bool, bool, bool]:
    """Table 3.1: the "Output data" variety bit gates the data write."""
    return bool(variety & ARITH_OUTPUT_DATA), False, True


@dataclass(frozen=True)
class UnitEntry:
    """One row of the functional unit table."""

    code: int
    port: int                     # index of the unit's dispatch/result ports
    unit: FunctionalUnit
    write_profile: WriteProfile
    #: dispatch-to-result latency in cycles (1 = single-cycle); defaulted
    #: from the unit's ``latency_cycles`` at registration, so existing
    #: registrations are untouched.  Consumed by the issue observability
    #: layer and checked against the unit by the ``issue.*`` lint rules.
    latency: int = 1


class FunctionalUnitTable:
    """opcode → :class:`UnitEntry` lookup consulted by the decoder."""

    def __init__(self) -> None:
        self._entries: dict[int, UnitEntry] = {}
        #: optional config-bit guard (repro.faults.FutableGuard): every
        #: consultation re-validates the rows against a golden copy first
        self._guard = None

    def add(
        self,
        code: int,
        unit: FunctionalUnit,
        write_profile: Optional[WriteProfile] = None,
        latency: Optional[int] = None,
        *,
        trust_latency: bool = False,
    ) -> UnitEntry:
        if code in self._entries:
            raise ValueError(f"unit code {code:#x} already in the table")
        if write_profile is None:
            write_profile = getattr(unit, "write_profile", None) or (
                arith_write_profile if code == Opcode.ARITH else default_write_profile
            )
        if latency is None:
            latency = int(getattr(unit, "latency_cycles", 1))
        elif not trust_latency:
            # An explicit latency that contradicts the unit's own pipeline
            # depth would mis-steer the issue observability layer (and the
            # scoreboard timing models built on it) for every instruction
            # the row routes; fail at registration, not first dispatch.
            actual = getattr(unit, "latency_cycles", None)
            if actual is not None and int(latency) != int(actual):
                raise ValueError(
                    f"unit code {code:#x}: registered latency {latency} "
                    f"contradicts {type(unit).__name__}.latency_cycles "
                    f"({actual}); drop the latency= override or pass "
                    "trust_latency=True if the table is deliberately lying"
                )
        entry = UnitEntry(code, len(self._entries), unit, write_profile, latency)
        self._entries[code] = entry
        return entry

    def lookup(self, code: int) -> Optional[UnitEntry]:
        if self._guard is not None:
            self._guard.on_access()
        return self._entries.get(code)

    @property
    def entries(self) -> dict[int, UnitEntry]:
        """The opcode → entry rows (fixed after system assembly)."""
        if self._guard is not None:
            self._guard.on_access()
        return self._entries

    @property
    def units(self) -> tuple[FunctionalUnit, ...]:
        """Units in port order."""
        if self._guard is not None:
            self._guard.on_access()
        return tuple(e.unit for e in sorted(self._entries.values(), key=lambda e: e.port))

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, code: int) -> bool:
        return code in self._entries

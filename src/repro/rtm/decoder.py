"""Decoder — second pipeline stage (§III).

"The current instruction is decoded into a vector of signals that control
the execution stage."  The decoder classifies each host message /
instruction word, validates register indices against the configured sizes,
consults the functional unit table for user instructions, and computes the
hazard sets (source registers and write set) the dispatcher's lock checks
need.  Illegal opcodes and out-of-range registers become exception
operations that travel down the pipeline and are reported to the host —
the RTM never wedges on bad input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..config import FrameworkConfig
from ..fu.protocol import Transfer, WriteSpace
from ..hdl import Component, Stream
from ..isa.encoding import Instruction, decode as decode_word
from ..isa.opcodes import FIRST_UNIT_OPCODE, Opcode
from ..messages.types import (
    BadFrame,
    ExceptionCode,
    ExceptionReport,
    Exec,
    Halted,
    Message,
    Reset,
    WriteFlags,
    WriteReg,
)
from .futable import FunctionalUnitTable, UnitEntry

RegSet = tuple[tuple[WriteSpace, int], ...]


@dataclass(frozen=True)
class ExecOp:
    """Fully resolved work for the execution stage."""

    transfer: Optional[Transfer] = None
    message: Optional[Message] = None
    set_halt: bool = False
    clear_halt: bool = False

    @property
    def is_nop(self) -> bool:
        return (
            self.transfer is None
            and self.message is None
            and not self.set_halt
            and not self.clear_halt
        )


@dataclass(frozen=True)
class DecodedOp:
    """Decoder → dispatcher bundle: classification plus hazard information."""

    kind: str                               # 'unit' | 'exec'
    instr: Optional[Instruction] = None
    entry: Optional[UnitEntry] = None
    sources: RegSet = ()
    write_set: RegSet = ()
    require_all_free: bool = False
    #: pre-resolved execution work for ops needing no register-file reads
    exec_op: Optional[ExecOp] = None
    _reads_rf: bool = field(default=False)  # dispatcher must resolve via RF reads

    @property
    def needs_resolution(self) -> bool:
        return self._reads_rf


def _exception_op(code: ExceptionCode, info: int) -> DecodedOp:
    return DecodedOp(
        kind="exec",
        exec_op=ExecOp(message=ExceptionReport(int(code), info & 0xFFFF_FFFF)),
    )


class Decoder(Component):
    """Registered decode stage: held message decoded combinationally."""

    def __init__(
        self,
        name: str,
        config: FrameworkConfig,
        futable: FunctionalUnitTable,
        parent: Optional[Component] = None,
    ):
        super().__init__(name, parent)
        self.config = config
        self.futable = futable
        #: from the message buffer (Message payloads)
        self.inp = Stream(self, "in", None)
        #: to the dispatcher (DecodedOp payloads)
        self.out = Stream(self, "out", None)
        self._full = self.reg("full", 1, 0)
        self._msg = self.reg("msg", None, reset=None)
        self.decode_errors = 0

        @self.comb
        def _drive() -> None:
            full = self._full.value
            self.out.valid.set(full)
            if full:
                self.out.payload.set(self._decode(self._msg.value))
            self.inp.ready.set((not full) or bool(self.out.ready.value))

        @self.seq(pure=True)
        def _tick() -> None:
            if self.out.fires():
                op = self.out.payload.value
                if (
                    op.exec_op is not None
                    and isinstance(op.exec_op.message, ExceptionReport)
                ):
                    self.decode_errors += 1
            if self.inp.fires():
                self._msg.nxt = self.inp.payload.value
                self._full.nxt = 1
            elif self.out.fires():
                self._full.nxt = 0

        # Guard-coupled purity: decode_errors only moves on out.fires()
        # paths, which always stage _full/_msg — a disarm-eligible (no-stage)
        # edge provably mutates nothing, which is all pure=True promises.
        self.lint_suppress(
            "contract.impure-pure-seq",
            "decode_errors increments only on out.fires() paths, which always "
            "stage; quiet edges are mutation-free",
        )

    # -- decode logic ("lookup tables implicitly synthesised into Decoder") ------

    def _valid_reg(self, reg: int) -> bool:
        return reg < self.config.n_regs

    def _valid_flag(self, reg: int) -> bool:
        return reg < self.config.n_flag_regs

    def _decode(self, msg: Message) -> DecodedOp:
        if isinstance(msg, Exec):
            return self._decode_instruction(msg.word)
        if isinstance(msg, WriteReg):
            if not self._valid_reg(msg.reg):
                return _exception_op(ExceptionCode.BAD_REGISTER, msg.reg)
            return DecodedOp(
                kind="exec",
                write_set=((WriteSpace.DATA, msg.reg),),
                exec_op=ExecOp(
                    transfer=Transfer(
                        data_reg=msg.reg, data_value=msg.value & self.config.word_mask
                    )
                ),
            )
        if isinstance(msg, WriteFlags):
            if not self._valid_flag(msg.flag_reg):
                return _exception_op(ExceptionCode.BAD_REGISTER, msg.flag_reg)
            return DecodedOp(
                kind="exec",
                write_set=((WriteSpace.FLAG, msg.flag_reg),),
                exec_op=ExecOp(
                    transfer=Transfer(flag_reg=msg.flag_reg, flag_value=msg.value)
                ),
            )
        if isinstance(msg, Reset):
            return DecodedOp(kind="exec", exec_op=ExecOp(clear_halt=True))
        if isinstance(msg, BadFrame):
            return _exception_op(ExceptionCode.BAD_MESSAGE, msg.header)
        return _exception_op(ExceptionCode.BAD_MESSAGE, 0)

    def _decode_instruction(self, word: int) -> DecodedOp:
        instr = decode_word(word)
        op = instr.opcode
        if op >= FIRST_UNIT_OPCODE:
            return self._decode_unit(instr)
        return self._decode_primitive(instr)

    def _decode_unit(self, instr: Instruction) -> DecodedOp:
        # Parallel match over the static table (a decode ROM in hardware):
        # the candidate rows are fixed at elaboration, so every row's write
        # profile is named here rather than reached through a dynamic lookup.
        entry = None
        for code, cand in self.futable.entries.items():
            if code == instr.opcode:
                entry = cand
        if entry is None:
            return _exception_op(ExceptionCode.ILLEGAL_OPCODE, instr.opcode)
        w1, w2, wf = entry.write_profile(instr.variety)
        reads_c = bool(getattr(entry.unit, "reads_dst1", False))
        for reg, used in (
            (instr.src1, True),
            (instr.src2, True),
            (instr.dst1, w1 or reads_c),
            (instr.dst2, w2),
        ):
            if used and not self._valid_reg(reg):
                return _exception_op(ExceptionCode.BAD_REGISTER, reg)
        if not self._valid_flag(instr.src_flag) or (wf and not self._valid_flag(instr.dst_flag)):
            return _exception_op(ExceptionCode.BAD_REGISTER, instr.dst_flag)
        sources: list[tuple[WriteSpace, int]] = [
            (WriteSpace.DATA, instr.src1),
            (WriteSpace.DATA, instr.src2),
        ]
        if getattr(entry.unit, "reads_flag", True):
            sources.append((WriteSpace.FLAG, instr.src_flag))
        if reads_c:
            sources.append((WriteSpace.DATA, instr.dst1))
        write_set: list[tuple[WriteSpace, int]] = []
        if w1:
            write_set.append((WriteSpace.DATA, instr.dst1))
        if w2:
            write_set.append((WriteSpace.DATA, instr.dst2))
        if wf:
            write_set.append((WriteSpace.FLAG, instr.dst_flag))
        return DecodedOp(
            kind="unit",
            instr=instr,
            entry=entry,
            sources=tuple(sources),
            write_set=tuple(write_set),
        )

    def _decode_primitive(self, instr: Instruction) -> DecodedOp:
        op = instr.opcode
        cfg = self.config
        if op == Opcode.NOP:
            return DecodedOp(kind="exec", exec_op=ExecOp())
        if op == Opcode.HALT:
            return DecodedOp(
                kind="exec", exec_op=ExecOp(message=Halted(), set_halt=True)
            )
        if op == Opcode.FENCE:
            return DecodedOp(kind="exec", require_all_free=True, exec_op=ExecOp())
        if op == Opcode.COPY:
            if not (self._valid_reg(instr.dst1) and self._valid_reg(instr.src1)):
                return _exception_op(ExceptionCode.BAD_REGISTER, instr.dst1)
            return DecodedOp(
                kind="exec",
                instr=instr,
                sources=((WriteSpace.DATA, instr.src1),),
                write_set=((WriteSpace.DATA, instr.dst1),),
                _reads_rf=True,
            )
        if op == Opcode.CPFLAG:
            if not (self._valid_flag(instr.dst_flag) and self._valid_flag(instr.src_flag)):
                return _exception_op(ExceptionCode.BAD_REGISTER, instr.dst_flag)
            return DecodedOp(
                kind="exec",
                instr=instr,
                sources=((WriteSpace.FLAG, instr.src_flag),),
                write_set=((WriteSpace.FLAG, instr.dst_flag),),
                _reads_rf=True,
            )
        if op == Opcode.GET:
            if not self._valid_reg(instr.src1):
                return _exception_op(ExceptionCode.BAD_REGISTER, instr.src1)
            return DecodedOp(
                kind="exec",
                instr=instr,
                sources=((WriteSpace.DATA, instr.src1),),
                _reads_rf=True,
            )
        if op == Opcode.GETF:
            if not self._valid_flag(instr.src_flag):
                return _exception_op(ExceptionCode.BAD_REGISTER, instr.src_flag)
            return DecodedOp(
                kind="exec",
                instr=instr,
                sources=((WriteSpace.FLAG, instr.src_flag),),
                _reads_rf=True,
            )
        if op == Opcode.LOADI:
            if not self._valid_reg(instr.dst1):
                return _exception_op(ExceptionCode.BAD_REGISTER, instr.dst1)
            return DecodedOp(
                kind="exec",
                write_set=((WriteSpace.DATA, instr.dst1),),
                exec_op=ExecOp(
                    transfer=Transfer(data_reg=instr.dst1, data_value=instr.imm & cfg.word_mask)
                ),
            )
        if op == Opcode.LOADIS:
            if not self._valid_reg(instr.dst1):
                return _exception_op(ExceptionCode.BAD_REGISTER, instr.dst1)
            return DecodedOp(
                kind="exec",
                instr=instr,
                sources=((WriteSpace.DATA, instr.dst1),),
                write_set=((WriteSpace.DATA, instr.dst1),),
                _reads_rf=True,
            )
        if op == Opcode.SETF:
            if not self._valid_flag(instr.dst_flag):
                return _exception_op(ExceptionCode.BAD_REGISTER, instr.dst_flag)
            return DecodedOp(
                kind="exec",
                write_set=((WriteSpace.FLAG, instr.dst_flag),),
                exec_op=ExecOp(
                    transfer=Transfer(flag_reg=instr.dst_flag, flag_value=instr.variety)
                ),
            )
        # No counter bump here: _decode runs at settle rate (possibly several
        # times per cycle), so errors are tallied in _tick when the decoded
        # ExceptionReport actually leaves the stage — counting here as well
        # double-counted every illegal opcode.
        return _exception_op(ExceptionCode.ILLEGAL_OPCODE, instr.opcode)

"""Dispatcher — third pipeline stage (§III).

"Reads from the register file take place in the dispatcher stage, and
instructions that initiate a functional unit operation transmit data to the
functional unit through a register in this stage."

Responsibilities implemented here:

* **Hazard checking** against the lock manager: an instruction may not
  proceed while any of its source or destination registers is locked by an
  older in-flight instruction (RAW and WAW; in-order GETs then give the
  host a result stream "consistent with the stream of instructions that
  were issued" despite out-of-order unit completion).
* **Operand fetch**: up to two data operands plus one flag vector read
  combinationally from the register files.
* **Unit dispatch**: when the target unit's ``idle`` is high, drive its
  dispatch port (operands, variety, destination side-band) and strobe
  ``dispatch``; the instruction's write set is locked at the same edge.
* **Primitive resolution**: framework primitives have their register reads
  performed here and travel on to the execution stage as a fully resolved
  :class:`ExecOp`.
* **FENCE**: stalls until the lock manager reports every register free.
"""

from __future__ import annotations

from typing import Optional

from ..config import FrameworkConfig
from ..fu.protocol import Transfer
from ..hdl import Component, Stream
from ..isa.opcodes import Opcode
from ..messages.types import DataRecord, FlagVector
from .decoder import DecodedOp, ExecOp
from .futable import FunctionalUnitTable
from .lockmgr import LockManager
from .regfile import FlagRegisterFile, RegisterFile

#: stall causes tallied by both dispatch engines (rename only moves under OoO)
_STALL_CAUSES = ("raw", "waw", "structural", "fence", "machine_check", "rename")


class Dispatcher(Component):
    """Registered dispatch stage with local (handshake) stall control."""

    def __init__(
        self,
        name: str,
        config: FrameworkConfig,
        regfile: RegisterFile,
        flagfile: FlagRegisterFile,
        lockmgr: LockManager,
        futable: FunctionalUnitTable,
        parent: Optional[Component] = None,
    ):
        super().__init__(name, parent)
        self.config = config
        self.regfile = regfile
        self.flagfile = flagfile
        self.lockmgr = lockmgr
        self.futable = futable
        #: machine-check unit (set by the RTM when state protection is on).
        #: While a check is pending, dispatch freezes — no op may read or
        #: commit architectural state that an uncorrectable upset may have
        #: touched — except a host Reset, which must stay dispatchable so
        #: its soft-clear can resolve the check.
        self.mcu = None
        #: from the decoder (DecodedOp payloads)
        self.inp = Stream(self, "in", None)
        #: to the execution stage (ExecOp payloads)
        self.out = Stream(self, "out", None)
        self._full = self.reg("full", 1, 0)
        self._op = self.reg("op", None, reset=None)
        #: settles high when the held op completes this cycle (consumed by seq)
        self._advancing = self.signal("advancing", 1, 0)
        #: high while the held op is stalled on a lock (observability/benches)
        self.stalled = self.signal("stalled", 1, 0)
        self.dispatch_count = 0
        self.stall_cycles = 0
        self._exec_count = 0
        self.stall_causes = {cause: 0 for cause in _STALL_CAUSES}

        @self.comb
        def _drive() -> None:
            # Compute every output first, then drive each signal exactly once
            # per pass (a signal toggling within one pass would never settle).
            full = self._full.value
            op: Optional[DecodedOp] = self._op.value if full else None
            advancing = 0
            stalled = 0
            out_valid = 0
            out_payload: Optional[ExecOp] = None
            dispatch_target = None
            if op is not None:
                blocked = self.lockmgr.any_locked(op.sources) or self.lockmgr.any_locked(
                    op.write_set
                )
                if op.require_all_free and not self.lockmgr.all_free:
                    blocked = True
                if (
                    self.mcu is not None
                    and self.mcu.pending
                    and not (op.exec_op is not None and op.exec_op.clear_halt)
                ):
                    blocked = True
                if blocked:
                    stalled = 1
                elif op.kind == "unit":
                    # Consult the static unit table rather than dereferencing
                    # the op's payload: the candidate set is fixed hardware.
                    target = op.entry.unit
                    for unit in self.futable.units:
                        if unit is target and unit.dp.idle.value:
                            dispatch_target = unit
                    if dispatch_target is not None:
                        advancing = 1
                    else:
                        stalled = 1
                else:  # execution-stage op
                    out_valid = 1
                    out_payload = self._resolve(op)
                    advancing = 1 if self.out.ready.value else 0
            for unit in self.futable.units:
                if unit is dispatch_target:
                    self._drive_unit_port(unit, op)
                else:
                    unit.dp.dispatch.set(0)
            self.out.valid.set(out_valid)
            if out_payload is not None:
                self.out.payload.set(out_payload)
            self._advancing.set(advancing)
            self.stalled.set(stalled)
            self.inp.ready.set((not full) or bool(advancing))

        @self.seq
        def _tick() -> None:
            if self._advancing.value:
                op: DecodedOp = self._op.value
                if op.kind == "unit":
                    self.dispatch_count += 1
                    guard = self.futable._guard
                    if guard is not None:
                        guard.on_dispatch()
                else:
                    self._exec_count += 1
                self.lockmgr.lock_set(op.write_set)
            elif self.stalled.value:
                self.stall_cycles += 1
                self._classify_stall(self._op.value)
            if self.inp.fires():
                self._op.nxt = self.inp.payload.value
                self._full.nxt = 1
            elif self._advancing.value:
                self._full.nxt = 0

        # The tick is impure (stall tallies must count real cycles), so the
        # hook simply vetoes skipping whenever the stage holds or receives an
        # op — an empty, starved dispatcher is the only skippable state, and
        # skipping it ages nothing.
        self.wheel(self._wheel_horizon, lambda n: None)

        # State-guard checks run inside the hazard reads: the scoreboard /
        # ECC shadows repair single-bit upsets with force() (inline ECC is a
        # settle-time correction, not a scheduled write) and their hidden
        # shadow state moves only alongside tracked lock-mask or machine-
        # check register edges, which re-run this process.
        self.lint_suppress(
            "contract.force-in-proc",
            "inline ECC repair in the guards: guard-coupled to tracked "
            "lock-mask/machine-check reads; a force here restores the "
            "value a tracked register already notified readers about",
        )
        self.lint_suppress(
            "contract.hidden-comb-read",
            "guard shadows and fault counters change only alongside "
            "tracked lock-mask / machine-check register edges",
        )

    def _wheel_horizon(self) -> Optional[int]:
        if self._full.value:
            return 0
        if self.inp.valid.value and self.inp.ready.value:
            return 0
        return None

    # -- observability -------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """Work in flight in this stage (quiescence probe)."""
        return bool(self._full.value)

    def issue_stats(self) -> dict:
        stats = {
            "mode": "in-order",
            "issued_total": self.dispatch_count + self._exec_count,
            "unit_dispatches": self.dispatch_count,
            "exec_ops": self._exec_count,
            "stall_cycles": self.stall_cycles,
            "window_depth": 1,
            "window_occupancy_max": 1,
        }
        for cause in _STALL_CAUSES:
            stats[f"stall_{cause}"] = self.stall_causes[cause]
        return stats

    def _classify_stall(self, op: DecodedOp) -> None:
        # Counters only: the guard-free peeks keep the classification from
        # adding query-time repair points the functional path never had.
        causes = self.stall_causes
        if self.lockmgr.peek_any_locked(op.sources):
            causes["raw"] += 1
        elif self.lockmgr.peek_any_locked(op.write_set):
            causes["waw"] += 1
        elif op.require_all_free and not self.lockmgr.peek_all_free:
            causes["fence"] += 1
        elif self.mcu is not None and self.mcu.pending:
            causes["machine_check"] += 1
        else:
            causes["structural"] += 1

    # -- unit dispatch ------------------------------------------------------------

    def _drive_unit_port(self, unit: "FunctionalUnit", op: DecodedOp) -> None:
        # `unit` is always `op.entry.unit`; it is passed explicitly so the
        # port being driven is named at the call site, not re-derived from
        # the op's payload.
        instr = op.instr
        dp = unit.dp
        dp.variety.set(instr.variety)
        dp.op_a.set(self.regfile.read(instr.src1))
        dp.op_b.set(self.regfile.read(instr.src2))
        dp.flag_in.set(self.flagfile.read(instr.src_flag))
        dp.dst1.set(instr.dst1)
        dp.dst2.set(instr.dst2)
        dp.dst_flag.set(instr.dst_flag)
        # Ternary units (FMA) read their accumulator from dst1; ports
        # without the third bus make this a no-op (and read nothing).
        dp.drive_op_c(self.regfile, instr.dst1)
        dp.dispatch.set(1)

    # -- primitive resolution (register reads happen here, per §III) ---------------

    def _resolve(self, op: DecodedOp) -> ExecOp:
        if op.exec_op is not None:
            return op.exec_op
        instr = op.instr
        cfg = self.config
        opcode = instr.opcode
        if opcode == Opcode.COPY:
            return ExecOp(
                transfer=Transfer(data_reg=instr.dst1, data_value=self.regfile.read(instr.src1))
            )
        if opcode == Opcode.CPFLAG:
            return ExecOp(
                transfer=Transfer(
                    flag_reg=instr.dst_flag, flag_value=self.flagfile.read(instr.src_flag)
                )
            )
        if opcode == Opcode.GET:
            return ExecOp(message=DataRecord(instr.variety, self.regfile.read(instr.src1)))
        if opcode == Opcode.GETF:
            return ExecOp(message=FlagVector(instr.variety, self.flagfile.read(instr.src_flag)))
        if opcode == Opcode.LOADIS:
            merged = ((self.regfile.read(instr.dst1) << 32) | instr.imm) & cfg.word_mask
            return ExecOp(transfer=Transfer(data_reg=instr.dst1, data_value=merged))
        raise AssertionError(f"unresolvable primitive opcode {opcode:#x}")

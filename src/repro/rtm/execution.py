"""Execution stage — fourth pipeline stage (§III).

"Instructions that operate on the state of the RTM are executed" here.  By
the time an operation reaches this stage it is a fully resolved
:class:`ExecOp`; the stage's job is sequencing its effects:

* register writes go to the write arbiter's **high-priority port** (thesis
  Fig. 1.4), so framework primitives never lose arbitration to functional
  units;
* outbound messages (data records, flag vectors, exception reports, the
  HALT acknowledgement) go to the message encoder;
* HALT sets the halt latch that gates the message buffer; a RESET message
  clears it.
"""

from __future__ import annotations

from typing import Optional

from ..config import FrameworkConfig
from ..hdl import Component, Signal, Stream
from ..messages.types import MachineCheck
from .decoder import ExecOp


class Execution(Component):
    """Holds one ExecOp and retires it via the arbiter/encoder."""

    def __init__(self, name: str, config: FrameworkConfig, parent: Optional[Component] = None):
        super().__init__(name, parent)
        self.config = config
        #: from the dispatcher (ExecOp payloads)
        self.inp = Stream(self, "in", None)
        #: to the message encoder (Message payloads)
        self.msg_out = Stream(self, "msg_out", None)
        # High-priority write port toward the arbiter.
        self.prio_valid: Signal = self.signal("prio_valid", 1, 0)
        self.prio_transfer: Signal = self.signal("prio_transfer", None, reset=None)
        self.prio_ack: Signal = self.signal("prio_ack", 1, 0)
        #: the halt latch (read by the message buffer)
        self.halted = self.reg("halted", 1, 0)
        self._full = self.reg("full", 1, 0)
        self._op = self.reg("op", None, reset=None)
        #: transfer already acknowledged (for ops with transfer + message)
        self._xfer_done = self.reg("xfer_done", 1, 0)
        self.retired = 0
        #: machine-check unit (set by the RTM when state protection is on).
        #: While a check is unreported, this stage preempts the message path
        #: with one MachineCheck frame; the held op — whose data was read
        #: through the dispatcher's guarded paths and is therefore clean —
        #: resumes afterwards.  A retiring Reset soft-clears the check.
        self.mcu = None

        @self.comb
        def _drive() -> None:
            full = self._full.value
            op: Optional[ExecOp] = self._op.value if full else None
            reporting = self._reporting()
            prio_valid = 0
            msg_valid = 0
            if op is not None:
                if op.transfer is not None and not self._xfer_done.value:
                    prio_valid = 1
                    self.prio_transfer.set(op.transfer)
                elif op.message is not None and not reporting:
                    msg_valid = 1
                    self.msg_out.payload.set(op.message)
            if reporting:
                msg_valid = 1
                self.msg_out.payload.set(MachineCheck(*self.mcu.report_args()))
            self.prio_valid.set(prio_valid)
            self.msg_out.valid.set(msg_valid)
            # Accept a new op when empty or when the held op retires this cycle.
            self.inp.ready.set((not full) or self._retiring())

        @self.seq(pure=True)
        def _tick() -> None:
            reported = False
            if self._reporting() and self.msg_out.fires():
                self.mcu.mark_reported()
                reported = True
            full = self._full.value
            op: Optional[ExecOp] = self._op.value if full else None
            retiring = False
            if op is not None:
                if self.prio_valid.value and self.prio_ack.value:
                    if op.message is not None:
                        self._xfer_done.nxt = 1
                    else:
                        retiring = True
                elif self.msg_out.fires() and not reported:
                    retiring = True
                elif op.transfer is None and op.message is None:
                    retiring = True  # pure state ops (NOP, FENCE, RESET latch)
                if retiring:
                    if op.set_halt:
                        self.halted.nxt = 1
                    if op.clear_halt:
                        self.halted.nxt = 0
                        if self.mcu is not None and self.mcu.pending:
                            self.mcu.soft_clear()
                    self.retired += 1
                    self._xfer_done.nxt = 0
            if self.inp.fires():
                self._op.nxt = self.inp.payload.value
                self._full.nxt = 1
                self._xfer_done.nxt = 0
            elif retiring:
                self._full.nxt = 0

        # Guard-coupled purity: `retired` moves only on retiring paths, which
        # always stage _xfer_done/_full — a no-stage edge mutates nothing.
        # The machine-check bookkeeping is likewise guard-coupled: it runs
        # only on edges where the report message fires or a Reset retires,
        # both of which this process observes through tracked signal reads.
        self.lint_suppress(
            "contract.impure-pure-seq",
            "retired/machine-check bookkeeping moves only on retiring or "
            "report-firing paths, which always follow tracked signal edges; "
            "quiet edges are mutation-free",
        )
        self.lint_suppress(
            "contract.force-in-proc",
            "a retiring Reset soft-clears the machine check: scrubbing the "
            "guards back to their shadows uses the backdoor force path, and "
            "the dispatch/grant freeze guarantees no staged write races it",
        )
        self.lint_suppress(
            "contract.hidden-comb-read",
            "the machine-check record is read only while the tracked "
            "'unreported' register is high",
        )

    def _reporting(self) -> bool:
        """A latched machine check has not yet left on the message stream."""
        return self.mcu is not None and self.mcu.unreported

    def _retiring(self) -> bool:
        """Combinational view of whether the held op completes this cycle."""
        op: Optional[ExecOp] = self._op.value if self._full.value else None
        if op is None:
            return False
        if op.transfer is None and op.message is None:
            return True
        if op.transfer is not None and not self._xfer_done.value:
            # Retires now only if this is the last effect and it is acked.
            return bool(self.prio_ack.value) and op.message is None
        if op.message is not None:
            if self._reporting():
                return False  # the message slot carries the MachineCheck
            return bool(self.msg_out.valid.value and self.msg_out.ready.value)
        return True

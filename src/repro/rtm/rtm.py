"""The Register Transfer Machine — top-level assembly (paper Figs. 2 and 4).

Instantiates and wires the six pipeline stages (message buffer, decoder,
dispatcher, execution, message encoder, message serialiser), the register
and flag register files, the lock manager, the write arbiter and the
configured functional units.  All connections are point-to-point
valid/ready streams — "there is no global control for stalling the
pipeline" (§III).

The RTM exposes two word streams (``words_in`` / ``words_out``) that the
transceiver modules attach to, keeping the controller independent of the
physical channel exactly as the paper's portability goal requires.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import FrameworkConfig
from ..faults import (
    ArrayGuard,
    FutableGuard,
    LockGuard,
    MachineCheckUnit,
    RamGuard,
    RenameGuard,
    StateFaultPlan,
    StateFaultSpec,
    StateScrubber,
)
from ..fu.protocol import WriteSpace
from ..fu.base import FunctionalUnit
from ..fu.registry import UnitRegistry, default_registry
from ..hdl import Component
from .decoder import Decoder
from .dispatcher import Dispatcher
from .encoder import MessageEncoder
from .execution import Execution
from .futable import FunctionalUnitTable
from .lockmgr import LockManager
from .msgbuffer import MessageBuffer
from .regfile import FlagRegisterFile, RegisterFile
from .rename import RenameTable
from .serializer import MessageSerializer
from .write_arbiter import WriteArbiter


def _connect(comp: Component, src, dst) -> None:
    """Point-to-point stream connection: src.out-style → dst.in-style."""

    def _link() -> None:
        dst.valid.set(src.valid.value)
        dst.payload.set(src.payload.value)
        src.ready.set(dst.ready.value)

    comp.comb(_link)


class RegisterTransferMachine(Component):
    """The generic controller circuit: pipeline + register files + arbiter."""

    def __init__(
        self,
        name: str,
        config: FrameworkConfig,
        registry: Optional[UnitRegistry] = None,
        unit_codes: Optional[Sequence[int]] = None,
        state_faults: Optional[StateFaultSpec] = None,
        state_protection: bool = False,
        parent: Optional[Component] = None,
    ):
        super().__init__(name, parent)
        self.config = config
        registry = registry if registry is not None else default_registry(config.pipelined_units)
        codes = tuple(unit_codes) if unit_codes is not None else registry.codes()

        # -- state-fault domain (spec → plan + machine-check unit) -------------
        protected = state_protection or state_faults is not None
        self.state_domain: Optional[StateFaultPlan] = (
            StateFaultPlan(state_faults) if protected else None
        )
        self.mcu: Optional[MachineCheckUnit] = (
            MachineCheckUnit("mcu", parent=self) if protected else None
        )
        if self.mcu is not None:
            self.mcu.stats = self.state_domain.stats

        # -- state ------------------------------------------------------------
        # In-order: files sized exactly as before (no new components or
        # signals, so the renaming-off path is cycle- and VCD-identical).
        # OoO: the same components over the physical register pool, plus
        # the rename table.
        if config.ooo:
            self.regfile = RegisterFile(
                "regfile", config, parent=self, n_regs=config.data_pool_size
            )
            self.flagfile = FlagRegisterFile(
                "flagfile", config, parent=self, n_regs=config.flag_pool_size
            )
            self.lockmgr = LockManager(
                "lockmgr", config, parent=self,
                n_data=config.data_pool_size, n_flag=config.flag_pool_size,
            )
            self.rename: Optional[RenameTable] = RenameTable(
                "rename", config, parent=self
            )
        else:
            self.regfile = RegisterFile("regfile", config, parent=self)
            self.flagfile = FlagRegisterFile("flagfile", config, parent=self)
            self.lockmgr = LockManager("lockmgr", config, parent=self)
            self.rename = None
        self.futable = FunctionalUnitTable()

        # -- functional units ---------------------------------------------------
        self.units: list[FunctionalUnit] = []
        for code in codes:
            unit = registry.build(code, f"fu_{code:02x}", config.word_bits, parent=self)
            self.futable.add(code, unit)
            self.units.append(unit)

        # -- pipeline stages -----------------------------------------------------
        self.msgbuffer = MessageBuffer("msgbuffer", config, parent=self)
        self.decoder = Decoder("decoder", config, self.futable, parent=self)
        if config.ooo:
            from .ooo import OoODispatcher

            self.dispatcher = OoODispatcher(
                "dispatcher", config, self.regfile, self.flagfile, self.lockmgr,
                self.futable, self.rename, parent=self,
            )
        else:
            self.dispatcher = Dispatcher(
                "dispatcher", config, self.regfile, self.flagfile, self.lockmgr,
                self.futable, parent=self,
            )
        self.execution = Execution("execution", config, parent=self)
        self.encoder = MessageEncoder("encoder", config, parent=self)
        self.serializer = MessageSerializer("serializer", config, parent=self)

        # -- write arbiter ---------------------------------------------------------
        self.write_arbiter = WriteArbiter(
            "write_arbiter", config, self.regfile, self.flagfile, self.lockmgr,
            parent=self,
        )
        for unit in self.units:
            self.write_arbiter.attach_port(unit.rp)
        self.write_arbiter.attach_priority(
            self.execution.prio_valid,
            self.execution.prio_transfer,
            self.execution.prio_ack,
        )

        # -- stream wiring (all point-to-point) ---------------------------------------
        _connect(self, self.msgbuffer.out, self.decoder.inp)
        _connect(self, self.decoder.out, self.dispatcher.inp)
        _connect(self, self.dispatcher.out, self.execution.inp)
        _connect(self, self.execution.msg_out, self.encoder.inp)
        _connect(self, self.encoder.out, self.serializer.inp)

        # -- state guards (after assembly: every protected element exists) -----
        self.scrubber: Optional[StateScrubber] = None
        if protected:
            plan, mcu = self.state_domain, self.mcu
            RamGuard("rtm.regfile", self.regfile.ram, plan, mcu)
            RamGuard("rtm.flagfile", self.flagfile.ram, plan, mcu)
            LockGuard("rtm.lockmgr", self.lockmgr, plan, mcu)
            FutableGuard("rtm.futable", self.futable, plan, mcu)
            if self.rename is not None:
                RenameGuard("rtm.rename", self.rename, plan, mcu)
            for unit in self.units:
                array = getattr(getattr(unit, "core", None), "array", None)
                if array is not None:
                    ArrayGuard(f"rtm.{unit.name}.array", array, plan, mcu)
            self.scrubber = StateScrubber("scrubber", plan, mcu, parent=self)
            self.dispatcher.mcu = mcu
            self.execution.mcu = mcu
            self.write_arbiter.mcu = mcu

        @self.comb
        def _halt_wire() -> None:
            self.msgbuffer.halted.set(self.execution.halted.value)

        #: channel-facing ports (the transceiver plug points)
        self.words_in = self.msgbuffer.inp
        self.words_out = self.serializer.out

    # -- convenience accessors (testbench/driver use) ------------------------------

    @property
    def halted(self) -> bool:
        return bool(self.execution.halted.value)

    def register_value(self, reg: int) -> int:
        """Backdoor read of a main register (architectural view)."""
        if self.rename is not None:
            reg = self.rename.phys(WriteSpace.DATA, reg)
        return self.regfile.read(reg)

    def flag_value(self, reg: int) -> int:
        """Backdoor read of a flag register (architectural view)."""
        if self.rename is not None:
            reg = self.rename.phys(WriteSpace.FLAG, reg)
        return self.flagfile.read(reg)

    # -- architectural state (checkpoint/rollback path) -----------------------------

    def arch_registers(self) -> tuple[int, ...]:
        """Architectural data-register contents, in index order."""
        if self.rename is None:
            return self.regfile.dump()
        view = self.rename.arch_view(WriteSpace.DATA)
        return tuple(self.regfile.read(phys) for phys in view)

    def arch_flags(self) -> tuple[int, ...]:
        """Architectural flag-register contents, in index order."""
        if self.rename is None:
            return self.flagfile.dump()
        view = self.rename.arch_view(WriteSpace.FLAG)
        return tuple(self.flagfile.read(phys) for phys in view)

    def load_arch_registers(self, values) -> None:
        """Load architectural data registers (freshly reset machine only:
        after a reset the rename map is the identity, so the architectural
        values belong in physical slots ``0..n_regs-1``)."""
        self.regfile.load(values)

    def load_arch_flags(self, values) -> None:
        self.flagfile.load(values)

    def unit_for(self, code: int) -> FunctionalUnit:
        entry = self.futable.lookup(code)
        if entry is None:
            raise KeyError(f"no unit with code {code:#x}")
        return entry.unit

"""The lock manager / register usage table — the RTM's scoreboard.

Thesis Fig. 1.4 shows a *Lock Manager* beside the register file and a
*Register Usage Table* feeding the dispatcher.  Together they allow
out-of-order functional-unit completion while keeping the result stream
consistent with issue order (§II): the dispatcher locks every register an
in-flight instruction will write; later instructions that read or write a
locked register stall in the dispatcher; the write arbiter releases locks
as results arrive.  A GET therefore cannot read a register until the
instruction producing it has retired — which is precisely the in-order
result guarantee.

Lock state is a bitmask per register space, latched at the clock edge.
Lock and unlock requests issued during the same edge accumulate
commutatively into the staged next value, so the dispatcher and the write
arbiter never race.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..config import FrameworkConfig
from ..fu.protocol import WriteSpace
from ..hdl import Component


class LockManager(Component):
    """Tracks which data/flag registers are claimed by in-flight instructions."""

    def __init__(
        self,
        name: str,
        config: FrameworkConfig,
        parent: Optional[Component] = None,
        n_data: Optional[int] = None,
        n_flag: Optional[int] = None,
    ):
        super().__init__(name, parent)
        self.config = config
        #: tracked register counts (physical pool sizes under renaming)
        self.n_data = n_data if n_data is not None else config.n_regs
        self.n_flag = n_flag if n_flag is not None else config.n_flag_regs
        self._data_locks = self.reg("data_locks", self.n_data, 0)
        self._flag_locks = self.reg("flag_locks", self.n_flag, 0)
        #: optional scoreboard parity guard (repro.faults.LockGuard): lock
        #: updates pass through it and every query re-checks the masks
        self._guard = None
        # A passive component still needs a process to be simulable alone.
        self.comb(lambda: None)
        # Both lock registers are deliberately co-driven: the dispatcher's
        # lock() and the arbiter's unlock() accumulate commutatively into the
        # staged next value (see module docstring), so there is no race.
        self.lint_suppress(
            "graph.multi-driver",
            "lock/unlock requests accumulate commutatively into the staged "
            "next value; dispatcher and write arbiter co-drive by design",
        )

    def _reg_for(self, space: WriteSpace):
        return self._data_locks if space is WriteSpace.DATA else self._flag_locks

    # -- queries (combinational, latched state) ---------------------------------

    def is_locked(self, space: WriteSpace, reg: int) -> bool:
        if self._guard is not None:
            self._guard.check()
        mask = (
            self._data_locks.value
            if space is WriteSpace.DATA
            else self._flag_locks.value
        )
        return bool((mask >> reg) & 1)

    def any_locked(self, pairs: Iterable[tuple[WriteSpace, int]]) -> bool:
        """True when any of the (space, reg) pairs is currently locked."""
        return any(self.is_locked(space, reg) for space, reg in pairs)

    @property
    def all_free(self) -> bool:
        """True when no register in either space is locked (FENCE condition)."""
        if self._guard is not None:
            self._guard.check()
        return self._data_locks.value == 0 and self._flag_locks.value == 0

    def all_free_except(self, pairs: Iterable[tuple[WriteSpace, int]]) -> bool:
        """True when every held lock is in ``pairs``.

        The renaming engine's FENCE condition: destination locks are taken
        at *rename* time, so queued younger ops behind the barrier already
        hold locks that must not keep it waiting — only older in-flight
        work (locks outside the queue's own write sets) has to drain.
        """
        if self._guard is not None:
            self._guard.check()
        dmask = fmask = 0
        for space, reg in pairs:
            if space is WriteSpace.DATA:
                dmask |= 1 << reg
            else:
                fmask |= 1 << reg
        return (
            self._data_locks.value & ~dmask == 0
            and self._flag_locks.value & ~fmask == 0
        )

    @property
    def locked_count(self) -> int:
        if self._guard is not None:
            self._guard.check()
        return bin(self._data_locks.value).count("1") + bin(self._flag_locks.value).count("1")

    # -- peeks (guard-free reads for observability only) -------------------------
    #
    # Stall-cause classification in the dispatchers' sequential tick must not
    # perturb the fault domain: a guard.check() there would add query-time
    # repair points the functional path never had, shifting detection-latency
    # stats between otherwise identical runs.  These raw reads are for
    # counters only — never for a dispatch decision.

    def peek_locked(self, space: WriteSpace, reg: int) -> bool:
        mask = (
            self._data_locks.value
            if space is WriteSpace.DATA
            else self._flag_locks.value
        )
        return bool((mask >> reg) & 1)

    def peek_any_locked(self, pairs: Iterable[tuple[WriteSpace, int]]) -> bool:
        return any(self.peek_locked(space, reg) for space, reg in pairs)

    @property
    def peek_all_free(self) -> bool:
        return self._data_locks.value == 0 and self._flag_locks.value == 0

    def peek_all_free_except(
        self, pairs: Iterable[tuple[WriteSpace, int]]
    ) -> bool:
        dmask = fmask = 0
        for space, reg in pairs:
            if space is WriteSpace.DATA:
                dmask |= 1 << reg
            else:
                fmask |= 1 << reg
        return (
            self._data_locks.value & ~dmask == 0
            and self._flag_locks.value & ~fmask == 0
        )

    # -- updates (edge phase; commutative accumulation via .nxt) -----------------

    # Each space is staged through its own named register (rather than a
    # `target` local picked by a conditional expression) so the design-rule
    # analyzer can attribute the .nxt writes — a chain-less local would make
    # every caller of lock()/unlock() opaque.

    def lock(self, space: WriteSpace, reg: int) -> None:
        """Claim a register (dispatcher, at the dispatch edge)."""
        if space is WriteSpace.DATA:
            nxt = self._data_locks.nxt | (1 << reg)
            if self._guard is not None:
                nxt = self._guard.on_op(space, reg, True, nxt)
            self._data_locks.nxt = nxt
        else:
            nxt = self._flag_locks.nxt | (1 << reg)
            if self._guard is not None:
                nxt = self._guard.on_op(space, reg, True, nxt)
            self._flag_locks.nxt = nxt

    def unlock(self, space: WriteSpace, reg: int) -> None:
        """Release a register (write arbiter, as the write commits)."""
        if space is WriteSpace.DATA:
            nxt = self._data_locks.nxt & ~(1 << reg)
            if self._guard is not None:
                nxt = self._guard.on_op(space, reg, False, nxt)
            self._data_locks.nxt = nxt
        else:
            nxt = self._flag_locks.nxt & ~(1 << reg)
            if self._guard is not None:
                nxt = self._guard.on_op(space, reg, False, nxt)
            self._flag_locks.nxt = nxt

    def lock_set(self, pairs: Iterable[tuple[WriteSpace, int]]) -> None:
        for space, reg in pairs:
            self.lock(space, reg)

"""repro.rtm — the Register Transfer Machine (the paper's core contribution).

A pipelined RISC-style controller (paper Fig. 4 / thesis Fig. 1.4):
message buffer → decoder → dispatcher → execution → message encoder →
message serialiser, around a configurable register file, a flag register
file, a lock-manager scoreboard and a write arbiter with a high-priority
port.  Functional units attach through the dispatch/result protocol of
:mod:`repro.fu`.
"""

from .decoder import DecodedOp, Decoder, ExecOp
from .dispatcher import Dispatcher
from .encoder import MessageEncoder
from .execution import Execution
from .futable import (
    FunctionalUnitTable,
    UnitEntry,
    arith_write_profile,
    default_write_profile,
)
from .lockmgr import LockManager
from .msgbuffer import MessageBuffer
from .ooo import OoODispatcher, RenamedOp
from .regfile import FlagRegisterFile, RegisterFile
from .rename import RenameTable
from .rtm import RegisterTransferMachine
from .serializer import MessageSerializer
from .write_arbiter import WriteArbiter

__all__ = [
    "DecodedOp",
    "Decoder",
    "ExecOp",
    "Dispatcher",
    "MessageEncoder",
    "Execution",
    "FunctionalUnitTable",
    "UnitEntry",
    "arith_write_profile",
    "default_write_profile",
    "LockManager",
    "MessageBuffer",
    "OoODispatcher",
    "RenamedOp",
    "RenameTable",
    "FlagRegisterFile",
    "RegisterFile",
    "RegisterTransferMachine",
    "MessageSerializer",
    "WriteArbiter",
]

"""Message serialiser — final pipeline stage (§III).

"The signal vector is converted to the form required by the communication
port to the host, and is transmitted on the port."  Each message is framed
into 32-bit channel words (header + payload, LSW first) and shifted out one
word per cycle toward the transmitter.
"""

from __future__ import annotations

from typing import Optional

from ..config import FrameworkConfig
from ..hdl import Component, Stream
from ..messages.framing import Framer
from ..messages.reliability import ReliableFramer


class MessageSerializer(Component):
    """Messages in, framed 32-bit words out (one per cycle)."""

    def __init__(self, name: str, config: FrameworkConfig, parent: Optional[Component] = None):
        super().__init__(name, parent)
        self.config = config
        # In reliable mode, upstream frames carry the seq/CRC trailer so the
        # host can detect corrupted or lost responses.
        if config.reliable_framing:
            self._framer = ReliableFramer(config.data_words)
        else:
            self._framer = Framer(config.data_words)
        #: from the encoder (Message payloads)
        self.inp = Stream(self, "in", None)
        #: to the transmitter (32-bit words)
        self.out = Stream(self, "out", 32)
        self._words = self.reg("words", None, reset=())
        self.messages_sent = 0

        @self.comb
        def _drive() -> None:
            words = self._words.value
            self.out.valid.set(1 if words else 0)
            if words:
                self.out.payload.set(words[0])
            # A new message is accepted only once the current frame has fully
            # left (the shift register is single-buffered, like the thesis's
            # serialiser stage).
            self.inp.ready.set(0 if words else 1)

        @self.seq(pure=True)
        def _tick() -> None:
            popped = self.out.fires()
            pushed = self.inp.fires()
            if not (popped or pushed):
                return  # shift register holds still: stage nothing, go dormant
            words = self._words.value
            if popped:
                words = words[1:]
            if pushed:
                framed = tuple(self._framer.frame(self.inp.payload.value))
                words = words + framed
                self.messages_sent += 1
            self._words.nxt = words

        # Guard-coupled purity: the early return above means the framer and
        # messages_sent only move on runs that stage _words.
        self.lint_suppress(
            "contract.impure-pure-seq",
            "framer state and messages_sent mutate only on fires() paths, "
            "which always stage _words; quiet edges are mutation-free",
        )

    @property
    def words_pending(self) -> int:
        return len(self._words.value)

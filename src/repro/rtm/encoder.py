"""Message encoder — fifth pipeline stage (§III).

"There are several types of message that can be sent from the RTM to the
host, including data records and flag vectors, and these are multiplexed
into a single standard vector of signals."  The encoder accepts outbound
messages from the execution stage, buffers them in a small FIFO (keeping
the pipeline free-running while the serialiser drains at channel speed)
and presents a single message stream to the serialiser.
"""

from __future__ import annotations

from typing import Optional

from ..config import FrameworkConfig
from ..hdl import Component, SyncFifo


class MessageEncoder(Component):
    """Outbound-message multiplexer + elastic buffer."""

    def __init__(self, name: str, config: FrameworkConfig, parent: Optional[Component] = None):
        super().__init__(name, parent)
        self.config = config
        self.fifo = SyncFifo("fifo", depth=config.encoder_fifo_depth, parent=self, width=None)
        #: from the execution stage (Message payloads)
        self.inp = self.fifo.inp
        #: to the serialiser (Message payloads)
        self.out = self.fifo.out

    @property
    def queued(self) -> int:
        return self.fifo.occupancy

"""Message buffer — the first pipeline stage (§III).

"The first stage receives data from the FPGA input port connected to the
host processor, and converts it to a form usable by the decoder.  This
stage needs to be implemented according to the communication protocol used
by the host processor."  Here the host protocol is the 32-bit word framing
of :mod:`repro.messages.framing`; the stage consumes one channel word per
cycle and presents each completed message to the decoder.

While the RTM is halted the buffer discards everything except a RESET
frame, so a halted coprocessor can always be revived over the channel.
"""

from __future__ import annotations

from typing import Optional

from ..config import FrameworkConfig
from ..hdl import Component, Stream
from ..messages.framing import Deframer, FramingError
from ..messages.types import BadFrame, Message, Reset


class MessageBuffer(Component):
    """Channel words in, parsed host messages out."""

    def __init__(self, name: str, config: FrameworkConfig, parent: Optional[Component] = None):
        super().__init__(name, parent)
        self.config = config
        #: channel-side input (32-bit words from the receiver)
        self.inp = Stream(self, "in", 32)
        #: decoder-side output (Message payloads)
        self.out = Stream(self, "out", None)
        #: driven by the execution stage's halt latch
        self.halted = self.signal("halted", 1, 0)
        self._deframer = Deframer(config.data_words)
        self._pending = self.reg("pending", None, reset=None)

        @self.comb
        def _drive() -> None:
            pending = self._pending.value
            self.out.valid.set(1 if pending is not None else 0)
            if pending is not None:
                self.out.payload.set(pending)
            # Take a new word only while no completed message waits.
            self.inp.ready.set(1 if pending is None else 0)

        @self.seq
        def _tick() -> None:
            pending = self._pending.value
            if pending is not None and self.out.fires():
                pending = None
            if self.inp.fires():
                word = self.inp.payload.value
                try:
                    msg = self._deframer.push(word)
                except FramingError:
                    # Malformed frame: report it instead of wedging (§II —
                    # the coprocessor must stay controllable by the host).
                    msg = BadFrame(word)
                if msg is not None:
                    if self.halted.value and not isinstance(msg, Reset):
                        msg = None  # discarded while halted
                    else:
                        pending = msg
            self._pending.nxt = pending

        @self.on_reset
        def _clear() -> None:
            self._deframer = Deframer(config.data_words)

    @property
    def pending_message(self) -> Optional[Message]:
        return self._pending.value

"""Message buffer — the first pipeline stage (§III).

"The first stage receives data from the FPGA input port connected to the
host processor, and converts it to a form usable by the decoder.  This
stage needs to be implemented according to the communication protocol used
by the host processor."  Here the host protocol is the 32-bit word framing
of :mod:`repro.messages.framing`; the stage consumes one channel word per
cycle and presents each completed message to the decoder.

While the RTM is halted the buffer discards everything except a RESET
frame, so a halted coprocessor can always be revived over the channel.

Reliable mode (``config.reliable_framing``)
-------------------------------------------

With the checksummed frame format enabled the buffer becomes the
coprocessor end of the recovery protocol:

* frames failing the CRC (or arriving out of sequence) never reach the
  decoder — the scanner resynchronises on the next intact frame boundary;
* each resynchronisation or sequence gap is reported to the host as a
  synthesised :class:`BadFrame` carrying a NACK-encoded ``info`` word
  (``reliability.make_nack_info``), which the decoder turns into the
  ``BAD_MESSAGE`` ExceptionReport the host engine treats as a
  retransmission request — at most one NACK per stalled expected sequence
  number, so a burst of garbage does not become a NACK storm;
* retransmitted frames already delivered (Go-Back-N duplicates) are
  discarded, *except* idempotent response-producing instructions
  (GET/GETF/HALT), which are re-executed so a response lost on the
  upstream path can be regenerated;
* a damaged trailing frame cannot wedge the scanner: after
  ``config.resync_flush_cycles`` of channel silence the oldest buffered
  word is expired and the scan retried.
"""

from __future__ import annotations

from typing import Optional

from ..config import FrameworkConfig
from ..hdl import Component, Stream
from ..isa.opcodes import Opcode
from ..messages.framing import Deframer, FramingError
from ..messages.reliability import ReliableDeframer, make_nack_info
from ..messages.types import BadFrame, Exec, Message, Reset

#: Primitive opcodes safe to re-execute when a retransmitted duplicate
#: arrives: pure register/flag reads and the HALT re-acknowledgement.
_REEXEC_OPCODES = frozenset((int(Opcode.GET), int(Opcode.GETF), int(Opcode.HALT)))


def _exec_opcode(msg: Message) -> Optional[int]:
    if isinstance(msg, Exec):
        return (msg.word >> 56) & 0xFF
    return None


class MessageBuffer(Component):
    """Channel words in, parsed host messages out."""

    def __init__(self, name: str, config: FrameworkConfig, parent: Optional[Component] = None):
        super().__init__(name, parent)
        self.config = config
        self.reliable = config.reliable_framing
        #: channel-side input (32-bit words from the receiver)
        self.inp = Stream(self, "in", 32)
        #: decoder-side output (Message payloads)
        self.out = Stream(self, "out", None)
        #: driven by the execution stage's halt latch
        self.halted = self.signal("halted", 1, 0)
        self._deframer = self._new_deframer()
        self._pending = self.reg("pending", None, reset=None)
        #: messages parsed but waiting for the (single) pending slot; the
        #: scanner can complete a deferred frame and a NACK in one cycle
        self._backlog = self.reg("backlog", None, reset=())
        #: cycles since the last word arrived (reliable idle-flush timer)
        self._idle = self.reg("idle", 32, 0)
        #: expected seq already NACKed (suppression), None = none outstanding
        self._nacked_for: Optional[int] = None
        # -- reliability observability counters --
        self.nacks_sent = 0
        self.duplicates_discarded = 0
        self.duplicates_reexecuted = 0

        @self.comb
        def _drive() -> None:
            pending = self._pending.value
            self.out.valid.set(1 if pending is not None else 0)
            if pending is not None:
                self.out.payload.set(pending)
            # Take a new word only while no completed message waits and the
            # parse backlog is drained (elastic slack for resync bursts).
            ready = pending is None and len(self._backlog.value) < 4
            self.inp.ready.set(1 if ready else 0)

        # Pure for the edge scheduler: the deframer/counter mutations happen
        # only on runs that stage the idle timer, and nothing is staged on a
        # fully quiet edge — so an idle buffer goes dormant.
        @self.seq(pure=True)
        def _tick() -> None:
            pending = self._pending.value
            backlog = self._backlog.value
            if pending is not None and self.out.fires():
                pending = None
            if self.inp.fires():
                self._idle.nxt = 0
                word = self.inp.payload.value
                backlog = backlog + tuple(self._consume(word))
            elif self.reliable and self._deframer.mid_frame:
                idle = self._idle.value + 1
                if idle >= self.config.resync_flush_cycles:
                    self._idle.nxt = 0
                    self._deframer.drop_all()
                    backlog = backlog + tuple(self._drain_events())
                else:
                    self._idle.nxt = idle
            if pending is None and backlog:
                pending = backlog[0]
                backlog = backlog[1:]
            if pending is not self._pending.value:
                self._pending.nxt = pending
            if backlog is not self._backlog.value:
                self._backlog.nxt = backlog

        self.wheel(self._horizon, self._skip)

        # See the comment above _tick: deframer/counter mutations coincide
        # with staging, so the pure=True declaration holds on quiet edges.
        self.lint_suppress(
            "contract.impure-pure-seq",
            "deframer and counters mutate only on fires()/mid-frame paths, "
            "which always stage; quiet edges are mutation-free",
        )

        @self.on_reset
        def _clear() -> None:
            self._deframer = self._new_deframer()
            self._nacked_for = None
            self.nacks_sent = 0
            self.duplicates_discarded = 0
            self.duplicates_reexecuted = 0

    # -- time-wheel hooks ---------------------------------------------------------

    def _horizon(self) -> Optional[int]:
        if self.inp.valid.value and self.inp.ready.value:
            return 0  # a channel word lands next edge
        pending = self._pending.value
        if pending is not None and self.out.ready.value:
            return 0  # decoder takes the pending message next edge
        if pending is None and self._backlog.value:
            return 0  # backlog promotes next edge
        if self.reliable and self._deframer.mid_frame:
            # pure aging of the idle timer until the flush threshold edge
            d = self.config.resync_flush_cycles - 1 - self._idle.value
            return d if d > 0 else 0
        return None

    def _skip(self, n: int) -> None:
        if self.reliable and self._deframer.mid_frame:
            self._idle.warp(self._idle.value + n)

    def _new_deframer(self):
        if self.reliable:
            # both ends of the link reset their sequence domain to 0, so the
            # strict receiver pins its baseline there: losing the very first
            # frame must NACK, not silently adopt a later one
            return ReliableDeframer(self.config.data_words, strict_order=True,
                                    start_expected=0)
        return Deframer(self.config.data_words)

    # -- word intake --------------------------------------------------------------

    def _consume(self, word: int) -> list[Message]:
        """Parse one channel word into zero or more admitted messages."""
        if not self.reliable:
            try:
                msg = self._deframer.push(word)
            except FramingError:
                # Malformed frame: report it instead of wedging (§II — the
                # coprocessor must stay controllable by the host).
                return [BadFrame(word)]
            if msg is None:
                return []
            admitted = self._admit(msg, duplicate=False)
            return [admitted] if admitted is not None else []
        self._deframer.push(word)
        return self._drain_events()

    def _drain_events(self) -> list[Message]:
        out: list[Message] = []
        nack_needed = False
        for event in self._deframer.take_events():
            kind = event[0]
            if kind == "deliver":
                admitted = self._admit(event[1], duplicate=False)
                if admitted is not None:
                    out.append(admitted)
            elif kind == "duplicate":
                admitted = self._admit(event[1], duplicate=True)
                if admitted is not None:
                    out.append(admitted)
            else:  # "gap" or "resync": frames were lost — ask for them again
                nack_needed = True
        expected = self._deframer.expected
        if expected is not None and self._nacked_for == expected:
            nack_needed = nack_needed and False
        elif self._nacked_for is not None and self._nacked_for != expected:
            # progress was made since the last NACK; re-arm suppression
            self._nacked_for = None
        if nack_needed:
            self._nacked_for = expected
            self.nacks_sent += 1
            out.append(BadFrame(make_nack_info(expected)))
        return out

    def _admit(self, msg: Message, duplicate: bool) -> Optional[Message]:
        """Apply duplicate and halt gating to a parsed message."""
        opcode = _exec_opcode(msg)
        if duplicate:
            if opcode in _REEXEC_OPCODES:
                self.duplicates_reexecuted += 1
            else:
                self.duplicates_discarded += 1
                return None
        if self.halted.value:
            # A halted coprocessor stays revivable (RESET) and, in reliable
            # mode, re-acknowledges retransmitted HALTs whose ack was lost.
            if isinstance(msg, Reset):
                return msg
            if self.reliable and opcode == int(Opcode.HALT):
                return msg
            return None
        return msg

    @property
    def pending_message(self) -> Optional[Message]:
        return self._pending.value

    @property
    def backlog(self) -> int:
        """Parsed messages waiting behind the pending slot."""
        return len(self._backlog.value)

    @property
    def reliability_stats(self) -> dict:
        """Receiver-side recovery counters (empty when not in reliable mode)."""
        if not self.reliable:
            return {}
        stats = self._deframer.stats.as_dict()
        stats.update(
            nacks_sent=self.nacks_sent,
            duplicates_discarded=self.duplicates_discarded,
            duplicates_reexecuted=self.duplicates_reexecuted,
        )
        return stats

"""Write arbiter — shares the register files' write paths (thesis Fig. 1.4).

The main register file has a single data write port and the flag register
file a single flag write port; every producer of results — each functional
unit's result port plus the execution stage's high-priority port — funnels
through this arbiter.  Per cycle it grants at most one transfer:

* the **high-priority write** (framework primitives and host register
  writes) always wins, so the RTM pipeline never blocks behind functional
  units;
* otherwise the grant rotates **round-robin** over the units' result
  ports, so no unit can starve another.

The granted transfer's writes commit at the clock edge, and the lock
manager releases the written registers in the same cycle — the unlock path
of the scoreboard.
"""

from __future__ import annotations

from typing import Optional

from ..config import FrameworkConfig
from ..fu.protocol import ResultPort, Transfer, WriteSpace
from ..hdl import Component
from .lockmgr import LockManager
from .regfile import FlagRegisterFile, RegisterFile


class WriteArbiter(Component):
    """Round-robin arbiter with a high-priority port, plus the write datapath."""

    def __init__(
        self,
        name: str,
        config: FrameworkConfig,
        regfile: RegisterFile,
        flagfile: FlagRegisterFile,
        lockmgr: LockManager,
        parent: Optional[Component] = None,
    ):
        super().__init__(name, parent)
        self.config = config
        self.regfile = regfile
        self.flagfile = flagfile
        self.lockmgr = lockmgr
        self._ports: list[ResultPort] = []
        # Execution-stage priority port wiring (set by the RTM top level).
        self.prio_valid = None
        self.prio_transfer = None
        self.prio_ack = None
        #: machine-check unit (set by the RTM when state protection is on).
        #: While a check is pending, round-robin grants freeze — no unit
        #: result may commit into possibly-upset register state — but the
        #: priority port stays live so the execution stage drains its held
        #: op (whose data was read clean at dispatch time).
        self.mcu = None
        self._last = self.reg("last", 8, 0)
        self._grant = self.signal("grant", 8, 0)
        self._grant_valid = self.signal("grant_valid", 1, 0)
        self._prio_granted = self.signal("prio_granted", 1, 0)
        self.writes_performed = 0
        self.grants_by_port: dict[int, int] = {}

        @self.comb
        def _arbitrate() -> None:
            # Compute the grant first, then drive every ack exactly once per
            # pass (a signal toggling within one pass would never settle).
            prio = bool(self.prio_valid is not None and self.prio_valid.value)
            pending = self.mcu is not None and self.mcu.pending
            granted_idx = -1
            if not prio and not pending and self._ports:
                n = len(self._ports)
                start = (self._last.value + 1) % n
                for off in range(n):
                    idx = (start + off) % n
                    if self._ports[idx].ready.value:
                        granted_idx = idx
                        break
            for i, port in enumerate(self._ports):
                port.ack.set(1 if i == granted_idx else 0)
            self._prio_granted.set(1 if prio else 0)
            if self.prio_ack is not None:
                self.prio_ack.set(1 if prio else 0)
            if granted_idx >= 0:
                self._grant.set(granted_idx)
            self._grant_valid.set(1 if granted_idx >= 0 else 0)

        # Pure in the scheduler's sense: every effectful run stages at least
        # one register (the rotation pointer, the RAM word via write(), or a
        # lock mask via unlock()), so the hidden tallies and port.take() side
        # effects always coincide with a staging run and dormancy is safe.
        @self.seq(pure=True)
        def _commit() -> None:
            transfer: Optional[Transfer] = None
            if self._prio_granted.value:
                transfer = self.prio_transfer.value
            elif self._grant_valid.value:
                idx = self._grant.value
                transfer = self._ports[idx].take()
                self._last.nxt = idx
                self.grants_by_port[idx] = self.grants_by_port.get(idx, 0) + 1
            if transfer is None:
                return
            if transfer.has_data:
                self.regfile.write(transfer.data_reg, transfer.data_value)
                self.lockmgr.unlock(WriteSpace.DATA, transfer.data_reg)
                self.writes_performed += 1
            if transfer.has_flags:
                self.flagfile.write(transfer.flag_reg, transfer.flag_value)
                self.lockmgr.unlock(WriteSpace.FLAG, transfer.flag_reg)
                self.writes_performed += 1

        # See the comment above _commit: tallies and port.take() coincide
        # with staging runs, so pure=True holds on quiet edges.
        self.lint_suppress(
            "contract.impure-pure-seq",
            "tallies and port.take() happen only on granted transfers, which "
            "always stage (rotation pointer / RAM word / lock mask); quiet "
            "edges are mutation-free",
        )

    def attach_port(self, port: ResultPort) -> int:
        """Register a functional unit's result port; returns its index."""
        self._ports.append(port)
        return len(self._ports) - 1

    def attach_priority(self, valid, transfer, ack) -> None:
        """Wire the execution stage's high-priority write port."""
        self.prio_valid = valid
        self.prio_transfer = transfer
        self.prio_ack = ack

    @property
    def n_ports(self) -> int:
        return len(self._ports)

"""Out-of-order issue engine — rename + issue-queue dispatcher stage.

Drop-in replacement for the in-order :class:`~repro.rtm.dispatcher.Dispatcher`
(same decoder/execution stream interface, same futable dispatch ports) that
lets independent younger instructions bypass a stalled older one:

* **Rename at accept.** When an op enters the issue queue its source
  operands are mapped through the :class:`~repro.rtm.rename.RenameTable`
  and each destination is allocated a fresh physical register, which is
  locked in the scoreboard *at the rename edge*.  WAW and WAR hazards
  disappear: a younger write to the same architectural register gets a
  different physical register, and the old one lives on until every older
  reader has issued.
* **Oldest-first issue.** Each cycle one ready op issues from the queue —
  the oldest whose (physical) sources are unlocked and whose target unit
  is idle.  Two ordering fences keep the paper's contracts observable:
  execution-stage ops (GET/GETF, COPY, host writes, …) issue in program
  order among themselves, so the host result stream is byte-identical to
  the in-order machine's; and ops targeting the *same* functional unit
  issue in program order, so stateful units (PRNG, histogram, …) see the
  operation sequence the program wrote.
* **FENCE / HALT / RESET are barriers**: they issue only from the queue
  head and nothing younger may bypass them.
* **Retire unchanged.** Results still drain through the write arbiter and
  the lock manager exactly as before — completion was already
  out-of-order; only *issue* is new.

In-order GET guarantee: a GET reads the physical register its rename-time
map pointed at, i.e. the value produced by the youngest program-order
write before it; since its sources were locked at rename until that write
committed, and GETs issue in program order, the emitted stream equals the
in-order machine's byte for byte.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from dataclasses import dataclass
from typing import Optional

from ..config import FrameworkConfig
from ..fu.protocol import Transfer, WriteSpace
from ..hdl import Component, Stream
from ..isa.opcodes import Opcode
from ..messages.types import DataRecord, FlagVector
from .decoder import DecodedOp, ExecOp, RegSet
from .dispatcher import _STALL_CAUSES
from .futable import FunctionalUnitTable
from .lockmgr import LockManager
from .regfile import FlagRegisterFile, RegisterFile
from .rename import RenameTable


@dataclass(frozen=True)
class RenamedOp:
    """A decoded op with every register field mapped to physical indices."""

    op: DecodedOp
    #: physical sources (readiness check + reader accounting; may repeat)
    sources: RegSet = ()
    #: physical write set (informational; locks were taken at rename)
    write_set: RegSet = ()
    # unit-op operand registers (physical)
    psrc1: int = 0
    psrc2: int = 0
    psrc_flag: int = 0
    psrc_c: int = 0
    # exec-op single source (meaning depends on the opcode)
    psrc: int = 0
    # destinations (physical; default to 0 when unused)
    pdst1: int = 0
    pdst2: int = 0
    pdst_flag: int = 0
    #: pre-resolved execution work retargeted to physical registers
    exec_op: Optional[ExecOp] = None

    @property
    def is_barrier(self) -> bool:
        """FENCE/HALT/RESET: head-of-queue only, nothing may bypass."""
        op = self.op
        return op.require_all_free or (
            op.exec_op is not None
            and (op.exec_op.set_halt or op.exec_op.clear_halt)
        )


class OoODispatcher(Component):
    """Issue-queue dispatch stage with register renaming."""

    def __init__(
        self,
        name: str,
        config: FrameworkConfig,
        regfile: RegisterFile,
        flagfile: FlagRegisterFile,
        lockmgr: LockManager,
        futable: FunctionalUnitTable,
        rename: RenameTable,
        parent: Optional[Component] = None,
    ):
        super().__init__(name, parent)
        self.config = config
        self.regfile = regfile
        self.flagfile = flagfile
        self.lockmgr = lockmgr
        self.futable = futable
        self.rename = rename
        self.window = config.ooo_window
        #: machine-check unit (set by the RTM when state protection is on);
        #: a pending check freezes issue except for a host Reset at the head
        self.mcu = None
        #: from the decoder (DecodedOp payloads)
        self.inp = Stream(self, "in", None)
        #: to the execution stage (ExecOp payloads)
        self.out = Stream(self, "out", None)
        #: the issue queue, oldest first (tuple of RenamedOp)
        self._queue = self.reg("queue", None, ())
        #: queue index selected for issue this cycle (-1: none)
        self._issue_sel = self.signal("issue_sel", None, -1)
        #: high while the queue holds work but nothing can issue
        self.stalled = self.signal("stalled", 1, 0)
        self.dispatch_count = 0
        self.stall_cycles = 0
        self._exec_count = 0
        self._occupancy_max = 0
        self.stall_causes = {cause: 0 for cause in _STALL_CAUSES}

        @self.comb
        def _drive() -> None:
            queue: tuple[RenamedOp, ...] = self._queue.value
            sel = self._select(queue)
            rop = queue[sel] if sel >= 0 else None
            out_valid = 0
            out_payload: Optional[ExecOp] = None
            dispatch_target = None
            if rop is not None:
                if rop.op.kind == "unit":
                    dispatch_target = rop.op.entry.unit
                else:
                    out_valid = 1
                    out_payload = self._resolve(rop)
            for unit in self.futable.units:
                if unit is dispatch_target:
                    self._drive_unit_port(unit, rop)
                else:
                    unit.dp.dispatch.set(0)
            self.out.valid.set(out_valid)
            if out_payload is not None:
                self.out.payload.set(out_payload)
            self._issue_sel.set(sel)
            self.stalled.set(1 if (queue and sel < 0) else 0)
            # Accept gating is payload-independent: queue space plus enough
            # free physical registers for a worst-case rename.
            self.inp.ready.set(
                1 if (len(queue) < self.window and self.rename.can_accept) else 0
            )

        @self.seq
        def _tick() -> None:
            queue: tuple[RenamedOp, ...] = self._queue.value
            sel = self._issue_sel.value
            new_queue = queue
            if sel >= 0:
                rop = queue[sel]
                if rop.op.kind == "unit":
                    self.dispatch_count += 1
                    guard = self.futable._guard
                    if guard is not None:
                        guard.on_dispatch()
                else:
                    self._exec_count += 1
                self.rename.drop_readers(rop.sources)
                new_queue = queue[:sel] + queue[sel + 1 :]
            elif queue:
                self.stall_cycles += 1
                self._classify_stall(queue)
            if self.inp.fires():
                new_queue = new_queue + (self._rename(self.inp.payload.value),)
            elif (
                self.inp.valid.value
                and len(queue) < self.window
                and not self.rename.can_accept
            ):
                self.stall_causes["rename"] += 1
            if new_queue is not queue:
                self._queue.nxt = new_queue
                if len(new_queue) > self._occupancy_max:
                    self._occupancy_max = len(new_queue)
            self.rename.recycle(self.lockmgr)

        # Veto wheel skips while any work is queued, arriving, or awaiting
        # recycle; an empty engine with a drained rename table ages nothing.
        self.wheel(self._wheel_horizon, lambda n: None)

        # Same guard coupling as the in-order dispatcher: scoreboard/ECC
        # shadows repair inline during hazard reads, and their hidden state
        # moves only alongside tracked register edges.
        self.lint_suppress(
            "contract.force-in-proc",
            "inline ECC repair in the guards: guard-coupled to tracked "
            "lock-mask/rename-map/machine-check reads; a force here restores "
            "the value a tracked register already notified readers about",
        )
        self.lint_suppress(
            "contract.hidden-comb-read",
            "guard shadows and fault counters change only alongside tracked "
            "lock-mask / rename-map / machine-check register edges",
        )

    # -- properties ----------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """Work in flight in this stage (quiescence probe)."""
        return bool(self._queue.value)

    def issue_stats(self) -> dict:
        stats = {
            "mode": "ooo",
            "issued_total": self.dispatch_count + self._exec_count,
            "unit_dispatches": self.dispatch_count,
            "exec_ops": self._exec_count,
            "stall_cycles": self.stall_cycles,
            "window_depth": self.window,
            "window_occupancy_max": self._occupancy_max,
        }
        for cause in _STALL_CAUSES:
            stats[f"stall_{cause}"] = self.stall_causes[cause]
        return stats

    def _wheel_horizon(self) -> Optional[int]:
        if self._queue.value:
            return 0
        if self.inp.valid.value:
            return 0
        if self.rename.has_pending:
            return 0
        return None

    # -- issue selection -------------------------------------------------------------

    def _select(self, queue: tuple[RenamedOp, ...]) -> int:
        """Oldest-first scan for the single op issuing this cycle."""
        if not queue:
            return -1
        if self.mcu is not None and self.mcu.pending:
            # Freeze: only a host Reset at the head may issue, so its
            # soft-clear can resolve the check.
            head = queue[0].op
            if (
                head.exec_op is not None
                and head.exec_op.clear_halt
                and self.out.ready.value
            ):
                return 0
            return -1
        exec_blocked = False
        busy_units: set = set()
        for i, rop in enumerate(queue):
            op = rop.op
            if rop.is_barrier:
                # A head barrier waits only for OLDER work: destination
                # locks taken at rename by the queued younger ops behind
                # it must not deadlock the drain condition.
                if (
                    i == 0
                    and self.out.ready.value
                    and (
                        not op.require_all_free
                        or self.lockmgr.all_free_except(
                            self._queued_locks(queue)
                        )
                    )
                ):
                    return 0
                return -1
            ready = not self.lockmgr.any_locked(rop.sources)
            if op.kind == "exec":
                # Execution-stage ops stay in program order among themselves
                # (the in-order host-stream guarantee).
                if not exec_blocked:
                    if ready and self.out.ready.value:
                        return i
                    exec_blocked = True
            else:
                unit = op.entry.unit
                if unit not in busy_units:
                    if ready and unit.dp.idle.value:
                        return i
                    # Per-unit program order: a younger op may not overtake
                    # an older one bound for the same (possibly stateful) unit.
                    busy_units.add(unit)
        return -1

    @staticmethod
    def _queued_locks(queue: tuple[RenamedOp, ...]) -> list:
        """Rename-held destination locks of everything behind the head."""
        pairs: list[tuple[WriteSpace, int]] = []
        for rop in queue[1:]:
            pairs.extend(rop.write_set)
        return pairs

    # -- rename (accept edge) ---------------------------------------------------------

    def _rename(self, op: DecodedOp) -> RenamedOp:
        rt = self.rename
        sources: list[tuple[WriteSpace, int]] = []
        fields = {}

        def src(space: WriteSpace, arch: int) -> int:
            phys = rt.read_source(space, arch)
            sources.append((space, phys))
            return phys

        # Sources map through the *current* table, before this op's own
        # destinations shadow them (LOADIS and FMA read their old dst1).
        if op.kind == "unit":
            instr = op.instr
            fields["psrc1"] = src(WriteSpace.DATA, instr.src1)
            fields["psrc2"] = src(WriteSpace.DATA, instr.src2)
            if getattr(op.entry.unit, "reads_flag", True):
                fields["psrc_flag"] = src(WriteSpace.FLAG, instr.src_flag)
            if getattr(op.entry.unit, "reads_dst1", False):
                fields["psrc_c"] = src(WriteSpace.DATA, instr.dst1)
        elif op.sources:
            # Primitives read at most one register (see decoder hazard sets).
            space, arch = op.sources[0]
            fields["psrc"] = src(space, arch)
        write_set = []
        pdst = {}
        for space, arch in op.write_set:
            phys = rt.allocate(space, arch)
            self.lockmgr.lock(space, phys)
            write_set.append((space, phys))
            pdst[(space, arch)] = phys
        if op.kind == "unit":
            instr = op.instr
            fields["pdst1"] = pdst.get((WriteSpace.DATA, instr.dst1), 0)
            fields["pdst2"] = pdst.get((WriteSpace.DATA, instr.dst2), 0)
            fields["pdst_flag"] = pdst.get((WriteSpace.FLAG, instr.dst_flag), 0)
        elif write_set:
            space, phys = write_set[0]
            if space is WriteSpace.DATA:
                fields["pdst1"] = phys
            else:
                fields["pdst_flag"] = phys
        exec_op = op.exec_op
        if exec_op is not None and exec_op.transfer is not None:
            # Pre-resolved transfer (host write, LOADI, SETF): retarget the
            # destination register to its fresh physical slot.
            t = exec_op.transfer
            if t.data_reg is not None:
                t = dc_replace(t, data_reg=pdst[(WriteSpace.DATA, t.data_reg)])
            if t.flag_reg is not None:
                t = dc_replace(t, flag_reg=pdst[(WriteSpace.FLAG, t.flag_reg)])
            exec_op = dc_replace(exec_op, transfer=t)
        return RenamedOp(
            op=op,
            sources=tuple(sources),
            write_set=tuple(write_set),
            exec_op=exec_op,
            **fields,
        )

    # -- unit dispatch ----------------------------------------------------------------

    def _drive_unit_port(self, unit, rop: RenamedOp) -> None:
        instr = rop.op.instr
        dp = unit.dp
        dp.variety.set(instr.variety)
        dp.op_a.set(self.regfile.read(rop.psrc1))
        dp.op_b.set(self.regfile.read(rop.psrc2))
        dp.flag_in.set(self.flagfile.read(rop.psrc_flag))
        dp.dst1.set(rop.pdst1)
        dp.dst2.set(rop.pdst2)
        dp.dst_flag.set(rop.pdst_flag)
        dp.drive_op_c(self.regfile, rop.psrc_c)
        dp.dispatch.set(1)

    # -- primitive resolution (physical-register reads at issue) ------------------------

    def _resolve(self, rop: RenamedOp) -> ExecOp:
        if rop.exec_op is not None:
            return rop.exec_op
        op = rop.op
        instr = op.instr
        cfg = self.config
        opcode = instr.opcode
        if opcode == Opcode.COPY:
            return ExecOp(
                transfer=Transfer(
                    data_reg=rop.pdst1, data_value=self.regfile.read(rop.psrc)
                )
            )
        if opcode == Opcode.CPFLAG:
            return ExecOp(
                transfer=Transfer(
                    flag_reg=rop.pdst_flag,
                    flag_value=self.flagfile.read(rop.psrc),
                )
            )
        if opcode == Opcode.GET:
            return ExecOp(
                message=DataRecord(instr.variety, self.regfile.read(rop.psrc))
            )
        if opcode == Opcode.GETF:
            return ExecOp(
                message=FlagVector(instr.variety, self.flagfile.read(rop.psrc))
            )
        if opcode == Opcode.LOADIS:
            merged = ((self.regfile.read(rop.psrc) << 32) | instr.imm) & cfg.word_mask
            return ExecOp(transfer=Transfer(data_reg=rop.pdst1, data_value=merged))
        raise AssertionError(f"unresolvable primitive opcode {opcode:#x}")

    # -- stall-cause classification (observability only; guard-free peeks) ---------------

    def _classify_stall(self, queue: tuple[RenamedOp, ...]) -> None:
        head = queue[0]
        causes = self.stall_causes
        if self.mcu is not None and self.mcu.pending:
            causes["machine_check"] += 1
        elif head.op.require_all_free and not self.lockmgr.peek_all_free_except(
            self._queued_locks(queue)
        ):
            causes["fence"] += 1
        elif self.lockmgr.peek_any_locked(head.sources):
            causes["raw"] += 1
        else:
            causes["structural"] += 1

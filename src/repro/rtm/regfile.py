"""The main register file of the Register Transfer Machine.

"The main register file holds data, and its word size is configurable in
multiples of 32 bits" (§III).  Reads are combinational (up to three per
instruction, performed in the dispatcher stage); there is a single write
path shared between the write arbiter's granted transfer and the execution
stage's high-priority write — sharing that path is the write arbiter's job,
so this component simply exposes the RAM and enforces the index range.

With the out-of-order issue engine enabled the same component is built
over the *physical* register pool (``config.data_pool_size`` >
``config.n_regs``): architectural indices occupy the low slots at reset
(identity rename map) and the extra words are the rename headroom.  The
component itself is index-agnostic — the rename table owns the mapping.
"""

from __future__ import annotations

from typing import Optional

from ..config import FrameworkConfig
from ..hdl import Component, SyncRam


class RegisterFile(Component):
    """N words of ``config.word_bits`` bits with combinational reads."""

    def __init__(
        self,
        name: str,
        config: FrameworkConfig,
        parent: Optional[Component] = None,
        n_regs: Optional[int] = None,
    ):
        super().__init__(name, parent)
        self.config = config
        self.n_regs = n_regs if n_regs is not None else config.n_regs
        self.ram = SyncRam("ram", self.n_regs, config.word_bits, parent=self)

    def valid_index(self, reg: int) -> bool:
        return 0 <= reg < self.n_regs

    def read(self, reg: int) -> int:
        """Combinational read (dispatcher stage)."""
        return self.ram.read(reg)

    def write(self, reg: int, value: int) -> None:
        """Edge write (write arbiter only)."""
        self.ram.write(reg, value)

    def dump(self) -> tuple[int, ...]:
        return self.ram.dump()

    def load(self, values) -> None:
        self.ram.load(values)


class FlagRegisterFile(Component):
    """The secondary register file "holding vectors of flags" (§III)."""

    def __init__(
        self,
        name: str,
        config: FrameworkConfig,
        parent: Optional[Component] = None,
        n_regs: Optional[int] = None,
    ):
        super().__init__(name, parent)
        self.config = config
        self.n_regs = n_regs if n_regs is not None else config.n_flag_regs
        self.ram = SyncRam("ram", self.n_regs, config.flag_bits, parent=self)

    def valid_index(self, reg: int) -> bool:
        return 0 <= reg < self.n_regs

    def read(self, reg: int) -> int:
        return self.ram.read(reg)

    def write(self, reg: int, value: int) -> None:
        self.ram.write(reg, value)

    def dump(self) -> tuple[int, ...]:
        return self.ram.dump()

    def load(self, values) -> None:
        self.ram.load(values)

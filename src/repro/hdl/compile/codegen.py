"""Source emission for the compiled backend.

Given the front end's per-process plans, this module emits one Python
module containing three functions:

* ``_sweep()`` — one rank-ordered, wake-driven pass over every
  combinational process.  Changed signals are drained from the pending
  list into per-guard wake flags through a static fanout map (``_FAN`` →
  ``_W``); a flagged guard is polled inline (a tuple of hoisted
  ``._value`` loads compared against the last-run tuple) and only
  executed on a mismatch; translated bodies run as specialized ``_pN``
  functions; unguarded fallbacks run unconditionally at the end of the
  sweep, like ``always`` processes under the event kernel.  Returns the
  number of process executions.
* ``_edge()`` — the fused sequential/commit phase: guarded sequential
  processes with event-kernel dormancy semantics (run iff the last run
  staged something or a polled read changed), dynamic pure processes via
  engine helpers, unconditional impure fallbacks, vectorized executors,
  then an inlined atomic commit of the staged registers.  Returns
  ``(runs, vector_applied)``.
* ``_scan_seq()`` — True when any *non-wheeled* sequential process would
  run on the next edge; the engine's time-wheel scan vetoes jumps on it.

The module is ``exec``-compiled once per system into a namespace holding
the hoisted objects (``_h<n>`` signals and owners), guard state lists,
fallback functions and a handful of kernel internals (``_CH`` the change
tracker, ``_U`` the unset sentinel, ``_SL`` the staged-register list,
``_CHG`` the simulator's pending list).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..signal import Signal

__all__ = ["CombPlan", "SeqPlan", "Hoister", "GeneratedModule", "generate"]

#: guard sentinel: never equal to any value tuple, so the first poll runs
_NEVER = (object(),)


class Hoister:
    """Allocates stable generated-module names for live Python objects."""

    def __init__(self) -> None:
        self._names: dict[int, str] = {}
        self.objects: dict[str, Any] = {}
        self._n = 0

    def __call__(self, obj: Any) -> str:
        name = self._names.get(id(obj))
        if name is None:
            name = f"_h{self._n}"
            self._n += 1
            self._names[id(obj)] = name
            self.objects[name] = obj
        return name


@dataclass
class CombPlan:
    """Execution plan for one combinational process."""

    fn: Callable[[], None]
    index: int
    #: "translated" | "guarded" | "unguarded"
    kind: str
    wheeled: bool
    #: declared ``always=True`` (vs merely unprovable) — wheel coverage
    always: bool = False
    guard_sigs: list = field(default_factory=list)
    guard_hidden: list = field(default_factory=list)  # (owner, attr, mode)
    #: signals read inside property getters on the navigation path: part
    #: of the wake set, not the poll tuple (see frontend.guard_reads)
    wake_sigs: list = field(default_factory=list)
    body: Optional[list] = None  # translated lines
    rank: int = 0


@dataclass
class SeqPlan:
    """Execution plan for one sequential process."""

    fn: Callable[[], None]
    index: int
    #: "translated" | "guarded" | "dynamic" | "always"
    kind: str
    wheeled: bool
    guard_sigs: list = field(default_factory=list)
    guard_hidden: list = field(default_factory=list)
    body: Optional[list] = None


@dataclass
class GeneratedModule:
    """The exec-compiled module plus the state the engine must manage."""

    source: str
    sweep: Callable[[], int]
    edge: Callable[[], tuple]
    scan_seq: Callable[[], bool]
    guards: list  # guard state lists, reset to re-run everything
    wake: list  # per-ranked-plan wake flags; set all True to force re-polls


def _guard_tuple(plan: Any, hoist: Hoister) -> str:
    parts = [f"{hoist(s)}._value" for s in plan.guard_sigs]
    for owner, attr, mode in plan.guard_hidden:
        load = f"{hoist(owner)}.{attr}"
        parts.append(load if mode == "value" else f"_snap({load})")
    if not parts:
        return "()"
    return "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"


def generate(
    comb: list[CombPlan],
    seq: list[SeqPlan],
    executors: list,
    hoist: Hoister,
    namespace: dict,
    dynamic_runs: dict,
    dynamic_scans: dict,
) -> GeneratedModule:
    """Emit, compile and wire the specialized module.

    ``namespace`` must already contain ``_CH``, ``_U``, ``_SL`` and
    ``_CHG``; hoisted objects, guard lists, fallbacks, executor methods
    and the dynamic-process helpers (``dynamic_runs``/``dynamic_scans``,
    keyed by seq plan index) are installed here.
    """
    out: list[str] = []
    emit = out.append
    guards: list = []

    # specialized process bodies
    for p in comb:
        if p.kind == "translated" and p.body is not None:
            emit(f"def _p{p.index}():")
            for line in p.body:
                emit("    " + line)
            emit("")
    for s in seq:
        if s.kind == "translated" and s.body is not None:
            emit(f"def _e{s.index}():")
            for line in s.body:
                emit("    " + line)
            emit("")

    # -- settle sweep ---------------------------------------------------------
    # The sweep is wake-driven, mirroring the event kernel's notification
    # queue with static dispatch: every signal in a guard's wake set maps
    # (via _FAN) to the guard's slot in the _W flag list, _drain converts
    # the pending changed-signal list into raised flags, and only flagged
    # guards are polled.  Draining again at each rank boundary lets a
    # whole forward cascade complete in a single sweep, like the polled
    # ordering did.
    ordered = sorted(
        (p for p in comb if p.kind != "unguarded"),
        key=lambda p: (p.rank, p.index),
    )
    wake: list = [True] * len(ordered)
    fanout: dict = {}
    namespace["_W"] = wake
    namespace["_FAN"] = fanout
    def emit_drain() -> None:
        # inlined at each rank boundary: the truthiness test keeps an
        # empty drain at one bytecode op instead of a function call
        emit("    if _CHG:")
        emit("        for _s in _CHG:")
        emit("            _f = _FAN.get(_s)")
        emit("            if _f is not None:")
        emit("                for _k in _f:")
        emit("                    _W[_k] = True")
        emit("        del _CHG[:]")

    emit("def _sweep():")
    emit("    _ran = 0")
    for k, _ex in enumerate(executors):
        emit(f"    if _x{k}_settle():")
        emit("        _ran += 1")
    last_rank: Optional[int] = None
    for pos, p in enumerate(ordered):
        g = f"_g{p.index}"
        state: list = [_NEVER]
        guards.append(state)
        namespace[g] = state
        call = f"_p{p.index}()" if p.kind == "translated" else f"_f{p.index}()"
        if p.kind == "guarded":
            namespace[f"_f{p.index}"] = p.fn
        if p.rank != last_rank:
            emit_drain()
            last_rank = p.rank
        wake_set = set(p.guard_sigs) | set(p.wake_sigs)
        if wake_set:
            for sig in wake_set:
                fanout.setdefault(sig, []).append(pos)
            emit(f"    if _W[{pos}]:")
            emit(f"        _W[{pos}] = False")
            ind = "    "
        else:
            # no signal can wake this guard (hidden-only inputs): poll
            # unconditionally, the way the event kernel would always-run
            # a process it discovered no reads for
            ind = ""
        emit(f"    {ind}_t = {_guard_tuple(p, hoist)}")
        emit(f"    {ind}if _t != {g}[0]:")
        emit(f"        {ind}{g}[0] = _t")
        emit(f"        {ind}{call}")
        emit(f"        {ind}_ran += 1")
    unguarded = [p for p in comb if p.kind == "unguarded"]
    for p in unguarded:
        namespace[f"_f{p.index}"] = p.fn
        emit(f"    _f{p.index}()")
    if unguarded:
        emit(f"    _ran += {len(unguarded)}")
    emit("    return _ran")
    emit("")

    # -- edge phase -----------------------------------------------------------
    emit("def _edge():")
    emit("    _ran = 0")
    for s in seq:
        if s.kind in ("translated", "guarded"):
            g = f"_s{s.index}"
            state = [_NEVER, True]
            guards.append(state)
            namespace[g] = state
            call = f"_e{s.index}()" if s.kind == "translated" else f"_q{s.index}()"
            if s.kind == "guarded":
                namespace[f"_q{s.index}"] = s.fn
            emit(f"    _t = {_guard_tuple(s, hoist)}")
            emit(f"    if {g}[1] or _t != {g}[0]:")
            emit(f"        {g}[0] = _t")
            emit("        _n0 = _CH.stages")
            emit(f"        {call}")
            emit(f"        {g}[1] = _n0 != _CH.stages")
            emit("        _ran += 1")
        elif s.kind == "dynamic":
            namespace[f"_d{s.index}"] = dynamic_runs[s.index]
            emit(f"    _ran += _d{s.index}()")
        else:  # always
            namespace[f"_q{s.index}"] = s.fn
            emit(f"    _q{s.index}()")
            emit("    _ran += 1")
    emit("    _vec = False")
    for k, _ex in enumerate(executors):
        emit(f"    if _x{k}_edge():")
        emit("        _vec = True")
    # fused atomic register commit (inlined Reg.commit)
    emit("    _st = _SL")
    emit("    if _st:")
    emit("        for _r in _st:")
    emit("            _v = _r._staged")
    emit("            _r._staged = _U")
    emit("            if _v != _r._value:")
    emit("                _r._value = _v")
    emit("                _CHG.append(_r)")
    emit("        del _st[:]")
    emit("    return _ran, _vec")
    emit("")

    # -- wheel scan over non-wheeled sequential processes ---------------------
    emit("def _scan_seq():")
    body_emitted = False
    for s in seq:
        if s.wheeled:
            continue
        if s.kind in ("translated", "guarded"):
            g = f"_s{s.index}"
            emit(f"    if {g}[1] or {_guard_tuple(s, hoist)} != {g}[0]:")
            emit("        return True")
            body_emitted = True
        elif s.kind == "dynamic":
            namespace[f"_dw{s.index}"] = dynamic_scans[s.index]
            emit(f"    if _dw{s.index}():")
            emit("        return True")
            body_emitted = True
        # "always" processes veto in the engine before _scan_seq is called
    if not body_emitted:
        emit("    pass")
    emit("    return False")
    emit("")

    for k, ex in enumerate(executors):
        namespace[f"_x{k}_settle"] = ex.settle
        namespace[f"_x{k}_edge"] = ex.edge

    namespace.update(hoist.objects)
    source = "\n".join(out)
    code = compile(source, "<repro.hdl.compile>", "exec")
    exec(code, namespace)
    return GeneratedModule(
        source=source,
        sweep=namespace["_sweep"],
        edge=namespace["_edge"],
        scan_seq=namespace["_scan_seq"],
        guards=guards,
        wake=wake,
    )


def reset_guards(guards: list) -> None:
    """Force every guard to mismatch (and every seq process to re-arm)."""
    for state in guards:
        state[0] = _NEVER
        if len(state) > 1:
            state[1] = True


def guard_signals(plans: list) -> set[Signal]:
    """Union of all polled signals (introspection/debug helper)."""
    acc: set[Signal] = set()
    for p in plans:
        acc.update(p.guard_sigs)
    return acc

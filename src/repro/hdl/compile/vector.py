"""Vectorized-executor discovery for the compiled backend.

A component opts its SIMD-regular substructure into the numpy path by
publishing a ``__compile_vector__()`` method.  Called once at compile
time, it returns an *executor* (or ``None`` to decline) that absorbs a
set of interpreted processes and replaces them with array operations:

* ``absorbed`` — iterable of the process functions the executor replaces;
  the code generator drops them from the sweep/edge plans entirely.
* ``settle()`` — recompute the combinational outputs derived from the
  vector state, returning True when work was done.  Implementations
  epoch-guard this so repeated sweeps of one settle cost nothing.
* ``edge()`` — apply one clock edge to the vector state, returning True
  when state actually changed (the engine then re-settles next cycle).
* ``horizon()`` — time-wheel contribution: ``0`` vetoes the next jump
  (real work pending), ``None`` leaves other hooks in charge.
* ``on_reset()`` — restore power-on state (called from
  :meth:`CompiledSimulator.reset` after the component reset hooks).
* ``n_cells`` — element count, reported in ``KernelStats.vectorized_cells``.

The concrete executors live next to the structures they vectorize (the
ξ-sort arrays implement theirs in :mod:`repro.xisort.cellarray`); this
module only defines the discovery walk, keeping the kernel free of any
dependency on the functional-unit libraries built on top of it.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from ..component import Component

__all__ = ["VectorExecutor", "collect_executors"]


@runtime_checkable
class VectorExecutor(Protocol):
    """Structural contract for compiled-backend vector executors."""

    n_cells: int

    @property
    def absorbed(self) -> Any: ...

    def settle(self) -> bool: ...

    def edge(self) -> bool: ...

    def horizon(self) -> Any: ...

    def on_reset(self) -> None: ...


def collect_executors(top: Component) -> tuple[list, set]:
    """Walk the hierarchy, instantiate executors, collect absorbed procs.

    Returns ``(executors, absorbed_fn_ids)``; a component without the
    hook — or whose hook declines by returning ``None`` — stays on the
    interpreted/specialized scalar path.
    """
    executors: list = []
    absorbed: set = set()
    for comp in top.walk():
        hook = getattr(comp, "__compile_vector__", None)
        if hook is None:
            continue
        ex = hook()
        if ex is None:
            continue
        executors.append(ex)
        absorbed.update(id(fn) for fn in ex.absorbed)
    return executors, absorbed

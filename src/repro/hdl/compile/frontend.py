"""Compiler front end: closure-based classification and the AST translator.

The front end decides, per process, which of three execution strategies
the generated module uses:

* **translated** — the body is rewritten into straight-line Python over
  hoisted signal references (``_h3._value``) with inlined set/stage
  semantics: no dict dispatch, no per-signal attribute chasing, no read
  tracking.  Only a restricted statement/expression subset qualifies.
* **guarded fallback** — the original function object is called, but only
  when the value tuple of its *proven* read closure (signals plus benign
  hidden attribute loads) changed since its last run.  Polling replaces
  the event kernel's notification queue.
* **unguarded** — the closure could not be proven (opaque reads, unknown
  calls, mutable hidden state): the function runs on every sweep, exactly
  like an ``always=True`` process under the event kernel.

The dependence closures come from the lint AST pass
(:func:`repro.analysis.lint.astpass.closure_of`) — one front end shared by
static analysis and codegen, so a process lint can reason about is also a
process the compiler can specialize.
"""

from __future__ import annotations

import ast
import enum
import inspect
import textwrap
from typing import Any, Callable, Optional

from ...analysis.dataflow import domain as _dom
from ...analysis.lint.astpass import ProcClosure, _find_def, _root_env, closure_of
from ..components import Stream
from ..signal import Reg, Signal
from ..signal import tracking as _signal_tracking

__all__ = [
    "ProcClosure",
    "closure_of",
    "guard_eligible",
    "guard_reads",
    "Translator",
    "Untranslatable",
]

#: value types a guard tuple may capture by value: comparing the captured
#: value with ``==`` detects every rebinding, because the object itself
#: can never mutate in place
_SCALAR_TYPES = (int, float, str, bool, type(None))


def _immutable_value(value: Any) -> bool:
    if isinstance(value, _SCALAR_TYPES):
        return True
    params = getattr(type(value), "__dataclass_params__", None)
    return params is not None and bool(params.frozen)


_MISSING = object()


def _constant_load(owner: Any, value: Any) -> bool:
    """True when ``owner.attr`` can never change for the design's lifetime.

    An immutable *value* still changes if the attribute is rebound to a
    different one — unless the owner forbids rebinding outright: enum
    classes reject member reassignment, frozen dataclasses raise
    ``FrozenInstanceError`` on ``setattr``.  Such loads are compile-time
    constants and need no guard slot at all.
    """
    if isinstance(owner, type) and issubclass(owner, enum.Enum):
        return True
    params = getattr(type(owner), "__dataclass_params__", None)
    return params is not None and bool(params.frozen)


def _snap(x: Any) -> Any:
    """O(1) rebinding probe for a hidden guard input: value or identity.

    The reference semantics a guard must reproduce are the *event
    kernel's*, and its dynamic sensitivity watches only the signals a
    process actually read on its last run — never the hidden objects it
    navigated through.  A guarded process additionally has a statically
    complete read set (``read_complete``), so the only way its polled
    signal set can go stale is the navigation path itself changing: the
    attribute being rebound to a different object.  Identity catches
    exactly that.  Interior mutation of the object is deliberately not
    polled — the event kernel would not wake the process for it either,
    and every program where that matters already diverges between the
    event and exhaustive kernels, outside the framework's contract.
    """
    return x if isinstance(x, _SCALAR_TYPES) else id(x)


def _computed_reads(owner: Any, attr: str) -> Optional[set]:
    """Signals a computed attribute's getter reads, or None for stored attrs.

    A load that resolves through a descriptor (``@property``) runs code on
    every access, so polling it costs whatever the getter costs — and a
    getter deriving purely from Python state (``component.path`` walking
    the parent chain) can never wake an event-kernel process anyway, since
    dynamic sensitivity only watches signals.  Sampling the getter once
    under the read-tracking hook separates the two kinds: an empty set
    means the load is invisible to the reference kernel and may be dropped
    from the guard; a non-empty set means the getter derives from signal
    state and must keep being polled by value.
    """
    if not isinstance(inspect.getattr_static(type(owner), attr, None),
                      property):
        return None
    reads: set = set()
    with _signal_tracking(reads=reads):
        try:
            getattr(owner, attr)
        except Exception:
            pass
    return reads


def _pollable_hidden(
    closure: ProcClosure,
) -> Optional[tuple[list[tuple[Any, str, str]], set]]:
    """The hidden loads a guard must poll, or ``None`` when unguardable.

    Returns ``(polled, wake)``: the (owner, attr, mode) loads the guard
    tuple samples, plus the *wake signals* — signals read inside property
    getters along the navigation path.  The AST pass cannot see through a
    getter, so those signals are absent from ``closure.reads``; the event
    kernel still subscribes to them (its read tracking is active while
    the getter runs inside the process), so the wake-driven sweep must
    treat them as guard inputs too.  The getter is assumed to read a
    fixed signal set — the same static-closure contract ``read_complete``
    already places on the process body itself.

    Sieve over the closure's hidden attribute loads:

    * attribute present, immutable, on a rebind-proof owner (see
      :func:`_constant_load`) → a compile-time constant, dropped;
    * attribute resolved through a property whose getter reads no signals
      (see :func:`_computed_reads`) → invisible to the event kernel's
      dynamic sensitivity, dropped — recomputed paths and unit tables
      land here;
    * attribute present and immutable → polled by value (``"value"``);
    * attribute present and mutable → a stored reference, polled via
      :func:`_snap` (``"snap"``) — port bundles and arbiter port lists
      land here;
    * attribute *missing* on a probe placeholder (``None`` or a bare
      ``object``) → dropped: the AST pass resolves loads on locals that
      are derived from tracked signal reads onto such placeholders, and
      ``read_complete`` already proves their inputs are in the polled
      signal set;
    * a real owner whose attribute does not exist yet — late-bound
      hidden state → ``None``: the load cannot even be sampled at
      compile time, so the process cannot be value-guarded.
    """
    polled: list[tuple[Any, str, str]] = []
    wake: set = set()
    for (_oid, attr), (_text, owner) in closure.hidden_loads.items():
        try:
            value = getattr(owner, attr, _MISSING)
        except Exception:
            value = _MISSING
        if value is _MISSING:
            if owner is None or type(owner) is object:
                continue
            return None
        getter_reads = _computed_reads(owner, attr)
        if getter_reads is not None:
            if not getter_reads:
                continue
            wake |= getter_reads
        if _immutable_value(value):
            if not _constant_load(owner, value):
                polled.append((owner, attr, "value"))
        else:
            polled.append((owner, attr, "snap"))
    return polled, wake


def guard_eligible(closure: ProcClosure) -> bool:
    """May the generated code skip this process on an unchanged read tuple?

    Requires a complete read closure, and every hidden (non-signal)
    attribute load to be pollable (see :func:`_pollable_hidden`) — a
    deeply mutable hidden input (a dict, a numpy array) can change
    without any polled snapshot comparing unequal, which would wrongly
    keep the process asleep.
    """
    return closure.read_complete and _pollable_hidden(closure) is not None


def guard_reads(
    closure: ProcClosure,
) -> tuple[list[Signal], list[tuple[Any, str, str]], list[Signal]]:
    """The inputs of a guard: (signals, hidden loads, extra wake signals).

    The first two lists form the polled value tuple; the third holds
    signals read inside property getters on the navigation path (see
    :func:`_pollable_hidden`) — they join the guard's wake set but not
    its poll tuple, since the polled property value already reflects
    them.  Deterministically ordered so generated source is stable.
    """
    polled, wake = _pollable_hidden(closure) or ([], set())
    sigs = sorted(closure.reads, key=lambda s: (s.name, id(s)))
    hidden = sorted(polled, key=lambda entry: (entry[1], id(entry[0])))
    extra = sorted(wake - set(closure.reads), key=lambda s: (s.name, id(s)))
    return sigs, hidden, extra


# -- the translator -----------------------------------------------------------


class Untranslatable(Exception):
    """Raised (internally) when a body leaves the translatable subset."""


class Translator:
    """Rewrites one process body into specialized statement lines.

    ``hoist`` is the codegen namespace allocator: ``hoist(obj)`` returns
    the stable generated-module name bound to ``obj``.  Resolution of
    attribute chains happens *now*, against the live elaborated design, so
    the emitted code references hoisted objects directly.
    """

    def __init__(self, fn: Callable[[], None], closure: ProcClosure,
                 hoist: Callable[[Any], str],
                 stats: Optional[dict] = None):
        self.fn = fn
        self.closure = closure
        self.hoist = hoist
        self.env = _root_env(fn)
        bound = getattr(fn, "__self__", None)
        if bound is not None:
            self.env["self"] = bound
        self.locals: set[str] = set()
        #: width-only abstract value per local: (AbstractValue, is_int) or
        #: None once a conditional rebind makes the flow-insensitive value
        #: stale.  Feeds mask elision and branch folding; see _abs_eval.
        self._abs_locals: dict[str, Optional[tuple]] = {}
        self._depth = 0
        self.stats = stats if stats is not None else {}
        self.stats.setdefault("masks_elided", 0)
        self.stats.setdefault("branches_folded", 0)

    def translate(self) -> Optional[list[str]]:
        """Translated body lines (unindented), or None when out of subset."""
        c = self.closure
        if not (c.read_complete and c.write_complete):
            return None
        if c.hidden_stores or c.nonlocal_stores:
            return None
        code = getattr(self.fn, "__code__", None)
        if code is None or code.co_argcount:
            return None
        snapshot = dict(self.stats)  # discarded bodies must not count
        try:
            src = textwrap.dedent(inspect.getsource(self.fn))
            tree = ast.parse(src)
            node = _find_def(tree, code.co_name, code.co_firstlineno)
            if node is None or isinstance(node, ast.Lambda):
                return None
            lines: list[str] = []
            for stmt in node.body:
                lines.extend(self._tx_stmt(stmt))
            return lines or ["pass"]
        except Untranslatable:
            self.stats.update(snapshot)
            return None
        except (OSError, SyntaxError, TypeError, ValueError):
            self.stats.update(snapshot)
            return None

    # -- compile-time object resolution --------------------------------------

    def _resolve(self, node: ast.AST) -> Any:
        """Resolve a pure Name/Attribute/const-Subscript chain to an object."""
        if isinstance(node, ast.Name):
            if node.id in self.locals:
                raise Untranslatable(node.id)
            if node.id not in self.env:
                raise Untranslatable(node.id)
            return self.env[node.id]
        if isinstance(node, ast.Attribute):
            base = self._resolve(node.value)
            try:
                return getattr(base, node.attr)
            except Exception as exc:
                raise Untranslatable(str(exc)) from None
        if isinstance(node, ast.Subscript):
            sl = node.slice
            if isinstance(sl, ast.Constant) and isinstance(sl.value, int):
                base = self._resolve(node.value)
                try:
                    return base[sl.value]
                except Exception as exc:
                    raise Untranslatable(str(exc)) from None
        raise Untranslatable(ast.dump(node))

    def _const_int(self, node: ast.AST) -> int:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return int(node.value)
        raise Untranslatable("non-constant index")

    # -- expressions ----------------------------------------------------------

    def _tx_expr(self, node: ast.AST, test: bool = False) -> str:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float, str, bool, type(None))):
                return repr(node.value)
            raise Untranslatable("constant kind")
        if isinstance(node, ast.Name):
            if node.id in self.locals:
                return f"_L_{node.id}"
            obj = self._resolve(node)
            return self._tx_object(obj, test)
        if isinstance(node, ast.Attribute):
            return self._tx_attribute(node, test)
        if isinstance(node, ast.Subscript):
            obj = self._resolve(node)
            return self._tx_object(obj, test)
        if isinstance(node, ast.Call):
            return self._tx_call(node, test)
        if isinstance(node, ast.BinOp):
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise Untranslatable("binop")
            left = self._tx_expr(node.left)
            right = self._tx_expr(node.right)
            return f"({left} {op} {right})"
        if isinstance(node, ast.UnaryOp):
            op = _UNARYOPS.get(type(node.op))
            if op is None:
                raise Untranslatable("unaryop")
            operand = self._tx_expr(node.operand, test=isinstance(node.op, ast.Not))
            return f"({op} {operand})"
        if isinstance(node, ast.BoolOp):
            op = " and " if isinstance(node.op, ast.And) else " or "
            return "(" + op.join(self._tx_expr(v, test) for v in node.values) + ")"
        if isinstance(node, ast.Compare):
            parts = [self._tx_expr(node.left)]
            for cmp_op, comparator in zip(node.ops, node.comparators):
                op = _CMPOPS.get(type(cmp_op))
                if op is None:
                    raise Untranslatable("compare op")
                parts.append(op)
                parts.append(self._tx_expr(comparator))
            return "(" + " ".join(parts) + ")"
        if isinstance(node, ast.IfExp):
            t = self._tx_expr(node.test, test=True)
            a = self._tx_expr(node.body, test)
            b = self._tx_expr(node.orelse, test)
            return f"({a} if {t} else {b})"
        raise Untranslatable(type(node).__name__)

    def _tx_object(self, obj: Any, test: bool) -> str:
        """Emit a resolved object: scalar constants inline, signals by value."""
        if isinstance(obj, Signal):
            if not test:
                raise Untranslatable("bare signal outside a truth context")
            return f"{self.hoist(obj)}._value"
        if isinstance(obj, bool) or obj is None:
            return repr(obj)
        if isinstance(obj, int):
            return repr(int(obj))
        if isinstance(obj, (float, str)):
            return repr(obj)
        raise Untranslatable("unresolvable object kind")

    def _tx_attribute(self, node: ast.Attribute, test: bool) -> str:
        attr = node.attr
        if attr == "value":
            sig = self._resolve(node.value)
            if not isinstance(sig, Signal):
                raise Untranslatable(".value on non-signal")
            return f"{self.hoist(sig)}._value"
        if attr == "nxt":
            reg = self._resolve(node.value)
            if not isinstance(reg, Reg):
                raise Untranslatable(".nxt on non-reg")
            h = self.hoist(reg)
            return f"({h}._value if {h}._staged is _U else {h}._staged)"
        obj = self._resolve(node)
        if isinstance(obj, Signal):
            return self._tx_object(obj, test)
        if _immutable_value(obj) and not isinstance(obj, (Signal, Stream)):
            # a hidden attribute load: emit a runtime load off the hoisted
            # owner, so rebinding between cycles is observed (the guard
            # tuple polls the same attribute)
            owner = self._resolve(node.value)
            return f"{self.hoist(owner)}.{attr}"
        raise Untranslatable("attribute kind")

    def _tx_call(self, node: ast.Call, test: bool) -> str:
        if node.keywords:
            raise Untranslatable("call keywords")
        func = node.func
        if isinstance(func, ast.Name):
            fn = self._resolve(func)
            if fn in (int, bool, abs, len, min, max) and len(node.args) >= 1:
                args = ", ".join(self._tx_expr(a) for a in node.args)
                return f"{fn.__name__}({args})"
            raise Untranslatable("free call")
        if not isinstance(func, ast.Attribute):
            raise Untranslatable("call shape")
        name = func.attr
        if name == "bit" and len(node.args) == 1:
            sig = self._resolve(func.value)
            if not isinstance(sig, Signal):
                raise Untranslatable(".bit on non-signal")
            idx = self._const_int(node.args[0])
            return f"(({self.hoist(sig)}._value >> {idx}) & 1)"
        if name == "bits" and len(node.args) == 2:
            sig = self._resolve(func.value)
            if not isinstance(sig, Signal):
                raise Untranslatable(".bits on non-signal")
            hi = self._const_int(node.args[0])
            lo = self._const_int(node.args[1])
            mask = (1 << (hi - lo + 1)) - 1
            return f"(({self.hoist(sig)}._value >> {lo}) & {mask})"
        if name == "fires" and not node.args:
            stream = self._resolve(func.value)
            if not isinstance(stream, Stream):
                raise Untranslatable(".fires on non-stream")
            v = self.hoist(stream.valid)
            r = self.hoist(stream.ready)
            expr = f"({v}._value and {r}._value)"
            return expr if test else f"bool{expr}"
        raise Untranslatable(f"method call .{name}")

    # -- width-only abstract evaluation ---------------------------------------
    #
    # The value facts the code generator is allowed to use are strictly
    # WEAKER than the lint fixpoint's: a signal read contributes only its
    # width bound [0, mask].  Width bounds hold unconditionally — every
    # kernel write path (set/stage/force/warp) masks, so even SEU
    # injection and checkpoint restores cannot violate them — which is
    # what keeps the specialized module cycle- and VCD-identical under
    # fault campaigns that would invalidate the fixpoint's tighter ranges.

    def _abs_eval(self, node: ast.AST) -> Optional[tuple]:
        """``(AbstractValue, is_int)`` for a translatable expression.

        ``is_int`` asserts the evaluated Python object is an ``int`` (not a
        ``bool``) — mask elision must not change the stored object, and the
        event kernel's ``int(value) & mask`` always commits an ``int``.
        Returns None when no sound claim can be made.
        """
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return _dom.const(int(node.value)), False
            if isinstance(node.value, int):
                return _dom.const(node.value), True
            return None
        if isinstance(node, (ast.Name, ast.Subscript)):
            if isinstance(node, ast.Name) and node.id in self.locals:
                return self._abs_locals.get(node.id)
            try:
                obj = self._resolve(node)
            except Untranslatable:
                return None
            return self._abs_object(obj)
        if isinstance(node, ast.Attribute):
            return self._abs_attribute(node)
        if isinstance(node, ast.Call):
            return self._abs_call(node)
        if isinstance(node, ast.BinOp):
            fn = _ABS_BINOPS.get(type(node.op))
            left = self._abs_eval(node.left)
            right = self._abs_eval(node.right)
            if fn is None or left is None or right is None:
                return None
            return fn(left[0], right[0]), left[1] and right[1]
        if isinstance(node, ast.UnaryOp):
            operand = self._abs_eval(node.operand)
            if operand is None:
                return None
            if isinstance(node.op, ast.UAdd):
                return operand
            if isinstance(node.op, ast.USub):
                return _dom.neg(operand[0]), operand[1]
            if isinstance(node.op, ast.Invert):
                return _dom.invert(operand[0]), operand[1]
            if isinstance(node.op, ast.Not):
                return _dom.logical_not(operand[0]), False
            return None
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            op = _CMPOPS.get(type(node.ops[0]))
            left = self._abs_eval(node.left)
            right = self._abs_eval(node.comparators[0])
            if op is None or left is None or right is None:
                return None
            return _dom.compare(op, left[0], right[0]), False
        if isinstance(node, ast.BoolOp):
            arms = [self._abs_eval(v) for v in node.values]
            if any(a is None for a in arms):
                return None
            # the result is some arm's value, or 0 from a falsy short
            # circuit — join them all with 0 (conservative but sound)
            av = _dom.const(0)
            for a in arms:
                av = _dom.join(av, a[0])
            return av, all(a[1] for a in arms)
        if isinstance(node, ast.IfExp):
            a = self._abs_eval(node.body)
            b = self._abs_eval(node.orelse)
            if a is None or b is None:
                return None
            return _dom.join(a[0], b[0]), a[1] and b[1]
        return None

    def _abs_object(self, obj: Any) -> Optional[tuple]:
        if isinstance(obj, Signal):
            if obj.width is None:
                return None
            return _dom.top(obj.width), True
        if isinstance(obj, bool):
            return _dom.const(int(obj)), False
        if isinstance(obj, int):
            return _dom.const(obj), True
        return None

    def _abs_attribute(self, node: ast.Attribute) -> Optional[tuple]:
        if node.attr in ("value", "nxt"):
            try:
                sig = self._resolve(node.value)
            except Untranslatable:
                return None
            if isinstance(sig, Signal) and sig.width is not None:
                return _dom.top(sig.width), True
            return None
        # hidden attribute loads are emitted as *runtime* loads so
        # rebinding stays observable — only a rebind-proof owner (enum
        # class, frozen dataclass) makes the compile-time value a fact
        try:
            owner = self._resolve(node.value)
            obj = getattr(owner, node.attr)
        except Exception:
            return None
        if isinstance(obj, (bool, int)) and _constant_load(owner, obj):
            return _dom.const(int(obj)), not isinstance(obj, bool)
        return None

    def _abs_call(self, node: ast.Call) -> Optional[tuple]:
        if node.keywords:
            return None
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "bit" and len(node.args) == 1:
                return _dom.interval(0, 1), True
            if func.attr == "bits" and len(node.args) == 2:
                try:
                    hi = self._const_int(node.args[0])
                    lo = self._const_int(node.args[1])
                except Untranslatable:
                    return None
                return _dom.interval(0, (1 << (hi - lo + 1)) - 1), True
            return None
        if not isinstance(func, ast.Name):
            return None
        try:
            fn = self._resolve(func)
        except Untranslatable:
            return None
        args = [self._abs_eval(a) for a in node.args]
        if any(a is None for a in args):
            return None
        if fn is int and len(args) == 1:
            return args[0][0], True
        if fn is bool and len(args) == 1:
            av = args[0][0].truthiness()
            if av is None:
                return _dom.interval(0, 1), False
            return _dom.const(int(av)), False
        if fn is abs and len(args) == 1:
            return _dom.absolute(args[0][0]), args[0][1]
        if fn in (min, max) and len(args) >= 2:
            combine = _dom.minimum if fn is min else _dom.maximum
            av = args[0][0]
            for a in args[1:]:
                av = combine(av, a[0])
            return av, all(a[1] for a in args)
        return None

    def _bind_abs(self, name: str, value: Optional[tuple]) -> None:
        # flow-insensitive soundness: a binding under a conditional may or
        # may not happen, so the local's abstract value becomes unknown
        self._abs_locals[name] = value if self._depth == 0 else None

    # -- statements -----------------------------------------------------------

    def _store_signal(self, sig: Signal, expr: str,
                      node: Optional[ast.AST] = None) -> list[str]:
        h = self.hoist(sig)
        load = f"_v = int({expr}) & {sig._mask}"
        if sig._mask is None:
            load = f"_v = {expr}"
        elif node is not None:
            av = self._abs_eval(node)
            if av is not None and av[1] and av[0].fits(sig._mask):
                # the committed value is provably the expression itself
                load = f"_v = {expr}"
                self.stats["masks_elided"] += 1
        return [
            load,
            f"if _v != {h}._value:",
            f"    {h}._value = _v",
            "    _CH.dirty = True",
            f"    _CHG.append({h})",
        ]

    def _stage_reg(self, reg: Reg, expr: str,
                   node: Optional[ast.AST] = None) -> list[str]:
        h = self.hoist(reg)
        load = f"_v = int({expr}) & {reg._mask}"
        if reg._mask is None:
            load = f"_v = {expr}"
        elif node is not None:
            av = self._abs_eval(node)
            if av is not None and av[1] and av[0].fits(reg._mask):
                load = f"_v = {expr}"
                self.stats["masks_elided"] += 1
        return [
            load,
            f"if {h}._staged is _U:",
            f"    _SL.append({h})",
            f"{h}._staged = _v",
            "_CH.stages += 1",
        ]

    def _tx_stmt(self, stmt: ast.stmt) -> list[str]:
        if isinstance(stmt, ast.Pass):
            return ["pass"]
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                raise Untranslatable("return with value")
            return ["return"]
        if isinstance(stmt, ast.Expr):
            call = stmt.value
            if isinstance(call, ast.Constant):
                return []  # docstring
            if not isinstance(call, ast.Call) or not isinstance(call.func, ast.Attribute):
                raise Untranslatable("expression statement")
            name = call.func.attr
            if name == "set" and len(call.args) == 1 and not call.keywords:
                sig = self._resolve(call.func.value)
                if not isinstance(sig, Signal):
                    raise Untranslatable(".set on non-signal")
                return self._store_signal(sig, self._tx_expr(call.args[0]),
                                          call.args[0])
            if name == "stage" and len(call.args) == 1 and not call.keywords:
                reg = self._resolve(call.func.value)
                if not isinstance(reg, Reg):
                    raise Untranslatable(".stage on non-reg")
                return self._stage_reg(reg, self._tx_expr(call.args[0]),
                                       call.args[0])
            raise Untranslatable(f"statement call .{name}")
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) != 1:
                raise Untranslatable("chained assignment")
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                abs_val = self._abs_eval(stmt.value)
                expr = self._tx_expr(stmt.value)
                self.locals.add(target.id)
                self._bind_abs(target.id, abs_val)
                return [f"_L_{target.id} = {expr}"]
            if isinstance(target, ast.Attribute) and target.attr == "nxt":
                reg = self._resolve(target.value)
                if not isinstance(reg, Reg):
                    raise Untranslatable(".nxt on non-reg")
                return self._stage_reg(reg, self._tx_expr(stmt.value),
                                       stmt.value)
            raise Untranslatable("assignment target")
        if isinstance(stmt, ast.AnnAssign):
            if not isinstance(stmt.target, ast.Name) or stmt.value is None:
                raise Untranslatable("annotated assignment")
            abs_val = self._abs_eval(stmt.value)
            expr = self._tx_expr(stmt.value)
            self.locals.add(stmt.target.id)
            self._bind_abs(stmt.target.id, abs_val)
            return [f"_L_{stmt.target.id} = {expr}"]
        if isinstance(stmt, ast.AugAssign):
            if not isinstance(stmt.target, ast.Name) \
                    or stmt.target.id not in self.locals:
                raise Untranslatable("augmented target")
            op = _BINOPS.get(type(stmt.op))
            if op is None:
                raise Untranslatable("augmented op")
            name = stmt.target.id
            base = self._abs_locals.get(name)
            rhs = self._abs_eval(stmt.value)
            fn = _ABS_BINOPS.get(type(stmt.op))
            if base is not None and rhs is not None and fn is not None:
                self._bind_abs(name, (fn(base[0], rhs[0]),
                                      base[1] and rhs[1]))
            else:
                self._bind_abs(name, None)
            expr = self._tx_expr(stmt.value)
            return [f"_L_{name} = _L_{name} {op} ({expr})"]
        if isinstance(stmt, ast.If):
            av = self._abs_eval(stmt.test)
            verdict = av[0].truthiness() if av is not None else None
            if verdict is not None:
                # the guard is decided by width bounds and rebind-proof
                # constants alone — fold the dead arm away entirely
                self.stats["branches_folded"] += 1
                taken = stmt.body if verdict else stmt.orelse
                lines = []
                for s in taken:
                    lines.extend(self._tx_stmt(s))
                return lines
            test = self._tx_expr(stmt.test, test=True)
            lines = [f"if {test}:"]
            self._depth += 1
            try:
                body = []
                for s in stmt.body:
                    body.extend(self._tx_stmt(s))
                lines.extend("    " + line for line in (body or ["pass"]))
                if stmt.orelse:
                    lines.append("else:")
                    orelse = []
                    for s in stmt.orelse:
                        orelse.extend(self._tx_stmt(s))
                    lines.extend("    " + line
                                 for line in (orelse or ["pass"]))
            finally:
                self._depth -= 1
            return lines
        raise Untranslatable(type(stmt).__name__)


_BINOPS: dict[type, str] = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.FloorDiv: "//",
    ast.Mod: "%", ast.LShift: "<<", ast.RShift: ">>",
    ast.BitAnd: "&", ast.BitOr: "|", ast.BitXor: "^",
}

_UNARYOPS: dict[type, str] = {
    ast.USub: "-", ast.UAdd: "+", ast.Invert: "~", ast.Not: "not",
}

_CMPOPS: dict[type, str] = {
    ast.Eq: "==", ast.NotEq: "!=", ast.Lt: "<", ast.LtE: "<=",
    ast.Gt: ">", ast.GtE: ">=",
}

#: abstract transfer functions for the width-only evaluator
_ABS_BINOPS: dict[type, Any] = {
    ast.Add: _dom.add, ast.Sub: _dom.sub, ast.Mult: _dom.mul,
    ast.FloorDiv: _dom.floordiv, ast.Mod: _dom.mod,
    ast.LShift: _dom.lshift, ast.RShift: _dom.rshift,
    ast.BitAnd: _dom.bitand, ast.BitOr: _dom.bitor, ast.BitXor: _dom.bitxor,
}



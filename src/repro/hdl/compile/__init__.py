"""Graph-specialized codegen backend for the simulation kernel.

``Simulator(top, backend="compiled")`` flattens the elaborated component
graph into one specialized Python module — rank-ordered combinational
evaluation with per-process value guards, a fused sequential/commit edge
phase, and numpy-vectorized executors for SIMD-regular structures — then
``exec``-compiles it once per system.  Processes whose dependence closure
the compiler front end (:func:`repro.analysis.lint.astpass.closure_of`)
cannot prove fall back to interpreted execution automatically, so the
backend is always safe to select.

Modules
-------

* :mod:`.frontend` — classification (translate / guard / fallback) and the
  AST-to-source translator for the provable process subset;
* :mod:`.codegen` — emits the specialized module source (settle sweep,
  edge phase, wheel scan) and manages object hoisting;
* :mod:`.vector` — vectorized executors for components publishing the
  ``__compile_vector__`` hook (the ξ-sort cell arrays);
* :mod:`.engine` — :class:`~repro.hdl.compile.engine.CompiledSimulator`,
  the drop-in :class:`~repro.hdl.sim.Simulator` subclass driving the
  generated module.
"""

from .engine import CompiledSimulator

__all__ = ["CompiledSimulator"]

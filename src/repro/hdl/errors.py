"""Exception types raised by the HDL simulation kernel."""

from __future__ import annotations


class HdlError(Exception):
    """Base class for all kernel-level errors."""


class CombinationalLoopError(HdlError):
    """The combinational settle phase failed to reach a fixpoint.

    Raised when signal values are still changing after the iteration bound,
    which indicates a zero-delay feedback loop through combinational logic
    (e.g. a ready/valid handshake wired back onto itself without a register
    in the cycle).
    """

    def __init__(self, cycle: int, iterations: int, unstable: list[str]):
        self.cycle = cycle
        self.iterations = iterations
        self.unstable = unstable
        names = ", ".join(unstable[:8]) or "<unknown>"
        super().__init__(
            f"combinational logic did not settle at cycle {cycle} after "
            f"{iterations} iterations; unstable signals: {names}"
        )


class WidthError(HdlError):
    """A signal was created or driven with an invalid width or value."""


class MultipleDriverError(HdlError):
    """Two different combinational processes drove the same signal in one settle pass."""


class SimulationError(HdlError):
    """Generic runtime failure inside the simulator (bad component wiring, etc.)."""


class ElaborationError(HdlError):
    """A component hierarchy could not be elaborated into a runnable design."""

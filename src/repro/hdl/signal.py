"""Signals, wires and registers — the value carriers of the simulation kernel.

The kernel models a synchronous digital circuit at the cycle level, in the
style the paper's VHDL targets:

* :class:`Signal` — a combinational net.  Its value is (re)computed by
  combinational processes during the *settle* phase of each cycle.
* :class:`Reg` — a clocked register.  Sequential processes stage a value on
  the ``next`` side during the clock-edge phase; the simulator commits all
  staged values atomically, exactly like D flip-flops sampling on an edge.

Values are plain Python ints masked to the declared bit width.  A width of
``None`` declares a *payload* signal that can carry an arbitrary Python
object; payload signals are used by behavioural models (e.g. message bundles
in the host channel) where bit-exact encoding would add nothing but cost.
Payload signals still obey the two-phase timing discipline, so cycle counts
remain exact.

Scheduler hooks
---------------

Two light-weight hooks make the event-driven settle scheduler in
:mod:`repro.hdl.sim` possible without changing how processes are written:

* **Read tracking** — while the module-level ``_READS`` set is non-None,
  every value read (``.value``, ``.bit``, ``.bits``, ``bool()``, ``int()``)
  records the signal into it.  The simulator points ``_READS`` at a
  process's sensitivity set while running it, which is how each process's
  read set is discovered and kept up to date.
* **Change notification** — each signal carries a ``_pending`` slot that the
  owning simulator points at its changed-signal list during elaboration.
  :meth:`Signal.set`, :meth:`Signal.force` and :meth:`Reg.commit` append the
  signal there whenever its value actually changes, so the scheduler knows
  exactly which fanout cones to re-evaluate.  Signals outside any simulator
  (``_pending is None``) skip the append entirely.

The historical kernel-global :data:`CHANGES` dirty flag is retained: the
exhaustive reference scheduler and the loop-termination check of the
event scheduler both still read it, and tests may assert on it.
"""

from __future__ import annotations

from typing import Any, Optional

from .errors import WidthError

_UNSET = object()

#: When non-None, every signal value read adds the signal to this set.
#: The simulator installs a process's read set here while running it
#: (see ``Simulator``'s discovery/tracked execution paths).
_READS: Optional[set] = None

#: When non-None, every :meth:`Signal.set` call (changing or not) and every
#: :meth:`Reg.stage` call adds the signal to this set.  Active during the
#: discovery settle, where it separates genuinely inert processes (no reads,
#: no writes — the no-op placeholders passive components register) from
#: processes with hidden inputs (no reads, but real outputs), which must
#: fall back to always-run; and during the lint probe pass, which uses it to
#: attribute drivers to processes (see :mod:`repro.analysis.lint`).
_WRITES: Optional[set] = None


class tracking:
    """Context manager installing read/write tracking sets on this module.

    The simulator's discovery pass manipulates :data:`_READS`/:data:`_WRITES`
    inline for speed; out-of-kernel instrumentation (the lint engine's probe
    pass) uses this wrapper instead so nesting inside a live simulator —
    whose own hooks must be restored exactly — stays correct.
    """

    def __init__(self, reads: Optional[set] = None, writes: Optional[set] = None):
        self._reads = reads
        self._writes = writes
        self._saved: tuple = ()

    def __enter__(self) -> "tracking":
        global _READS, _WRITES
        self._saved = (_READS, _WRITES, CHANGES.dirty)
        _READS = self._reads
        _WRITES = self._writes
        return self

    def __exit__(self, *exc: Any) -> None:
        global _READS, _WRITES
        _READS, _WRITES, CHANGES.dirty = self._saved


class _ChangeTracker:
    """Kernel-global dirty flag set by :meth:`Signal.set`.

    The simulator clears it before each settle pass and reads it afterwards;
    this frees combinational processes from having to report whether they
    changed anything.  A single shared flag is sufficient because the kernel
    is single-threaded and one simulator runs at a time per design.

    ``stages`` counts every :meth:`Reg.stage` call (monotonic, never reset).
    The edge scheduler snapshots it around each pure sequential process run:
    an unchanged count proves the run staged nothing — including re-staging
    a register another process already staged, which the per-cycle staged
    list alone could not distinguish — so the process can be disarmed.
    """

    __slots__ = ("dirty", "stages")

    def __init__(self) -> None:
        self.dirty = False
        self.stages = 0


CHANGES = _ChangeTracker()


def mask_for(width: int) -> int:
    """Return the value mask for a bit width."""
    return (1 << width) - 1


class Signal:
    """A combinational net carrying an integer (or object payload) value.

    Parameters
    ----------
    name:
        Hierarchical name, assigned by the owning component.
    width:
        Bit width (>= 1), or ``None`` for an object payload signal.
    reset:
        Value the signal takes on simulator reset and at construction.
    """

    __slots__ = ("name", "width", "_mask", "_value", "reset", "owner",
                 "_pending", "_fanout", "_seq_fanout")

    def __init__(self, name: str, width: Optional[int] = 1, reset: Any = 0):
        if width is not None:
            if not isinstance(width, int) or width < 1:
                raise WidthError(f"signal {name!r}: width must be >= 1 or None, got {width!r}")
            self._mask = mask_for(width)
            reset = int(reset) & self._mask
        else:
            self._mask = None
        self.name = name
        self.width = width
        self.reset = reset
        self._value = reset
        self.owner: Any = None
        #: changed-signal list of the owning simulator (None when unmanaged)
        self._pending: Optional[list] = None
        #: combinational processes sensitive to this signal (scheduler-owned)
        self._fanout: list = []
        #: dormancy-tracked sequential processes reading this signal; a
        #: change re-arms them for the next clock edge (scheduler-owned)
        self._seq_fanout: list = []

    # -- value access -------------------------------------------------------

    @property
    def value(self) -> Any:
        """Current settled value of the net."""
        if _READS is not None:
            _READS.add(self)
        return self._value

    def set(self, value: Any) -> bool:
        """Drive the net; returns True when the value changed.

        Only combinational processes (and the simulator's reset logic) may
        call this.  Sequential processes must target :class:`Reg` ``nxt``.
        """
        if self._mask is not None:
            value = int(value) & self._mask
        if _WRITES is not None:
            _WRITES.add(self)
        if value != self._value:
            self._value = value
            CHANGES.dirty = True
            # Unconditionally notify the owning scheduler (draining a signal
            # with no fanout is a no-op).  Unlike force/commit, set() runs
            # *while* a process executes, and that process may have read this
            # signal for the first time moments ago — its fanout edge is only
            # registered after the run, so gating on a non-empty fanout here
            # would drop the wake-up and stall the feedback loop.
            if self._pending is not None:
                self._pending.append(self)
            return True
        return False

    def force(self, value: Any) -> None:
        """Set the value without dirty-flag tracking (reset / test harness use).

        The owning simulator is still notified of the change so that an
        event-driven settle following the force re-evaluates the fanout.
        The notification is unconditional: the compiled backend never
        populates fanout lists (its generated sweep polls value guards
        instead), so it relies on every forced change landing in the
        pending list; for the event kernel, draining a signal with an
        empty fanout is a cheap no-op.
        """
        if self._mask is not None:
            value = int(value) & self._mask
        if value != self._value:
            self._value = value
            if self._pending is not None:
                self._pending.append(self)

    # -- conveniences --------------------------------------------------------

    def warp(self, value: Any) -> None:
        """Update the value with **no** change notification.

        Reserved for time-wheel ``skip`` hooks batch-aging counters that are
        read only by the hook's own component: the caller guarantees every
        reader already accounts for the jump, so waking fanout (or re-arming
        dormant sequential readers) would only create spurious work.  Using
        this on a signal with combinational readers outside the skipping
        component breaks the settled fixpoint — don't.
        """
        if self._mask is not None:
            value = int(value) & self._mask
        self._value = value

    def bit(self, index: int) -> int:
        """Read a single bit of the current value."""
        if _READS is not None:
            _READS.add(self)
        return (self._value >> index) & 1

    def bits(self, hi: int, lo: int) -> int:
        """Read the inclusive bit slice ``[hi:lo]`` of the current value."""
        if _READS is not None:
            _READS.add(self)
        return (self._value >> lo) & mask_for(hi - lo + 1)

    def __bool__(self) -> bool:
        if _READS is not None:
            _READS.add(self)
        return bool(self._value)

    def __index__(self) -> int:
        if _READS is not None:
            _READS.add(self)
        return int(self._value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        w = "obj" if self.width is None else f"{self.width}b"
        return f"<Signal {self.name} {w} = {self._value!r}>"


class Reg(Signal):
    """A clocked register.

    Sequential processes assign the *next* value via :attr:`nxt` (or
    :meth:`stage`); the simulator commits every staged value at the end of
    the clock-edge phase.  Reading :attr:`value` always yields the value
    latched at the previous edge, which is exactly the semantics of a D
    flip-flop bank and is what makes the pipeline models race-free.
    """

    __slots__ = ("_staged", "_stage_list")

    def __init__(self, name: str, width: Optional[int] = 1, reset: Any = 0):
        super().__init__(name, width, reset)
        self._staged: Any = _UNSET
        #: staged-register list of the owning simulator (None when unmanaged);
        #: lets the edge phase commit only registers that were actually staged
        self._stage_list: Optional[list] = None

    def stage(self, value: Any) -> None:
        """Stage ``value`` to be committed at the coming clock edge."""
        if self._mask is not None:
            value = int(value) & self._mask
        if _WRITES is not None:
            _WRITES.add(self)
        if self._staged is _UNSET and self._stage_list is not None:
            self._stage_list.append(self)
        self._staged = value
        CHANGES.stages += 1

    @property
    def nxt(self) -> Any:
        """The currently staged next value (or the held value if none staged)."""
        return self._value if self._staged is _UNSET else self._staged

    @nxt.setter
    def nxt(self, value: Any) -> None:
        self.stage(value)

    def commit(self) -> bool:
        """Latch the staged value; returns True when the register changed."""
        if self._staged is _UNSET:
            return False
        changed = self._staged != self._value
        self._value = self._staged
        self._staged = _UNSET
        # Notify unconditionally: the compiled backend keeps no fanout maps
        # (its settle polls value guards off the pending list), and for the
        # event kernel draining a fanout-less register is a cheap no-op.
        if changed and self._pending is not None:
            self._pending.append(self)
        return changed

    def reset_state(self) -> None:
        """Restore the reset value and drop any staged update."""
        self._value = self.reset
        self._staged = _UNSET

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        w = "obj" if self.width is None else f"{self.width}b"
        return f"<Reg {self.name} {w} = {self._value!r}>"

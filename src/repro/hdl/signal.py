"""Signals, wires and registers — the value carriers of the simulation kernel.

The kernel models a synchronous digital circuit at the cycle level, in the
style the paper's VHDL targets:

* :class:`Signal` — a combinational net.  Its value is (re)computed by
  combinational processes during the *settle* phase of each cycle.
* :class:`Reg` — a clocked register.  Sequential processes stage a value on
  the ``next`` side during the clock-edge phase; the simulator commits all
  staged values atomically, exactly like D flip-flops sampling on an edge.

Values are plain Python ints masked to the declared bit width.  A width of
``None`` declares a *payload* signal that can carry an arbitrary Python
object; payload signals are used by behavioural models (e.g. message bundles
in the host channel) where bit-exact encoding would add nothing but cost.
Payload signals still obey the two-phase timing discipline, so cycle counts
remain exact.
"""

from __future__ import annotations

from typing import Any, Optional

from .errors import WidthError

_UNSET = object()


class _ChangeTracker:
    """Kernel-global dirty flag set by :meth:`Signal.set`.

    The simulator clears it before each settle pass and reads it afterwards;
    this frees combinational processes from having to report whether they
    changed anything.  A single shared flag is sufficient because the kernel
    is single-threaded and one simulator runs at a time per design.
    """

    __slots__ = ("dirty",)

    def __init__(self) -> None:
        self.dirty = False


CHANGES = _ChangeTracker()


def mask_for(width: int) -> int:
    """Return the value mask for a bit width."""
    return (1 << width) - 1


class Signal:
    """A combinational net carrying an integer (or object payload) value.

    Parameters
    ----------
    name:
        Hierarchical name, assigned by the owning component.
    width:
        Bit width (>= 1), or ``None`` for an object payload signal.
    reset:
        Value the signal takes on simulator reset and at construction.
    """

    __slots__ = ("name", "width", "_mask", "_value", "reset", "owner")

    def __init__(self, name: str, width: Optional[int] = 1, reset: Any = 0):
        if width is not None:
            if not isinstance(width, int) or width < 1:
                raise WidthError(f"signal {name!r}: width must be >= 1 or None, got {width!r}")
            self._mask = mask_for(width)
            reset = int(reset) & self._mask
        else:
            self._mask = None
        self.name = name
        self.width = width
        self.reset = reset
        self._value = reset
        self.owner: Any = None

    # -- value access -------------------------------------------------------

    @property
    def value(self) -> Any:
        """Current settled value of the net."""
        return self._value

    def set(self, value: Any) -> bool:
        """Drive the net; returns True when the value changed.

        Only combinational processes (and the simulator's reset logic) may
        call this.  Sequential processes must target :class:`Reg` ``nxt``.
        """
        if self._mask is not None:
            value = int(value) & self._mask
        if value != self._value:
            self._value = value
            CHANGES.dirty = True
            return True
        return False

    def force(self, value: Any) -> None:
        """Set the value without change tracking (reset / test harness use)."""
        if self._mask is not None:
            value = int(value) & self._mask
        self._value = value

    # -- conveniences --------------------------------------------------------

    def bit(self, index: int) -> int:
        """Read a single bit of the current value."""
        return (self._value >> index) & 1

    def bits(self, hi: int, lo: int) -> int:
        """Read the inclusive bit slice ``[hi:lo]`` of the current value."""
        return (self._value >> lo) & mask_for(hi - lo + 1)

    def __bool__(self) -> bool:
        return bool(self._value)

    def __index__(self) -> int:
        return int(self._value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        w = "obj" if self.width is None else f"{self.width}b"
        return f"<Signal {self.name} {w} = {self._value!r}>"


class Reg(Signal):
    """A clocked register.

    Sequential processes assign the *next* value via :attr:`nxt` (or
    :meth:`stage`); the simulator commits every staged value at the end of
    the clock-edge phase.  Reading :attr:`value` always yields the value
    latched at the previous edge, which is exactly the semantics of a D
    flip-flop bank and is what makes the pipeline models race-free.
    """

    __slots__ = ("_staged",)

    def __init__(self, name: str, width: Optional[int] = 1, reset: Any = 0):
        super().__init__(name, width, reset)
        self._staged: Any = _UNSET

    def stage(self, value: Any) -> None:
        """Stage ``value`` to be committed at the coming clock edge."""
        if self._mask is not None:
            value = int(value) & self._mask
        self._staged = value

    @property
    def nxt(self) -> Any:
        """The currently staged next value (or the held value if none staged)."""
        return self._value if self._staged is _UNSET else self._staged

    @nxt.setter
    def nxt(self, value: Any) -> None:
        self.stage(value)

    def commit(self) -> bool:
        """Latch the staged value; returns True when the register changed."""
        if self._staged is _UNSET:
            return False
        changed = self._staged != self._value
        self._value = self._staged
        self._staged = _UNSET
        return changed

    def reset_state(self) -> None:
        """Restore the reset value and drop any staged update."""
        self._value = self.reset
        self._staged = _UNSET

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        w = "obj" if self.width is None else f"{self.width}b"
        return f"<Reg {self.name} {w} = {self._value!r}>"

"""Generic reusable circuit elements — the kernel's "COTS library".

The paper assumes a library of commercial-off-the-shelf VHDL blocks
(receivers, transmitters, FIFOs, arbiters; thesis Fig. 1.2).  This module
provides the simulation-level equivalents that the framework components are
assembled from:

* :class:`Stream` — a valid/ready/payload handshake bundle.  This is the
  point-to-point connection discipline of the paper's pipeline ("Handshaking
  is used to control transmission of data between pipeline stages ... there
  is no global control for stalling the pipeline", §III).
* :class:`PipeStage` — a registered stage that buffers one payload, used to
  build elastic pipelines.
* :class:`RoundRobinArbiter` / :func:`priority_grant` — grant logic for the
  write arbiter.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from .component import Component
from .signal import Signal


class Stream:
    """A unidirectional valid/ready handshake with a payload net.

    The producer drives ``valid`` and ``payload`` combinationally from its
    own registers; the consumer drives ``ready`` combinationally.  A word is
    transferred on every clock edge at which both are high (the stream
    *fires*).  Either side may deassert to stall locally.
    """

    def __init__(self, comp: Component, name: str, width: Optional[int] = None):
        self.name = f"{comp.path}.{name}"
        #: component this bundle was declared on (lint protocol rules walk
        #: the per-component stream registry this constructor fills in)
        self.comp = comp
        self.valid: Signal = comp.signal(f"{name}_valid", 1)
        self.ready: Signal = comp.signal(f"{name}_ready", 1)
        self.payload: Signal = comp.signal(f"{name}_payload", width)
        comp.streams.append(self)

    def fires(self) -> bool:
        """True when a transfer happens at the coming clock edge."""
        return bool(self.valid.value and self.ready.value)

    def drive(self, valid: Any, payload: Any = None) -> None:
        """Producer-side helper: drive valid (and payload when given)."""
        self.valid.set(1 if valid else 0)
        if payload is not None:
            self.payload.set(payload)

    def connect_from(self, comp: Component, other: "Stream") -> None:
        """Wire this stream to mirror ``other`` (payload+valid forward, ready back).

        Registers a combinational process on ``comp``; use for pure
        point-to-point connections between sibling components.
        """

        def _link() -> None:
            self.valid.set(other.valid.value)
            self.payload.set(other.payload.value)
            other.ready.set(self.ready.value)

        comp.comb(_link)


class PipeStage(Component):
    """A one-deep registered buffer between two streams.

    Accepts a payload when empty (or when simultaneously emptying), presents
    it downstream until accepted.  Chaining :class:`PipeStage` components
    yields an elastic pipeline with purely local stall control — the
    structure of the RTM's main pipeline.

    An optional ``transform`` callable maps the stored payload to the output
    payload, modelling the combinational logic of the stage.
    """

    def __init__(
        self,
        name: str,
        parent: Optional[Component] = None,
        width: Optional[int] = None,
        transform: Optional[Callable[[Any], Any]] = None,
    ):
        super().__init__(name, parent)
        self.inp = Stream(self, "in", width)
        self.out = Stream(self, "out", width)
        self._full = self.reg("full", 1, 0)
        self._data = self.reg("data", width, 0)
        self._transform = transform

        @self.comb
        def _drive() -> None:
            full = self._full.value
            self.out.valid.set(full)
            if full:
                payload = self._data.value
                if self._transform is not None:
                    payload = self._transform(payload)
                self.out.payload.set(payload)
            # Ready when empty, or when the held word leaves this cycle.
            self.inp.ready.set((not full) or (full and self.out.ready.value))

        @self.seq(pure=True)
        def _tick() -> None:
            leaving = self.out.fires()
            arriving = self.inp.fires()
            if arriving:
                self._data.nxt = self.inp.payload.value
                self._full.nxt = 1
            elif leaving:
                self._full.nxt = 0

    @property
    def occupied(self) -> bool:
        return bool(self._full.value)


class RoundRobinArbiter(Component):
    """Round-robin grant over N request lines with an optional priority line.

    Models the paper's write arbiter grant core: the high-priority request
    (from the RTM execution stage) always wins; otherwise the grant rotates
    fairly among functional-unit result ports, preventing starvation of any
    unit (thesis Fig. 1.4 "Write Arbiter", "High Priority Write").
    """

    def __init__(self, name: str, n: int, parent: Optional[Component] = None):
        super().__init__(name, parent)
        if n < 1:
            raise ValueError("arbiter needs at least one requester")
        self.n = n
        self.requests = [self.signal(f"req{i}", 1) for i in range(n)]
        self.priority_request = self.signal("priority_req", 1)
        self.grant = self.signal("grant", max(1, n.bit_length() + 1))
        self.grant_valid = self.signal("grant_valid", 1)
        self.priority_grant = self.signal("priority_grant", 1)
        self._last = self.reg("last", max(1, n.bit_length()), reset=n - 1)

        @self.comb
        def _arbitrate() -> None:
            if self.priority_request.value:
                self.priority_grant.set(1)
                self.grant_valid.set(0)
                return
            self.priority_grant.set(0)
            start = (self._last.value + 1) % self.n
            for off in range(self.n):
                idx = (start + off) % self.n
                if self.requests[idx].value:
                    self.grant.set(idx)
                    self.grant_valid.set(1)
                    return
            self.grant_valid.set(0)

        @self.seq(pure=True)
        def _advance() -> None:
            if self.grant_valid.value:
                self._last.nxt = self.grant.value


def priority_grant(requests: Sequence[int]) -> int:
    """Fixed-priority grant helper: index of first asserted request, or -1."""
    for i, r in enumerate(requests):
        if r:
            return i
    return -1

"""Value Change Dump (VCD) export for simulated designs.

Writes standard IEEE 1364 VCD files so traces of the simulated framework can
be inspected in any waveform viewer (GTKWave etc.) — the debugging workflow
a VHDL engineer would use on the real system.  Only fixed-width signals are
dumped; payload (object) signals are skipped because VCD has no sensible
representation for them.
"""

from __future__ import annotations

import io
from typing import Iterable, Optional, TextIO

from .sim import Simulator
from .signal import Signal

_ID_ALPHABET = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Compact VCD identifier for a signal index."""
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_ALPHABET))
        chars.append(_ID_ALPHABET[rem])
    return "".join(chars)


class VcdWriter:
    """Streams value changes of selected signals into a VCD file.

    By default the writer attaches as a *plain* per-cycle observer, which
    (by design) vetoes time-wheel fast-forward: every cycle is executed and
    sampled, so the dump is exact for every signal including hidden
    wheel-aged counters.  Passing ``compress_idle=True`` attaches with a
    compressed-idle callback instead, keeping fast-forward alive: skipped
    runs emit nothing (a jump certifies the traced state held still), so
    the dump stays bit-identical to a per-cycle run for any signal the
    wheel does not silently age — i.e. architectural state, ports and
    streams.  Hidden pacing counters (a UART bit phase, a link's idle
    countdown) are batch-aged during jumps and would show stair-steps
    instead of ramps; select signals explicitly when compressing.
    """

    def __init__(
        self,
        sim: Simulator,
        stream: TextIO,
        signals: Optional[Iterable[Signal]] = None,
        timescale: str = "1 ns",
        clock_period_ns: int = 20,
        compress_idle: bool = False,
    ):
        picked = list(signals) if signals is not None else list(sim.top.all_signals())
        self.signals = [s for s in picked if s.width is not None]
        self.sim = sim
        self.stream = stream
        self.clock_period_ns = clock_period_ns
        # keyed by signal identity: hierarchical names need not be unique
        # across hand-built test hierarchies, and identity keys skip string
        # hashing in the per-cycle sampling loop
        self._ids = {id(s): _identifier(i) for i, s in enumerate(self.signals)}
        self._last: dict[int, int] = {}
        self._write_header(timescale)
        self._dump_initial()
        if compress_idle:
            sim.add_observer(self._sample, on_skip=self._on_skip)
        else:
            sim.add_observer(self._sample)

    def _write_header(self, timescale: str) -> None:
        w = self.stream.write
        w("$date reproduction run $end\n")
        w("$version repro.hdl VCD writer $end\n")
        w(f"$timescale {timescale} $end\n")
        w("$scope module top $end\n")
        for sig in self.signals:
            ident = self._ids[id(sig)]
            name = sig.name.replace(" ", "_")
            w(f"$var wire {sig.width} {ident} {name} $end\n")
        w("$upscope $end\n$enddefinitions $end\n")

    def _emit(self, sig: Signal) -> None:
        ident = self._ids[id(sig)]
        if sig.width == 1:
            self.stream.write(f"{sig.value & 1}{ident}\n")
        else:
            self.stream.write(f"b{sig.value:b} {ident}\n")
        self._last[id(sig)] = sig.value

    def _dump_initial(self) -> None:
        self.stream.write("#0\n$dumpvars\n")
        for sig in self.signals:
            self._emit(sig)
        self.stream.write("$end\n")

    def _sample(self, cycle: int) -> None:
        last = self._last
        changed = [s for s in self.signals if s.value != last.get(id(s))]
        if not changed:
            return
        self.stream.write(f"#{cycle * self.clock_period_ns}\n")
        for sig in changed:
            self._emit(sig)

    def _on_skip(self, cycle: int, skipped: int) -> None:
        """Compressed idle run: nothing to emit.

        The jump's precondition is that no traced (non-warped) signal can
        change across the skipped edges, and VCD encodes changes only, so
        a silent idle run is exactly what a per-cycle sampler would write.
        """

    def detach(self) -> None:
        """Stop sampling; restores the simulator's no-observer fast path."""
        self.sim.remove_observer(self._sample)


def trace_to_string(sim: Simulator, signals: Iterable[Signal], cycles: int) -> str:
    """Run ``cycles`` steps while capturing a VCD trace; return the VCD text."""
    buf = io.StringIO()
    VcdWriter(sim, buf, signals)
    sim.step(cycles)
    return buf.getvalue()

"""Cycle-by-cycle signal tracing.

:class:`Tracer` samples a chosen set of signals after every simulated cycle
and keeps the history in memory; it backs both the unit-test probes and the
VCD exporter.  Tracing is opt-in per signal so large designs (e.g. a ξ-sort
core with thousands of cells) pay nothing for untraced state.
"""

from __future__ import annotations

from typing import Any, Sequence

from .sim import Simulator
from .signal import Signal


class Tracer:
    """Records the value of selected signals once per clock cycle.

    A plain tracer forces per-cycle stepping (its observer vetoes
    time-wheel fast-forward), which keeps the history dense and exact.
    With ``compress_idle=True`` the tracer instead rides through wheel
    jumps: skipped idle runs produce no per-cycle rows — they are recorded
    as ``(end_cycle, skipped)`` entries in :attr:`skips` — so ``cycles``
    may be sparse.  Traced values are exact across a recorded skip for any
    signal the wheel does not silently age (architectural state, ports);
    hidden batch-aged counters only show their value at sampled cycles.
    """

    def __init__(self, sim: Simulator, signals: Sequence[Signal],
                 compress_idle: bool = False):
        self.sim = sim
        self.signals = list(signals)
        self.cycles: list[int] = []
        self.history: dict[str, list[Any]] = {s.name: [] for s in self.signals}
        #: compressed idle runs as ``(end_cycle, skipped)`` pairs
        self.skips: list[tuple[int, int]] = []
        if compress_idle:
            sim.add_observer(self._sample, on_skip=self._on_skip)
        else:
            sim.add_observer(self._sample)

    def _sample(self, cycle: int) -> None:
        self.cycles.append(cycle)
        for sig in self.signals:
            self.history[sig.name].append(sig.value)

    def _on_skip(self, cycle: int, skipped: int) -> None:
        self.skips.append((cycle, skipped))

    def detach(self) -> None:
        """Stop sampling; restores the simulator's no-observer fast path."""
        self.sim.remove_observer(self._sample)

    def series(self, signal: Signal) -> list[Any]:
        """Full recorded history of one signal."""
        return self.history[signal.name]

    def at(self, cycle: int) -> dict[str, Any]:
        """All traced values at a given cycle number."""
        idx = self.cycles.index(cycle)
        return {name: vals[idx] for name, vals in self.history.items()}

    def count_transitions(self, signal: Signal) -> int:
        """Number of value changes in the recorded history (activity metric)."""
        series = self.history[signal.name]
        return sum(1 for a, b in zip(series, series[1:]) if a != b)

    def first_cycle_where(self, signal: Signal, value: Any) -> int:
        """Earliest recorded cycle at which the signal held ``value`` (-1 if never)."""
        series = self.history[signal.name]
        for i, v in enumerate(series):
            if v == value:
                return self.cycles[i]
        return -1

"""The two-phase synchronous simulator with an event-driven settle scheduler.

Each simulated clock cycle proceeds in two phases:

1. **Settle** — combinational processes run until no signal changes (a
   fixpoint).  This implements zero-delay combinational logic and lets
   backward-propagating ``ready`` and forward-propagating ``valid``
   handshakes resolve within a cycle, which is how the paper's RTM pipeline
   achieves local stalling without a global stall net (paper §III).
2. **Edge** — every sequential process runs exactly once against the settled
   values and stages register updates, which are then committed atomically.

The phases correspond to the delta-cycle / clock-edge split of an HDL
simulator, restricted to a single clock domain (the paper's framework is
single-clock; functional units may internally use other domains, which we
model behaviourally inside the unit when needed).

Settle scheduling
-----------------

Two schedulers implement the settle phase:

* ``scheduler="event"`` (the default) — dependency-tracked, event-driven
  evaluation.  The first settle after elaboration (and after
  :meth:`Simulator.reset`) is a *discovery* pass: every combinational
  process runs to fixpoint exactly like the exhaustive kernel, but with a
  read-tracking hook installed on :class:`~repro.hdl.signal.Signal` so the
  kernel learns which signals each process reads.  From then on each
  process is re-run only when a signal in its recorded read set changes:
  signal writes (``Signal.set``/``force``, ``Reg.commit``) notify the
  scheduler, which enqueues the fanout of each changed signal.  A cycle in
  which nothing changed costs (almost) nothing.

  Read sets stay *sound* under data-dependent control flow because
  tracking remains active on every scheduled run: a process that suddenly
  reads a new signal (a mux leg it had never taken) grows its read set and
  fanout on the spot, before the new dependency can ever change
  unobserved.  A process whose read set keeps growing past
  ``DYNAMIC_GROWTH_LIMIT`` is reclassified as *dynamic* and falls back to
  exhaustive semantics (re-run on every settle iteration), as do processes
  that read no signals at all during discovery (their inputs, if any, are
  invisible to the kernel) and processes registered with
  ``Component.comb(fn, always=True)``.

* ``scheduler="exhaustive"`` — the original reference kernel: every
  combinational process runs on every settle iteration until a full pass
  changes nothing.  Retained as the equivalence oracle for property tests
  and as the baseline for the kernel microbenchmark
  (``benchmarks/bench_kernel_settle.py``).

Both schedulers produce bit-identical signal traces and cycle counts; the
property suite (``tests/properties/test_prop_kernel_equiv.py``) pins this.
:attr:`Simulator.kernel_stats` exposes activation/iteration/queue counters
for benchmarks and CI perf logs (see :mod:`repro.analysis.counters`).

Edge scheduling and the time wheel
----------------------------------

The edge phase gets the same treatment as the settle phase (event mode
only; the exhaustive kernel keeps the reference run-everything loop):

* **Armed/dormant split** — a sequential process declared *pure*
  (``Component.seq(fn, pure=True)``) has its read set tracked exactly like
  a combinational process.  After an edge on which it staged nothing it is
  *disarmed* and not re-run; any change to a signal it reads (settle-phase
  ``set``/``force`` or a register commit) re-arms it before the next edge.
  Impure processes (hidden Python state, cycle counters) stay armed
  forever — the reference semantics.

* **Cycle-skipping time wheel** — components whose only pending activity
  is a countdown register a ``(horizon, skip)`` hook pair via
  :meth:`Component.wheel`.  When a multi-cycle :meth:`Simulator.step` finds
  a quiescent settle, every armed sequential process belonging to a
  wheeled component, and no per-cycle observer in the way, it jumps
  ``now`` forward by ``min(horizons, cycles_remaining)`` and batch-ages
  every hook in O(#hooks) instead of ticking edge by edge.  The jump lands
  *on* the earliest horizon; the next edge is stepped normally and does
  the real work, so cycle counts and traces are exactly those of the
  unskipped run.  Any horizon of ``0`` (real work next edge), any armed
  process without a wheel hook, or any plain observer vetoes the jump.
  :meth:`Simulator.fast_forward_limit` exposes the same scan to host-side
  pump loops so they can bound their stepping chunks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from . import signal as _signal_mod
from .component import Component
from .errors import CombinationalLoopError, SimulationError
from .signal import CHANGES, Reg, Signal

#: Iteration bound for the settle fixpoint.  A well-formed design settles in
#: at most (longest combinational chain) passes; the framework's longest
#: chains (ready propagation through the 6-stage pipeline, tree folds) are
#: far below this bound, so hitting it indicates a genuine loop.
MAX_SETTLE_ITERATIONS = 256

#: Number of read-set growth events after which a process is reclassified as
#: dynamic (exhaustive fallback).  Growth is a normal, bounded occurrence for
#: multiplexer-style processes (each untaken leg adds its signals once); a
#: process that keeps discovering new dependencies is reading data-dependent
#: state the scheduler cannot enumerate, and pinning it to every iteration
#: is both sound and cheaper than churning its fanout.
DYNAMIC_GROWTH_LIMIT = 8


class _Proc:
    """Scheduler bookkeeping for one combinational process."""

    __slots__ = ("fn", "reads", "writes", "queued", "always", "inert",
                 "growths", "rank", "wheeled")

    def __init__(self, fn: Callable[[], None], always: bool = False):
        self.fn = fn
        #: union of every signal this process has ever read (sensitivity set)
        self.reads: set = set()
        #: signals written during discovery (classification, rank graph)
        self.writes: set = set()
        #: True while sitting in the scheduler's run queue
        self.queued = False
        #: True for exhaustive-fallback processes (run every iteration)
        self.always = always
        #: True for no-op placeholders (no reads, no writes) — never scheduled
        self.inert = False
        #: read-set growth events observed after discovery
        self.growths = 0
        #: topological depth in the writer→reader dependency graph; the
        #: scheduler evaluates shallower ranks first so a value propagates
        #: through a combinational chain in a single sweep
        self.rank = 0
        #: owning component has time-wheel hooks covering its hidden state
        self.wheeled = False


class _SeqProc:
    """Scheduler bookkeeping for one sequential (clock-edge) process."""

    __slots__ = ("fn", "reads", "armed", "pure", "wheeled", "unmanaged")

    def __init__(self, fn: Callable[[], None], pure: bool, wheeled: bool):
        self.fn = fn
        #: union of every signal this process has ever read while armed
        self.reads: set = set()
        #: run on the next edge (dormant processes are skipped entirely)
        self.armed = True
        #: declared side-effect-free (``seq(fn, pure=True)``): eligible for
        #: the armed/dormant split — impure processes never disarm
        self.pure = pure
        #: owning component registered wheel hooks, so this process staying
        #: armed does not block the fast-forward path
        self.wheeled = wheeled
        #: reads signals outside this simulator's management; their changes
        #: never reach our queue, so the process can never safely sleep
        self.unmanaged = False


@dataclass
class KernelStats:
    """Settle-scheduler performance counters (see ``analysis.counters``)."""

    #: total :meth:`Simulator.settle` calls
    settle_calls: int = 0
    #: settle calls that found no pending work at all (quiescent fast path)
    quiescent_settles: int = 0
    #: delta iterations executed across all event-mode settles
    settle_iterations: int = 0
    #: combinational process executions scheduled by the event kernel
    activations: int = 0
    #: executions of exhaustive-fallback ("always") processes
    always_runs: int = 0
    #: full passes executed in discovery (and post-reset rediscovery) mode
    discovery_passes: int = 0
    #: full passes executed by the exhaustive reference scheduler
    exhaustive_passes: int = 0
    #: deepest run queue observed at the start of an iteration
    peak_queue_depth: int = 0
    #: processes reclassified as dynamic after exceeding the growth limit
    dynamic_fallbacks: int = 0
    #: static (event-scheduled) vs always-run process counts, set at discovery
    tracked_procs: int = 0
    always_procs: int = 0
    #: clock edges actually executed (skipped cycles excluded)
    edge_calls: int = 0
    #: sequential process executions across all executed edges
    seq_runs: int = 0
    #: cycles covered by time-wheel jumps instead of executed edges
    skipped_cycles: int = 0
    #: number of time-wheel jumps taken
    wheel_jumps: int = 0
    #: processes the codegen backend translated or value-guarded (compiled
    #: backend only; 0 under the interpreted kernels)
    compiled_procs: int = 0
    #: processes the compiler front end could not prove a closure for —
    #: they run unguarded on every compiled settle sweep
    fallback_procs: int = 0
    #: SIMD cells absorbed into vectorized executors (compiled backend)
    vectorized_cells: int = 0
    #: one-time codegen + exec cost, in milliseconds (compiled backend)
    compile_ms: float = 0.0
    #: width masks the code generator proved redundant and dropped
    #: (range-informed codegen; compiled backend only)
    masks_elided: int = 0
    #: branches the code generator folded on a proven-constant guard
    branches_folded: int = 0

    def as_dict(self) -> dict:
        return {
            "settle_calls": self.settle_calls,
            "quiescent_settles": self.quiescent_settles,
            "settle_iterations": self.settle_iterations,
            "activations": self.activations,
            "always_runs": self.always_runs,
            "discovery_passes": self.discovery_passes,
            "exhaustive_passes": self.exhaustive_passes,
            "peak_queue_depth": self.peak_queue_depth,
            "dynamic_fallbacks": self.dynamic_fallbacks,
            "tracked_procs": self.tracked_procs,
            "always_procs": self.always_procs,
            "edge_calls": self.edge_calls,
            "seq_runs": self.seq_runs,
            "skipped_cycles": self.skipped_cycles,
            "wheel_jumps": self.wheel_jumps,
            "compiled_procs": self.compiled_procs,
            "fallback_procs": self.fallback_procs,
            "vectorized_cells": self.vectorized_cells,
            "compile_ms": self.compile_ms,
            "masks_elided": self.masks_elided,
            "branches_folded": self.branches_folded,
        }


class Simulator:
    """Runs a component hierarchy cycle by cycle.

    Parameters
    ----------
    top:
        Root of the component hierarchy.
    max_settle:
        Settle fixpoint iteration bound (loop detector threshold).
    scheduler:
        ``"event"`` (default) for the dependency-tracked scheduler or
        ``"exhaustive"`` for the reference kernel.  Both are cycle-exact
        and produce identical traces.
    wheel:
        Enable the cycle-skipping time wheel (event mode only; the
        exhaustive kernel always steps every cycle).  ``wheel=False``
        forces edge-by-edge stepping while keeping the armed/dormant
        split — used by the equivalence property suite.
    backend:
        ``None`` keeps the ``scheduler`` choice.  ``"event"`` and
        ``"exhaustive"`` are aliases for the corresponding scheduler.
        ``"compiled"`` selects the codegen backend
        (:mod:`repro.hdl.compile`): the elaborated graph is flattened
        into specialized straight-line Python, with automatic per-process
        fallback to interpreted execution where the compiler front end
        cannot prove a closure.  All backends are cycle-exact and produce
        identical traces.

    A design must be driven by at most one live simulator: elaboration
    claims every signal's change-notification hook for this instance.
    """

    def __new__(
        cls,
        top: Optional[Component] = None,
        max_settle: int = MAX_SETTLE_ITERATIONS,
        scheduler: str = "event",
        wheel: bool = True,
        backend: Optional[str] = None,
    ) -> "Simulator":
        if cls is Simulator and backend == "compiled":
            from .compile.engine import CompiledSimulator

            return super().__new__(CompiledSimulator)
        return super().__new__(cls)

    def __init__(
        self,
        top: Component,
        max_settle: int = MAX_SETTLE_ITERATIONS,
        scheduler: str = "event",
        wheel: bool = True,
        backend: Optional[str] = None,
    ):
        if backend is not None:
            if backend in ("event", "exhaustive"):
                scheduler = backend
            elif backend == "compiled":
                # Only reachable when a subclass bypassed the __new__
                # dispatch; CompiledSimulator never forwards this value.
                raise SimulationError(
                    "backend='compiled' is only available on Simulator itself"
                )
            else:
                raise SimulationError(f"unknown backend {backend!r}")
        if scheduler not in ("event", "exhaustive"):
            raise SimulationError(f"unknown scheduler {scheduler!r}")
        #: which engine executes this design ("event", "exhaustive" or
        #: "compiled"); mirrors ``scheduler`` for the interpreted kernels
        self.backend = scheduler
        self.top = top
        self.max_settle = max_settle
        self.scheduler = scheduler
        self.wheel = bool(wheel) and scheduler == "event"
        self.now = 0
        self._comb: list[Callable[[], None]] = []
        self._seq: list[Callable[[], None]] = []
        self._regs: list[Reg] = []
        self._resets: list[Callable[[], None]] = []
        self._observers: list[Callable[[int], None]] = []
        #: per-observer compressed-idle callbacks (None = plain per-cycle
        #: observer, which vetoes time-wheel jumps)
        self._obs_onskip: list[Optional[Callable[[int, int], None]]] = []
        self._plain_observers = 0
        #: scheduler state (event mode)
        self._procs: list[_Proc] = []
        self._always: list[_Proc] = []
        self._seqprocs: list[_SeqProc] = []
        #: (horizon, skip) hook pairs collected from the hierarchy
        self._wheel_hooks: list[tuple] = []
        #: every always/dynamic comb process belongs to a wheeled component
        self._always_covered = True
        #: rank-indexed run queue: _buckets[r] holds queued procs of rank r
        self._buckets: list[list[_Proc]] = [[]]
        self._npend = 0
        self._changed: list[Signal] = []
        self._staged_regs: list[Reg] = []
        self._needs_discovery = True
        self.kernel_stats = KernelStats()
        self._elaborate()

    # -- elaboration -------------------------------------------------------------

    def _elaborate(self) -> None:
        event = self.scheduler == "event"
        for comp in self.top.walk():
            always_fns = set(map(id, comp.always_procs))
            wheeled = bool(comp.wheel_hooks)
            for fn in comp.comb_procs:
                self._comb.append(fn)
                p = _Proc(fn, always=id(fn) in always_fns)
                p.wheeled = wheeled
                self._procs.append(p)
            pure_fns = set(map(id, comp.pure_seq_procs))
            for fn in comp.seq_procs:
                self._seq.append(fn)
                self._seqprocs.append(
                    _SeqProc(fn, pure=id(fn) in pure_fns, wheeled=wheeled)
                )
            self._wheel_hooks.extend(comp.wheel_hooks)
            self._resets.extend(comp.reset_hooks)
            for sig in comp.signals:
                if isinstance(sig, Reg):
                    self._regs.append(sig)
                    sig._stage_list = self._staged_regs
                # Claim (or, for the exhaustive scheduler, release) the
                # change-notification hook, and clear any fanout a previous
                # simulator of this design may have left.
                sig._pending = self._changed if event else None
                sig._fanout = []
                sig._seq_fanout = []
        if not self._comb and not self._seq:
            raise SimulationError(f"design {self.top.path!r} has no processes")

    def add_observer(
        self,
        fn: Callable[[int], None],
        *,
        on_skip: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        """Register a callback invoked with the cycle number after each cycle.

        Used by tracers (see :mod:`repro.hdl.trace`) and test probes.
        ``step`` skips observer dispatch entirely while no observer is
        registered, so untraced runs pay nothing here.

        A plain observer needs to see every cycle, so its presence forces
        the time wheel off — which is what makes traced runs bit-identical
        by construction.  An observer that can digest a compressed idle run
        may instead pass ``on_skip``, called as ``on_skip(now, skipped)``
        after a jump lands (``now`` is the post-jump cycle, ``skipped`` the
        number of cycles covered); such observers keep fast-forward alive.
        """
        self._observers.append(fn)
        self._obs_onskip.append(on_skip)
        if on_skip is None:
            self._plain_observers += 1

    def remove_observer(self, fn: Callable[[int], None]) -> None:
        """Detach a previously registered observer (restores the fast path)."""
        idx = self._observers.index(fn)
        self._observers.pop(idx)
        if self._obs_onskip.pop(idx) is None:
            self._plain_observers -= 1

    # -- settle phase ----------------------------------------------------------

    def settle(self) -> int:
        """Run combinational processes to fixpoint; returns iterations used.

        Event mode returns 0 from the quiescent fast path (nothing changed
        since the last settle, so the fixpoint is already in place).
        """
        self.kernel_stats.settle_calls += 1
        if self.scheduler == "exhaustive":
            return self._settle_exhaustive()
        if self._needs_discovery:
            return self._settle_discovery()
        return self._settle_event()

    def _settle_exhaustive(self) -> int:
        """Reference kernel: every process, every pass, until a clean pass."""
        comb = self._comb
        tracker = CHANGES
        stats = self.kernel_stats
        for iteration in range(1, self.max_settle + 1):
            tracker.dirty = False
            stats.exhaustive_passes += 1
            for proc in comb:
                proc()
            if not tracker.dirty:
                return iteration
        unstable = self._find_unstable()
        raise CombinationalLoopError(self.now, self.max_settle, unstable)

    def _settle_discovery(self) -> int:
        """Instrumented full-pass settle: builds/refreshes read sets.

        Used for the first settle after elaboration and after
        :meth:`reset` — any point where signal values may have changed
        without change notifications.  Runs exactly like the exhaustive
        kernel (same pass structure, same iteration count) but with read
        tracking installed, then registers per-signal fanout and classifies
        processes for event scheduling.
        """
        procs = self._procs
        tracker = CHANGES
        stats = self.kernel_stats
        for bucket in self._buckets:
            bucket.clear()
        self._npend = 0
        for p in procs:
            p.queued = False
        try:
            for iteration in range(1, self.max_settle + 1):
                tracker.dirty = False
                stats.discovery_passes += 1
                for p in procs:
                    if p.always:
                        p.fn()
                    else:
                        _signal_mod._READS = p.reads
                        _signal_mod._WRITES = p.writes
                        try:
                            p.fn()
                        finally:
                            _signal_mod._READS = None
                            _signal_mod._WRITES = None
                if not tracker.dirty:
                    self._finish_discovery()
                    return iteration
        finally:
            self._changed.clear()
        unstable = self._find_unstable()
        raise CombinationalLoopError(self.now, self.max_settle, unstable)

    def _finish_discovery(self) -> None:
        """Classify processes and build the per-signal fanout map."""
        changed_list = self._changed
        for p in self._procs:
            if p.always:
                continue
            if not p.reads:
                if p.writes:
                    # Real outputs but no visible inputs: the process reads
                    # hidden Python state and must run exhaustively.
                    p.always = True
                else:
                    # Touched nothing across every discovery pass — a no-op
                    # placeholder (passive RAM/ROM components register these
                    # to stay valid stand-alone designs).  Never schedule it.
                    p.inert = True
            elif any(s._pending is not changed_list for s in p.reads):
                # Reads signals this simulator does not manage (another
                # design's nets, free-standing test signals): their changes
                # would never reach our queue, so run exhaustively.
                p.always = True
            else:
                self._register_fanout(p)
        self._always = [p for p in self._procs if p.always]
        tracked = [p for p in self._procs if not p.always and not p.inert]
        self._rank_procs(tracked)
        stats = self.kernel_stats
        stats.always_procs = len(self._always)
        stats.tracked_procs = len(tracked)
        # Fast-forward is only sound when every always-run process's hidden
        # inputs are covered by its component's wheel hooks (the hooks veto
        # the jump whenever that hidden state is about to change).
        self._always_covered = all(p.wheeled for p in self._always)
        # Discovery runs whenever values may have moved without change
        # notifications (reset, recovery) — dormant edge processes cannot
        # trust their read sets across that, so re-arm everything.
        for sp in self._seqprocs:
            sp.armed = True
        self._needs_discovery = False

    def _rank_procs(self, tracked: list[_Proc]) -> None:
        """Assign topological depths over the writer→reader proc graph.

        Evaluating queued procs in rank order lets a change propagate down a
        combinational chain in one sweep (each proc runs after its upstream
        writers), instead of one delta iteration per chain link.  Cycles in
        the graph (mutual ready/valid feedback) saturate at the rank cap and
        simply take extra sweeps, exactly like the unranked scheduler.
        Ranks are a performance hint only — correctness comes from running
        to fixpoint — so they are not recomputed when a read set grows.
        """
        writers: dict = {}
        for p in tracked:
            for s in p.writes:
                writers.setdefault(s, []).append(p)
        n = len(tracked)
        for p in tracked:
            p.rank = 0
        for _ in range(n):
            moved = False
            for p in tracked:
                r = 0
                for s in p.reads:
                    for w in writers.get(s, ()):
                        if w is not p and w.rank >= r:
                            r = w.rank + 1
                if r > n:
                    r = n
                if r != p.rank:
                    p.rank = r
                    moved = True
            if not moved:
                break
        depth = max((p.rank for p in tracked), default=0)
        self._buckets = [[] for _ in range(depth + 1)]
        self._npend = 0

    def _register_fanout(self, p: _Proc) -> None:
        for sig in p.reads:
            fanout = sig._fanout
            if p not in fanout:
                fanout.append(p)

    def _make_dynamic(self, p: _Proc) -> None:
        """Fallback: pin a proven-dynamic process to every settle iteration."""
        p.always = True
        p.queued = True  # permanently; drain skips queued procs
        for sig in p.reads:
            if p in sig._fanout:
                sig._fanout.remove(p)
        self._always.append(p)
        if not p.wheeled:
            self._always_covered = False
        stats = self.kernel_stats
        stats.dynamic_fallbacks += 1
        stats.always_procs += 1
        stats.tracked_procs -= 1

    def _grew(self, p: _Proc) -> None:
        """A scheduled run read signals outside the recorded set."""
        p.growths += 1
        if p.growths > DYNAMIC_GROWTH_LIMIT:
            self._make_dynamic(p)
        else:
            self._register_fanout(p)

    def _settle_event(self) -> int:
        """Event-driven settle: re-run only the fanout of changed signals.

        Queued processes are evaluated in topological rank order (writers
        before readers), so one sweep normally reaches the fixpoint; only
        feedback (a later-rank process waking an earlier rank) or hidden
        state changed by an always-run process forces another sweep.
        """
        stats = self.kernel_stats
        changed = self._changed
        buckets = self._buckets
        npend = self._npend
        if changed:
            for sig in changed:
                for p in sig._fanout:
                    if not p.queued:
                        p.queued = True
                        buckets[p.rank].append(p)
                        npend += 1
                for sp in sig._seq_fanout:
                    sp.armed = True
            changed.clear()
        always = self._always
        if not npend and not always:
            stats.quiescent_settles += 1
            return 0
        tracker = CHANGES
        iterations = 0
        try:
            while npend or (always and (iterations == 0 or tracker.dirty)):
                iterations += 1
                if iterations > self.max_settle:
                    self._npend = npend
                    self._needs_discovery = True  # leave a recoverable scheduler
                    _signal_mod._READS = None  # probe runs must not pollute read sets
                    unstable = self._find_unstable()
                    raise CombinationalLoopError(self.now, self.max_settle, unstable)
                if npend > stats.peak_queue_depth:
                    stats.peak_queue_depth = npend
                tracker.dirty = False
                ran = 0
                for bucket in buckets:
                    # Consume only the procs queued when the sweep reached
                    # this bucket.  A proc that re-queues itself (same-rank
                    # feedback, or a self-loop toggling its own input) lands
                    # beyond `limit` and waits for the next outer iteration —
                    # otherwise a zero-delay oscillation would spin inside
                    # this drain forever without tripping the iteration bound.
                    i = 0
                    limit = len(bucket)
                    while i < limit:
                        p = bucket[i]
                        i += 1
                        npend -= 1
                        if p.always:
                            continue  # reclassified dynamic while queued
                        p.queued = False
                        ran += 1
                        reads = p.reads
                        before = len(reads)
                        _signal_mod._READS = reads
                        p.fn()
                        if len(reads) != before:
                            _signal_mod._READS = None
                            self._grew(p)
                        if changed:
                            for sig in changed:
                                for q in sig._fanout:
                                    if not q.queued:
                                        q.queued = True
                                        buckets[q.rank].append(q)
                                        npend += 1
                                for sp in sig._seq_fanout:
                                    sp.armed = True
                            changed.clear()
                    del bucket[:limit]
                stats.activations += ran
                _signal_mod._READS = None
                if always:
                    for p in always:
                        p.fn()
                    stats.always_runs += len(always)
                    if changed:
                        for sig in changed:
                            for q in sig._fanout:
                                if not q.queued:
                                    q.queued = True
                                    buckets[q.rank].append(q)
                                    npend += 1
                            for sp in sig._seq_fanout:
                                sp.armed = True
                        changed.clear()
        finally:
            _signal_mod._READS = None
            self._npend = npend
        stats.settle_iterations += iterations
        return iterations

    def _find_unstable(self) -> list[str]:
        """Best-effort identification of oscillating signals for diagnostics.

        Snapshots every signal *by identity* (hierarchical names need not be
        unique across odd hierarchies), probes with one extra combinational
        pass, and restores the pre-probe values so the diagnostic itself
        does not corrupt the state a debugger will inspect.
        """
        before = [(s, s._value) for s in self.top.all_signals()]
        pending_before = list(self._changed)
        for proc in self._comb:
            proc()
        unstable = [s.name for s, v in before if s._value != v]
        for s, v in before:
            s._value = v
        # Drop the probe's change notifications; keep whatever was pending.
        self._changed[:] = pending_before
        return unstable

    # -- edge phase ------------------------------------------------------------

    def _edge(self) -> None:
        stats = self.kernel_stats
        stats.edge_calls += 1
        if self.scheduler == "event":
            ran = 0
            tracker = CHANGES
            try:
                for sp in self._seqprocs:
                    if not sp.armed:
                        continue
                    ran += 1
                    if sp.pure:
                        reads = sp.reads
                        nread = len(reads)
                        nstage = tracker.stages
                        _signal_mod._READS = reads
                        sp.fn()
                        _signal_mod._READS = None
                        if len(reads) != nread:
                            self._register_seq_fanout(sp)
                        # A pure process that staged nothing this edge is a
                        # guaranteed no-op until something it reads changes:
                        # put it to sleep.  (Unmanaged readers can never
                        # sleep — their wake-up would be lost.)
                        if tracker.stages == nstage and not sp.unmanaged:
                            sp.armed = False
                    else:
                        sp.fn()
            finally:
                _signal_mod._READS = None
            stats.seq_runs += ran
        else:
            for proc in self._seq:
                proc()
            stats.seq_runs += len(self._seq)
        # Only registers that were actually staged this cycle need a commit;
        # Reg.stage enrols each register in _staged_regs on first staging.
        staged = self._staged_regs
        if staged:
            for reg in staged:
                reg.commit()
            staged.clear()

    def _register_seq_fanout(self, sp: _SeqProc) -> None:
        """(Re)build the re-arm edges for a dormancy-tracked seq process."""
        changed_list = self._changed
        for sig in sp.reads:
            if sig._pending is not changed_list:
                sp.unmanaged = True
                continue
            fan = sig._seq_fanout
            if sp not in fan:
                fan.append(sp)

    # -- time-wheel fast-forward -------------------------------------------------

    def _skip_scan(self, limit: int) -> int:
        """How many edges can be skipped, assuming settled quiescent state.

        Returns 0 when any armed sequential process lacks wheel coverage,
        any always-run combinational process does, or any horizon says the
        next edge performs real work; otherwise the minimum horizon capped
        at ``limit``.
        """
        if not self._always_covered:
            return 0
        for sp in self._seqprocs:
            if sp.armed and not sp.wheeled:
                return 0
        n = limit
        for horizon, _ in self._wheel_hooks:
            h = horizon()
            if h is not None and h < n:
                if h <= 0:
                    return 0
                n = h
        return n

    def _skip_now(self, limit: int) -> int:
        """Scan and, when possible, perform a jump of up to ``limit`` cycles.

        The caller advances ``now`` by the returned count; every wheel hook
        has batch-aged its counters by exactly that many edges.
        """
        n = self._skip_scan(limit)
        if n:
            for _, skip in self._wheel_hooks:
                skip(n)
        return n

    def fast_forward_limit(self, max_cycles: int = 1 << 60) -> int:
        """Upper bound on safely skippable cycles from the current state.

        Settles the design, then runs the wheel's precondition scan without
        performing a jump.  Returns 0 whenever fast-forward is unavailable
        (wheel disabled, plain observers attached, non-event scheduler, or
        real work pending on the next edge).  Host pump loops use this to
        bound the stepping chunks they hand to :meth:`step`, keeping their
        own per-chunk bookkeeping (deadline checks, drain polls) exact.
        """
        if not self.wheel or self._plain_observers:
            return 0
        self.settle()
        if self._needs_discovery:
            return 0
        return self._skip_scan(max_cycles)

    # -- public stepping API ---------------------------------------------------

    def step(self, cycles: int = 1) -> None:
        """Advance the design by ``cycles`` full clock cycles.

        With the time wheel enabled (and no plain observer attached), runs
        of provably idle cycles inside a multi-cycle step are covered by
        O(#hooks) jumps instead of per-cycle edges; the result is
        cycle-exact either way.
        """
        if cycles > 1 and self.wheel and not self._plain_observers:
            self._step_wheel(cycles)
            return
        observers = self._observers
        if observers:
            for _ in range(cycles):
                self.settle()
                self._edge()
                self.now += 1
                for obs in observers:
                    obs(self.now)
        else:
            for _ in range(cycles):
                self.settle()
                self._edge()
                self.now += 1

    def _step_wheel(self, cycles: int) -> None:
        """Multi-cycle stepping with time-wheel jumps on quiescent stretches."""
        observers = self._observers
        stats = self.kernel_stats
        remaining = cycles
        while remaining:
            quiet = self.settle() == 0
            # Jumps are only attempted off a quiescent settle: a busy design
            # fails the scan anyway, and this keeps the scan itself off the
            # saturated-pipeline fast path.  remaining > 1 keeps the final
            # cycle a real edge, exactly like an unwheeled run.
            if quiet and remaining > 1:
                n = self._skip_now(remaining - 1)
                if n:
                    self.now += n
                    remaining -= n
                    stats.skipped_cycles += n
                    stats.wheel_jumps += 1
                    if observers:
                        for cb in self._obs_onskip:
                            cb(self.now, n)
                    continue
            self._edge()
            self.now += 1
            remaining -= 1
            if observers:
                for obs in observers:
                    obs(self.now)

    def run_until(self, predicate: Callable[[], bool], max_cycles: int = 100_000) -> int:
        """Step until ``predicate()`` holds (evaluated on settled state).

        Returns the number of cycles consumed.  Raises ``SimulationError``
        when the bound is exceeded — the standard way tests detect protocol
        deadlocks (e.g. a functional unit that never raises ``idle``).

        The settle after each step brings the combinational state up to
        date for the predicate; with the event scheduler the subsequent
        settle inside :meth:`step` then finds an empty queue and is a
        no-op re-check, so the historical double-settle costs nothing.
        """
        start = self.now
        self.settle()
        while not predicate():
            if self.now - start >= max_cycles:
                raise SimulationError(
                    f"condition not reached within {max_cycles} cycles "
                    f"(started at {start}, now {self.now})"
                )
            self.step()
            self.settle()
        return self.now - start

    def reset(self) -> None:
        """Drive the whole design to its reset state (asynchronous reset).

        Signal values change wholesale here (including register resets that
        bypass change notification), so the event scheduler schedules a
        full rediscovery settle rather than trusting its queue.
        """
        for sig in self.top.all_signals():
            if isinstance(sig, Reg):
                sig.reset_state()
            else:
                sig.force(sig.reset)
        self._staged_regs.clear()  # reset_state dropped every staged value
        for hook in self._resets:
            hook()
        if self.scheduler == "event":
            self._needs_discovery = True
            self._changed.clear()
        self.settle()

    # -- stats -----------------------------------------------------------------

    @property
    def process_counts(self) -> tuple[int, int]:
        """(combinational, sequential) process counts — used by area tests."""
        return len(self._comb), len(self._seq)

    # -- introspection (lint subsystem) ----------------------------------------

    def discovered_dependencies(self) -> dict:
        """Scheduler-discovered per-process dependency sets (read-only).

        Returns ``{"comb": [...], "seq": [...], "discovered": bool}`` where
        each combinational entry carries the process function, its recorded
        read/write signal sets and its classification (``always``/``inert``),
        and each sequential entry its function, read set and ``pure``/
        ``wheeled`` flags.  ``discovered`` is False while no discovery settle
        has run yet (freshly elaborated or reset-pending), in which case the
        sets are empty or stale.

        This is the ground truth the event kernel actually schedules from;
        :mod:`repro.analysis.lint` unions it with its static AST pass so
        diagnostics never contradict the running scheduler.  The returned
        sets are copies — mutating them cannot corrupt the kernel.
        """
        comb = [
            {
                "fn": p.fn,
                "reads": frozenset(p.reads),
                "writes": frozenset(p.writes),
                "always": p.always,
                "inert": p.inert,
                "wheeled": p.wheeled,
            }
            for p in self._procs
        ]
        seq = [
            {
                "fn": sp.fn,
                "reads": frozenset(sp.reads),
                "pure": sp.pure,
                "wheeled": sp.wheeled,
            }
            for sp in self._seqprocs
        ]
        return {"comb": comb, "seq": seq, "discovered": not self._needs_discovery}

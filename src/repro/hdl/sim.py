"""The two-phase synchronous simulator.

Each simulated clock cycle proceeds in two phases:

1. **Settle** — every combinational process runs repeatedly until no signal
   changes (a fixpoint).  This implements zero-delay combinational logic and
   lets backward-propagating ``ready`` and forward-propagating ``valid``
   handshakes resolve within a cycle, which is how the paper's RTM pipeline
   achieves local stalling without a global stall net (paper §III).
2. **Edge** — every sequential process runs exactly once against the settled
   values and stages register updates, which are then committed atomically.

The phases correspond to the delta-cycle / clock-edge split of an HDL
simulator, restricted to a single clock domain (the paper's framework is
single-clock; functional units may internally use other domains, which we
model behaviourally inside the unit when needed).
"""

from __future__ import annotations

from typing import Callable, Optional

from .component import Component
from .errors import CombinationalLoopError, SimulationError
from .signal import CHANGES, Reg

#: Iteration bound for the settle fixpoint.  A well-formed design settles in
#: at most (longest combinational chain) passes; the framework's longest
#: chains (ready propagation through the 6-stage pipeline, tree folds) are
#: far below this bound, so hitting it indicates a genuine loop.
MAX_SETTLE_ITERATIONS = 256


class Simulator:
    """Runs a component hierarchy cycle by cycle."""

    def __init__(self, top: Component, max_settle: int = MAX_SETTLE_ITERATIONS):
        self.top = top
        self.max_settle = max_settle
        self.now = 0
        self._comb: list[Callable[[], None]] = []
        self._seq: list[Callable[[], None]] = []
        self._regs: list[Reg] = []
        self._resets: list[Callable[[], None]] = []
        self._observers: list[Callable[[int], None]] = []
        self._elaborate()

    # -- elaboration -------------------------------------------------------------

    def _elaborate(self) -> None:
        for comp in self.top.walk():
            self._comb.extend(comp.comb_procs)
            self._seq.extend(comp.seq_procs)
            self._resets.extend(comp.reset_hooks)
            for sig in comp.signals:
                if isinstance(sig, Reg):
                    self._regs.append(sig)
        if not self._comb and not self._seq:
            raise SimulationError(f"design {self.top.path!r} has no processes")

    def add_observer(self, fn: Callable[[int], None]) -> None:
        """Register a callback invoked with the cycle number after each cycle.

        Used by tracers (see :mod:`repro.hdl.trace`) and test probes.
        """
        self._observers.append(fn)

    # -- phases ---------------------------------------------------------------

    def settle(self) -> int:
        """Run combinational processes to fixpoint; returns iterations used."""
        comb = self._comb
        tracker = CHANGES
        for iteration in range(1, self.max_settle + 1):
            tracker.dirty = False
            for proc in comb:
                proc()
            if not tracker.dirty:
                return iteration
        unstable = self._find_unstable()
        raise CombinationalLoopError(self.now, self.max_settle, unstable)

    def _find_unstable(self) -> list[str]:
        """Best-effort identification of oscillating signals for diagnostics."""
        before = {s.name: s.value for s in self.top.all_signals()}
        for proc in self._comb:
            proc()
        return [s.name for s in self.top.all_signals() if before[s.name] != s.value]

    def _edge(self) -> None:
        for proc in self._seq:
            proc()
        for reg in self._regs:
            reg.commit()

    # -- public stepping API ---------------------------------------------------

    def step(self, cycles: int = 1) -> None:
        """Advance the design by ``cycles`` full clock cycles."""
        for _ in range(cycles):
            self.settle()
            self._edge()
            self.now += 1
            for obs in self._observers:
                obs(self.now)

    def run_until(self, predicate: Callable[[], bool], max_cycles: int = 100_000) -> int:
        """Step until ``predicate()`` holds (evaluated on settled state).

        Returns the number of cycles consumed.  Raises ``SimulationError``
        when the bound is exceeded — the standard way tests detect protocol
        deadlocks (e.g. a functional unit that never raises ``idle``).
        """
        start = self.now
        self.settle()
        while not predicate():
            if self.now - start >= max_cycles:
                raise SimulationError(
                    f"condition not reached within {max_cycles} cycles "
                    f"(started at {start}, now {self.now})"
                )
            self.step()
            self.settle()
        return self.now - start

    def reset(self) -> None:
        """Drive the whole design to its reset state (asynchronous reset)."""
        for sig in self.top.all_signals():
            if isinstance(sig, Reg):
                sig.reset_state()
            else:
                sig.force(sig.reset)
        for hook in self._resets:
            hook()
        self.settle()

    # -- stats -----------------------------------------------------------------

    @property
    def process_counts(self) -> tuple[int, int]:
        """(combinational, sequential) process counts — used by area tests."""
        return len(self._comb), len(self._seq)

"""Synchronous FIFO buffers.

The performance-optimised functional-unit skeleton (thesis Fig. 2.19) and
the message buffer/serialiser stages are built around on-chip SRAM FIFOs.
:class:`SyncFifo` models a single-clock FIFO with registered occupancy:
``in_ready`` reflects the count latched at the previous edge, so a full FIFO
frees a slot one cycle after a pop — the conservative behaviour of a
synthesised SRAM FIFO without first-word fall-through bypass.
"""

from __future__ import annotations

from typing import Any, Optional

from .component import Component
from .components import Stream


class SyncFifo(Component):
    """Depth-bounded first-in first-out buffer with stream ports."""

    def __init__(
        self,
        name: str,
        depth: int,
        parent: Optional[Component] = None,
        width: Optional[int] = None,
    ):
        super().__init__(name, parent)
        if depth < 1:
            raise ValueError("fifo depth must be >= 1")
        self.depth = depth
        self.inp = Stream(self, "in", width)
        self.out = Stream(self, "out", width)
        # The queue contents are one register holding an immutable tuple;
        # this stands in for the SRAM block + read/write pointers.
        self._items = self.reg("items", None, reset=())

        @self.comb
        def _drive() -> None:
            items = self._items.value
            n = len(items)
            self.out.valid.set(1 if n else 0)
            if n:
                self.out.payload.set(items[0])
            self.inp.ready.set(1 if n < self.depth else 0)

        @self.seq(pure=True)
        def _tick() -> None:
            items = self._items.value
            popped = self.out.fires()
            pushed = self.inp.fires()
            if popped or pushed:
                new = list(items)
                if popped:
                    new.pop(0)
                if pushed:
                    new.append(self.inp.payload.value)
                self._items.nxt = tuple(new)

    # -- inspection helpers (testbench use) ------------------------------------

    @property
    def occupancy(self) -> int:
        return len(self._items.value)

    @property
    def is_empty(self) -> bool:
        return not self._items.value

    @property
    def is_full(self) -> bool:
        return len(self._items.value) >= self.depth

    def snapshot(self) -> tuple[Any, ...]:
        """Current contents, head first (testbench/debug aid)."""
        return tuple(self._items.value)

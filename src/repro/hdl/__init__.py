"""repro.hdl — cycle-accurate synchronous hardware simulation kernel.

This package is the reproduction's substitute for VHDL + an Altera Cyclone
FPGA (see DESIGN.md §2): a two-phase synchronous simulator (combinational
settle to fixpoint, then clock-edge register commit) plus a small library of
generic circuit elements (handshake streams, pipeline stages, FIFOs,
memories, arbiters) from which the coprocessor framework is assembled.
"""

from .component import Component
from .components import PipeStage, RoundRobinArbiter, Stream, priority_grant
from .errors import (
    CombinationalLoopError,
    ElaborationError,
    HdlError,
    MultipleDriverError,
    SimulationError,
    WidthError,
)
from .fifo import SyncFifo
from .memory import Protected, Rom, SyncRam
from .signal import Reg, Signal, mask_for
from .sim import DYNAMIC_GROWTH_LIMIT, MAX_SETTLE_ITERATIONS, KernelStats, Simulator
from .trace import Tracer
from .vcd import VcdWriter, trace_to_string

__all__ = [
    "Component",
    "PipeStage",
    "RoundRobinArbiter",
    "Stream",
    "priority_grant",
    "CombinationalLoopError",
    "ElaborationError",
    "HdlError",
    "MultipleDriverError",
    "SimulationError",
    "WidthError",
    "SyncFifo",
    "Protected",
    "Rom",
    "SyncRam",
    "Reg",
    "Signal",
    "mask_for",
    "DYNAMIC_GROWTH_LIMIT",
    "MAX_SETTLE_ITERATIONS",
    "KernelStats",
    "Simulator",
    "Tracer",
    "VcdWriter",
    "trace_to_string",
]

"""Memory primitives: synchronous RAM and combinational ROM.

The register file and flag register file of the RTM are built on
:class:`SyncRam` (multi-read, single-write, write committed at the clock
edge, reads combinational from the latched array — the behaviour of an
FPGA block RAM used in "read during write: old data" mode, which is what
the scoreboard timing of the dispatcher assumes).  The ξ-sort microcode
store is a :class:`Rom`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .component import Component
from .errors import SimulationError
from .signal import _UNSET, mask_for


class SyncRam(Component):
    """Word-addressed RAM with combinational reads and edge-committed writes.

    Reads performed during the settle phase observe the contents latched at
    the previous edge ("old data" semantics).  Writes staged during the
    edge phase accumulate into the register's next value, so multiple
    sequential processes may each write a *different* address in one cycle
    order-independently; architecturally the framework funnels all writes
    through the write arbiter, which guarantees at most one data-space
    write per cycle (the single physical write port the paper's arbiter
    exists to share).
    """

    def __init__(
        self,
        name: str,
        words: int,
        width: int,
        parent: Optional[Component] = None,
    ):
        super().__init__(name, parent)
        if words < 1:
            raise ValueError("memory must have at least one word")
        self.words = words
        self.width = width
        self._mask = mask_for(width)
        self._mem = self.reg("mem", None, reset=(0,) * words)
        #: optional :class:`Protected` shadow attached by the fault domain
        self._guard: Optional["Protected"] = None
        # A RAM is passive; register a no-op so a bare RAM is a valid design.
        self.comb(lambda: None)

    def read(self, addr: int) -> int:
        """Combinational read of the previously latched contents."""
        if not 0 <= addr < self.words:
            raise SimulationError(f"{self.path}: read address {addr} out of range")
        value = self._mem.value[addr]
        if self._guard is not None:
            return self._guard.on_read(addr, value)
        return value

    def write(self, addr: int, value: int) -> None:
        """Stage a write for the coming clock edge (call from seq processes)."""
        if not 0 <= addr < self.words:
            raise SimulationError(f"{self.path}: write address {addr} out of range")
        value = int(value) & self._mask
        if self._guard is not None:
            value = self._guard.on_write(addr, value) & self._mask
        mem = list(self._mem.nxt)
        mem[addr] = value
        self._mem.nxt = tuple(mem)

    def dump(self) -> tuple[int, ...]:
        """Current latched contents (testbench/debug aid)."""
        return self._mem.value

    def load(self, values: Sequence[int]) -> None:
        """Backdoor initialisation (testbench aid; not a simulated write)."""
        if len(values) > self.words:
            raise SimulationError(f"{self.path}: load of {len(values)} words exceeds size")
        mem = list(self._mem.value)
        for i, v in enumerate(values):
            mem[i] = int(v) & self._mask
        self._mem.force(tuple(mem))
        if self._guard is not None:
            self._guard.on_load()


def _syndrome(xor: int) -> int:
    """Pack the (up to two) flipped bit positions into one 16-bit word."""
    bits = [i for i in range(xor.bit_length()) if xor >> i & 1]
    if not bits:
        return 0
    if len(bits) == 1:
        return bits[0] & 0xFF
    return ((bits[-1] & 0xFF) << 8) | (bits[0] & 0xFF)


class Protected:
    """SECDED-style shadow protection for one :class:`SyncRam`.

    Models an ECC-protected block RAM without simulating check bits: a
    shadow copy holds the *intended* contents, writes pass through
    :meth:`fate` (the injection point), and every read compares stored
    vs. intended.  A single-bit mismatch is corrected in place (the
    read returns clean data, as ECC hardware would); a multi-bit
    mismatch is reported through :meth:`report` and the corrupt word is
    returned — downstream logic must refuse to act on it, which is what
    the machine-check pipeline gating enforces.

    This class is pure mechanism: :meth:`fate`, :meth:`report` and the
    stats hooks are no-ops here and overridden by the fault domain
    (:class:`repro.faults.guards.RamGuard`).  A bare ``Protected(ram)``
    is a valid error-free shadow, which is what ``state_protection=True``
    without a fault spec installs.
    """

    def __init__(self, ram: SyncRam):
        self.ram = ram
        ram._guard = self
        self._shadow = list(ram._mem.value)
        #: addr → injection timestamp (or None when age unknown)
        self._taint: dict[int, Optional[int]] = {}
        self._writes = 0

    # -- overridables (the fault domain supplies these) ----------------------------

    def fate(self, index: int, width: int) -> tuple:
        """Fate of the ``index``-th write: ("ok",) | ("flip", b) | ("double", b1, b2)."""
        return ("ok",)

    def report(self, addr: int, syndrome: int) -> None:
        """An uncorrectable error was read back (override: raise machine check)."""

    def now(self) -> int:
        """Current cycle, for detection-latency accounting."""
        return 0

    def _note_injected(self, double: bool) -> None:
        pass

    def _note_corrected(self, injected_at: Optional[int]) -> None:
        pass

    def _note_uncorrectable(self, injected_at: Optional[int]) -> None:
        pass

    def _note_overwritten(self) -> None:
        pass

    # -- SyncRam hooks -------------------------------------------------------------

    def on_write(self, addr: int, value: int) -> int:
        """Record the intended value, maybe corrupt the stored one."""
        index = self._writes
        self._writes = index + 1
        if addr in self._taint:
            # the upset is overwritten before anything read it
            del self._taint[addr]
            self._note_overwritten()
        self._shadow[addr] = value
        f = self.fate(index, self.ram.width)
        if f[0] == "flip":
            self._taint[addr] = self.now()
            self._note_injected(False)
            return value ^ (1 << f[1])
        if f[0] == "double":
            self._taint[addr] = self.now()
            self._note_injected(True)
            return value ^ (1 << f[1]) ^ (1 << f[2])
        return value

    def on_read(self, addr: int, value: int) -> int:
        """Check a read against the shadow; correct or report."""
        true = self._shadow[addr]
        if value == true:
            return value
        return self._resolve(addr, value, true)

    def on_load(self) -> None:
        """Backdoor load: resynchronise the shadow, clearing any taint."""
        self._shadow = list(self.ram._mem.value)
        self._taint.clear()

    # -- detection / repair ----------------------------------------------------------

    def _resolve(self, addr: int, value: int, true: int) -> int:
        xor = value ^ true
        injected_at = self._taint.pop(addr, None)
        if bin(xor).count("1") == 1:
            self._repair(addr, true)
            self._note_corrected(injected_at)
            return true
        self._note_uncorrectable(injected_at)
        self.report(addr, _syndrome(xor))
        return value

    def _repair(self, addr: int, true: int) -> None:
        mem = list(self.ram._mem.value)
        mem[addr] = true
        self.ram._mem.force(tuple(mem))

    # -- scrubbing ---------------------------------------------------------------------

    def slots(self) -> range:
        """Addresses the background scrubber walks."""
        return range(self.ram.words)

    def scrub(self, addr: int) -> None:
        """Scrub one word: detect and repair/report without a functional read.

        Called from the scrubber's edge process; skipped while the
        backing register has a staged write (the write wins anyway).
        """
        reg = self.ram._mem
        if reg._staged is not _UNSET:
            return
        value = reg.value[addr]
        if value != self._shadow[addr]:
            self._resolve(addr, value, self._shadow[addr])

    def scrub_all(self) -> None:
        """Restore every corrupted word from the shadow (soft-clear path)."""
        mem = list(self.ram._mem.value)
        changed = False
        for addr, true in enumerate(self._shadow):
            if mem[addr] != true:
                mem[addr] = true
                changed = True
        if changed:
            self.ram._mem.force(tuple(mem))
        self._taint.clear()

    def clear(self) -> None:
        """Hard reset: adopt the current (post-reset) contents as intended.

        The write counter survives deliberately — after a rollback the
        replayed operations must draw *fresh* fates, or the same upset
        would re-inject and recovery could never converge.
        """
        self._shadow = list(self.ram._mem.value)
        self._taint.clear()

    @property
    def tainted(self) -> bool:
        """An injected upset is still latent (uncorrected, not overwritten)."""
        return bool(self._taint)


class Rom(Component):
    """Combinationally read, pre-initialised read-only store.

    Holds arbitrary payload objects (e.g. decoded microinstructions), the
    way a synthesised ROM holds control words: contents are fixed at
    elaboration time.
    """

    def __init__(self, name: str, contents: Sequence, parent: Optional[Component] = None):
        super().__init__(name, parent)
        self._contents = tuple(contents)
        if not self._contents:
            raise ValueError("ROM must have at least one word")
        # Register a no-op process so a bare ROM is still a valid design.
        self.comb(lambda: None)

    def __len__(self) -> int:
        return len(self._contents)

    def read(self, addr: int):
        if not 0 <= addr < len(self._contents):
            raise SimulationError(f"{self.path}: ROM address {addr} out of range")
        return self._contents[addr]

"""Memory primitives: synchronous RAM and combinational ROM.

The register file and flag register file of the RTM are built on
:class:`SyncRam` (multi-read, single-write, write committed at the clock
edge, reads combinational from the latched array — the behaviour of an
FPGA block RAM used in "read during write: old data" mode, which is what
the scoreboard timing of the dispatcher assumes).  The ξ-sort microcode
store is a :class:`Rom`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .component import Component
from .errors import SimulationError
from .signal import mask_for


class SyncRam(Component):
    """Word-addressed RAM with combinational reads and edge-committed writes.

    Reads performed during the settle phase observe the contents latched at
    the previous edge ("old data" semantics).  Writes staged during the
    edge phase accumulate into the register's next value, so multiple
    sequential processes may each write a *different* address in one cycle
    order-independently; architecturally the framework funnels all writes
    through the write arbiter, which guarantees at most one data-space
    write per cycle (the single physical write port the paper's arbiter
    exists to share).
    """

    def __init__(
        self,
        name: str,
        words: int,
        width: int,
        parent: Optional[Component] = None,
    ):
        super().__init__(name, parent)
        if words < 1:
            raise ValueError("memory must have at least one word")
        self.words = words
        self.width = width
        self._mask = mask_for(width)
        self._mem = self.reg("mem", None, reset=(0,) * words)
        # A RAM is passive; register a no-op so a bare RAM is a valid design.
        self.comb(lambda: None)

    def read(self, addr: int) -> int:
        """Combinational read of the previously latched contents."""
        if not 0 <= addr < self.words:
            raise SimulationError(f"{self.path}: read address {addr} out of range")
        return self._mem.value[addr]

    def write(self, addr: int, value: int) -> None:
        """Stage a write for the coming clock edge (call from seq processes)."""
        if not 0 <= addr < self.words:
            raise SimulationError(f"{self.path}: write address {addr} out of range")
        mem = list(self._mem.nxt)
        mem[addr] = int(value) & self._mask
        self._mem.nxt = tuple(mem)

    def dump(self) -> tuple[int, ...]:
        """Current latched contents (testbench/debug aid)."""
        return self._mem.value

    def load(self, values: Sequence[int]) -> None:
        """Backdoor initialisation (testbench aid; not a simulated write)."""
        if len(values) > self.words:
            raise SimulationError(f"{self.path}: load of {len(values)} words exceeds size")
        mem = list(self._mem.value)
        for i, v in enumerate(values):
            mem[i] = int(v) & self._mask
        self._mem.force(tuple(mem))


class Rom(Component):
    """Combinationally read, pre-initialised read-only store.

    Holds arbitrary payload objects (e.g. decoded microinstructions), the
    way a synthesised ROM holds control words: contents are fixed at
    elaboration time.
    """

    def __init__(self, name: str, contents: Sequence, parent: Optional[Component] = None):
        super().__init__(name, parent)
        self._contents = tuple(contents)
        if not self._contents:
            raise ValueError("ROM must have at least one word")
        # Register a no-op process so a bare ROM is still a valid design.
        self.comb(lambda: None)

    def __len__(self) -> int:
        return len(self._contents)

    def read(self, addr: int):
        if not 0 <= addr < len(self._contents):
            raise SimulationError(f"{self.path}: ROM address {addr} out of range")
        return self._contents[addr]

"""Component base class — the unit of hierarchy in the simulated design.

A component owns signals and registers and declares *processes*:

* **combinational** processes (:meth:`Component.comb`) run repeatedly during
  the settle phase until every signal is stable, mirroring zero-delay
  combinational logic in VHDL;
* **sequential** processes (:meth:`Component.seq`) run once per clock edge,
  reading settled signal values and staging register updates.

Components nest via :meth:`child`, giving the hierarchical naming the VCD
tracer and error messages use.  This mirrors the paper's "highly modular"
VHDL organisation (thesis §1.3): each framework block (decoder, dispatcher,
write arbiter, functional units, …) is one component.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from .errors import ElaborationError
from .signal import Reg, Signal

Process = Callable[[], None]


class Component:
    """A hierarchical block of logic with its own signals and processes."""

    def __init__(self, name: str, parent: Optional["Component"] = None):
        self.name = name
        self.parent = parent
        self.children: list[Component] = []
        self.signals: list[Signal] = []
        self.comb_procs: list[Process] = []
        #: comb processes the scheduler must run on every settle iteration
        #: because they read state it cannot see (see :meth:`comb`)
        self.always_procs: list[Process] = []
        self.seq_procs: list[Process] = []
        self.reset_hooks: list[Process] = []
        if parent is not None:
            parent.children.append(self)

    # -- naming ---------------------------------------------------------------

    @property
    def path(self) -> str:
        """Full hierarchical path, e.g. ``soc.rtm.dispatcher``."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}.{self.name}"

    # -- construction helpers ---------------------------------------------------

    def signal(self, name: str, width: Optional[int] = 1, reset: Any = 0) -> Signal:
        """Declare a combinational net owned by this component."""
        sig = Signal(f"{self.path}.{name}", width, reset)
        sig.owner = self
        self.signals.append(sig)
        return sig

    def reg(self, name: str, width: Optional[int] = 1, reset: Any = 0) -> Reg:
        """Declare a clocked register owned by this component."""
        r = Reg(f"{self.path}.{name}", width, reset)
        r.owner = self
        self.signals.append(r)
        return r

    def child(self, component: "Component") -> "Component":
        """Adopt an already-constructed component as a child."""
        if component.parent is None:
            component.parent = self
            self.children.append(component)
        elif component.parent is not self:
            raise ElaborationError(
                f"component {component.name!r} already has parent {component.parent.name!r}"
            )
        return component

    # -- process registration ----------------------------------------------------

    def comb(self, fn: Process = None, *, always: bool = False) -> Process:
        """Register (or decorate) a combinational process.

        The event-driven scheduler discovers which signals a process reads
        and re-runs it only when one of them changes.  A process whose
        outputs depend on state *not* read through ``Signal.value`` (plain
        Python attributes mutated by sequential processes, NumPy arrays, …)
        is invisible to that discovery and must be registered with
        ``always=True``, which pins it to every settle iteration — the
        exhaustive semantics of the original kernel, applied to just that
        process.  See docs/ARCHITECTURE.md ("the discovery-pass contract").
        """
        if fn is None:
            def _register(f: Process) -> Process:
                return self.comb(f, always=always)
            return _register
        self.comb_procs.append(fn)
        if always:
            self.always_procs.append(fn)
        return fn

    def seq(self, fn: Process) -> Process:
        """Register (or decorate) a sequential (clock-edge) process."""
        self.seq_procs.append(fn)
        return fn

    def on_reset(self, fn: Process) -> Process:
        """Register a hook invoked by :meth:`Simulator.reset`."""
        self.reset_hooks.append(fn)
        return fn

    # -- traversal -----------------------------------------------------------------

    def walk(self) -> Iterator["Component"]:
        """Yield this component and every descendant, depth-first."""
        yield self
        for c in self.children:
            yield from c.walk()

    def all_signals(self) -> Iterator[Signal]:
        for comp in self.walk():
            yield from comp.signals

    def find(self, path: str) -> "Component":
        """Locate a descendant by dotted relative path (test/debug helper)."""
        node: Component = self
        for part in path.split("."):
            for c in node.children:
                if c.name == part:
                    node = c
                    break
            else:
                raise KeyError(f"no child {part!r} under {node.path!r}")
        return node

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Component {self.path}>"

"""Component base class — the unit of hierarchy in the simulated design.

A component owns signals and registers and declares *processes*:

* **combinational** processes (:meth:`Component.comb`) run repeatedly during
  the settle phase until every signal is stable, mirroring zero-delay
  combinational logic in VHDL;
* **sequential** processes (:meth:`Component.seq`) run once per clock edge,
  reading settled signal values and staging register updates.

Components nest via :meth:`child`, giving the hierarchical naming the VCD
tracer and error messages use.  This mirrors the paper's "highly modular"
VHDL organisation (thesis §1.3): each framework block (decoder, dispatcher,
write arbiter, functional units, …) is one component.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from .errors import ElaborationError
from .signal import Reg, Signal

Process = Callable[[], None]


class Component:
    """A hierarchical block of logic with its own signals and processes."""

    def __init__(self, name: str, parent: Optional["Component"] = None):
        self.name = name
        self.parent = parent
        self.children: list[Component] = []
        self.signals: list[Signal] = []
        #: valid/ready/payload bundles declared on this component (filled in
        #: by :class:`~repro.hdl.components.Stream`; the lint protocol rules
        #: audit handshake discipline over this registry)
        self.streams: list = []
        #: design-rule suppressions declared via :meth:`lint_suppress`
        self.lint_suppressions: list[tuple] = []
        self.comb_procs: list[Process] = []
        #: comb processes the scheduler must run on every settle iteration
        #: because they read state it cannot see (see :meth:`comb`)
        self.always_procs: list[Process] = []
        self.seq_procs: list[Process] = []
        #: seq processes declared *pure* (``seq(fn, pure=True)``): eligible
        #: for the scheduler's armed/dormant edge-phase split
        self.pure_seq_procs: list[Process] = []
        self.reset_hooks: list[Process] = []
        #: time-wheel (horizon, skip) hook pairs (see :meth:`wheel`)
        self.wheel_hooks: list[tuple] = []
        if parent is not None:
            parent.children.append(self)

    # -- naming ---------------------------------------------------------------

    @property
    def path(self) -> str:
        """Full hierarchical path, e.g. ``soc.rtm.dispatcher``."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}.{self.name}"

    # -- construction helpers ---------------------------------------------------

    def signal(self, name: str, width: Optional[int] = 1, reset: Any = 0) -> Signal:
        """Declare a combinational net owned by this component."""
        sig = Signal(f"{self.path}.{name}", width, reset)
        sig.owner = self
        self.signals.append(sig)
        return sig

    def reg(self, name: str, width: Optional[int] = 1, reset: Any = 0) -> Reg:
        """Declare a clocked register owned by this component."""
        r = Reg(f"{self.path}.{name}", width, reset)
        r.owner = self
        self.signals.append(r)
        return r

    def child(self, component: "Component") -> "Component":
        """Adopt an already-constructed component as a child."""
        if component.parent is None:
            component.parent = self
            self.children.append(component)
        elif component.parent is not self:
            raise ElaborationError(
                f"component {component.name!r} already has parent {component.parent.name!r}"
            )
        return component

    # -- process registration ----------------------------------------------------

    def comb(self, fn: Process = None, *, always: bool = False) -> Process:
        """Register (or decorate) a combinational process.

        The event-driven scheduler discovers which signals a process reads
        and re-runs it only when one of them changes.  A process whose
        outputs depend on state *not* read through ``Signal.value`` (plain
        Python attributes mutated by sequential processes, NumPy arrays, …)
        is invisible to that discovery and must be registered with
        ``always=True``, which pins it to every settle iteration — the
        exhaustive semantics of the original kernel, applied to just that
        process.  See docs/ARCHITECTURE.md ("the discovery-pass contract").
        """
        if fn is None:
            def _register(f: Process) -> Process:
                return self.comb(f, always=always)
            return _register
        self.comb_procs.append(fn)
        if always:
            self.always_procs.append(fn)
        return fn

    def seq(self, fn: Process = None, *, pure: bool = False) -> Process:
        """Register (or decorate) a sequential (clock-edge) process.

        ``pure=True`` declares that the process interacts with simulation
        state **only** by reading signals and staging registers — no hidden
        Python attributes are read or mutated across runs.  The event
        scheduler may then put it to sleep after an edge on which it staged
        nothing: its read set is tracked exactly like a combinational
        process's, and any change to a signal it reads re-arms it before
        the next edge.  A process with side effects (cycle counters,
        ``port.take()``-style consumption, monitors) must stay at the
        default ``pure=False``, which runs it on every edge — the reference
        semantics.
        """
        if fn is None:
            def _register(f: Process) -> Process:
                return self.seq(f, pure=pure)
            return _register
        self.seq_procs.append(fn)
        if pure:
            self.pure_seq_procs.append(fn)
        return fn

    def wheel(self, horizon: Callable[[], Optional[int]],
              skip: Callable[[int], None]) -> None:
        """Register a time-wheel hook pair for cycle-skipping fast-forward.

        ``horizon()`` is consulted on settled, quiescent state and returns
        how many upcoming clock edges are guaranteed to be *pure aging* for
        this component — edges on which its processes would change no
        signal and perform no hidden work beyond counting — or ``None``
        when the component is fully idle (no horizon at all).  Returning
        ``0`` vetoes skipping (the next edge does real work).

        ``skip(n)`` (``1 ≤ n ≤`` the returned horizon) performs the batch
        aging those ``n`` edges would have done: advancing epochs, aging
        countdowns, accumulating stall tallies.  It must never stage a
        register or change an observable signal — the edge *after* the
        skipped run is stepped normally and does the real work.

        A component with a wheel hook keeps the simulator's fast-forward
        path available even while its seq processes stay armed; components
        without one simply block skipping whenever they are armed.
        """
        self.wheel_hooks.append((horizon, skip))

    def on_reset(self, fn: Process) -> Process:
        """Register a hook invoked by :meth:`Simulator.reset`."""
        self.reset_hooks.append(fn)
        return fn

    def lint_suppress(
        self,
        rule_id: str,
        reason: str,
        *,
        signal: Optional[str] = None,
        subtree: bool = False,
    ) -> None:
        """Suppress a design-rule diagnostic on this component.

        ``rule_id`` is the lint rule to silence (see
        :mod:`repro.analysis.lint`), ``reason`` a mandatory human
        explanation recorded in lint reports.  ``signal`` narrows the
        suppression to one signal (its unqualified name as declared, e.g.
        ``"out_valid"``); ``subtree=True`` extends it to every descendant
        component — use for wrappers whose children share one justified
        exemption.  Suppressions are deliberate, reviewable waivers: the
        lint engine counts them in its report rather than hiding them.
        """
        if not reason or not reason.strip():
            raise ElaborationError(
                f"lint_suppress({rule_id!r}) on {self.path!r} needs a non-empty reason"
            )
        self.lint_suppressions.append((rule_id, reason, signal, bool(subtree)))

    # -- traversal -----------------------------------------------------------------

    def walk(self) -> Iterator["Component"]:
        """Yield this component and every descendant, depth-first."""
        yield self
        for c in self.children:
            yield from c.walk()

    def all_signals(self) -> Iterator[Signal]:
        for comp in self.walk():
            yield from comp.signals

    def find(self, path: str) -> "Component":
        """Locate a descendant by dotted relative path (test/debug helper)."""
        node: Component = self
        for part in path.split("."):
            for c in node.children:
                if c.name == part:
                    node = c
                    break
            else:
                raise KeyError(f"no child {part!r} under {node.path!r}")
        return node

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Component {self.path}>"

"""repro — reproduction of Koltes & O'Donnell (IPPS 2010),
"A Framework for FPGA Functional Units in High Performance Computing".

A cycle-accurate Python simulation of the paper's generic FPGA coprocessor
framework: a pipelined Register Transfer Machine with configurable register
files, a lock-manager scoreboard and a write arbiter; a functional-unit
protocol with stateless (arithmetic/logic, thesis Tables 3.1/3.2) and
stateful (χ-sort smart-memory) case studies; the host↔FPGA message
protocol over parameterised channel models; and a host-side software stack.

Quickstart::

    from repro import Session
    from repro.isa import ArithOp

    with Session() as s:
        print(s.compute(ArithOp.ADD, 20, 22))   # -> 42

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproduction index.
"""

from .config import DEFAULT_CONFIG, FrameworkConfig
from .host.session import Session
from .system.builder import SystemBuilder, build_system

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "FrameworkConfig",
    "Session",
    "SystemBuilder",
    "build_system",
    "__version__",
]

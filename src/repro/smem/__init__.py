"""repro.smem — the smart-memory kit.

The paper's ξ-sort unit is one instance of a reusable construction: an
array of identical SIMD cells under a logarithmic fold tree, driven by a
microcoded two-state controller and adapted into the framework's
functional-unit protocol.  This package carries that construction once —
the *kit* — so a new stateful functional unit is written as:

1. a frozen per-cell state + pure step function, vectorised over the
   column (:class:`VectorSmartArray`) and scalar per cell
   (:class:`SmartCell` / :class:`StructuralSmartArray`);
2. a fold of per-cell state onto output ports (:mod:`repro.smem.tree`);
3. a microcode ROM over the kit's horizontal word
   (:class:`MicroInstr`) plus a :class:`MicroController` subclass mapping
   the array's fold-output atoms;
4. a :class:`SmartMemoryUnit` subclass binding the core and its write
   profile into the framework.

The contract an implementer owes each layer is documented in
:mod:`repro.smem.contract` and checked by :func:`verify_array_contract`;
clients in-tree: ξ-sort (:mod:`repro.xisort`), prefix scan/reduce
(:mod:`repro.smem.scan`), histogram (:mod:`repro.smem.histogram`) and
streaming string match (:mod:`repro.smem.match`).
"""

from .adapter import AdapterState, SmartMemoryUnit
from .array import (
    SmartArrayExecutor,
    SmartCell,
    StructuralSmartArray,
    VectorSmartArray,
)
from .contract import verify_array_contract
from .controller import N_TEMPS, MicroController
from .core import ArrayKind, DirectMachine, SmartMemoryCore
from .microcode import (
    HALF_BITS,
    HALF_MASK,
    INVALID_INSTR,
    OP_A,
    OP_B,
    AluOp,
    Atom,
    MicroInstr,
    format_microcode,
    format_microinstr,
    imm,
    pack_halves,
    t_,
    unpack_halves,
)
from .histogram import DirectHistMachine, HistUnit, hist_factory
from .match import DirectMatchMachine, MatchUnit, match_factory
from .scan import DirectScanMachine, ScanUnit, scan_factory
from .session import HistogramAccelerator, MatchAccelerator, ScanAccelerator
from .tree import NodeValue, TreeNetwork, fold_reduce, tree_depth, tree_node_count

__all__ = [
    "DirectHistMachine",
    "HistUnit",
    "hist_factory",
    "DirectMatchMachine",
    "MatchUnit",
    "match_factory",
    "DirectScanMachine",
    "ScanUnit",
    "scan_factory",
    "HistogramAccelerator",
    "MatchAccelerator",
    "ScanAccelerator",
    "AdapterState",
    "SmartMemoryUnit",
    "SmartArrayExecutor",
    "SmartCell",
    "StructuralSmartArray",
    "VectorSmartArray",
    "verify_array_contract",
    "N_TEMPS",
    "MicroController",
    "ArrayKind",
    "DirectMachine",
    "SmartMemoryCore",
    "HALF_BITS",
    "HALF_MASK",
    "INVALID_INSTR",
    "OP_A",
    "OP_B",
    "AluOp",
    "Atom",
    "MicroInstr",
    "format_microcode",
    "format_microinstr",
    "imm",
    "pack_halves",
    "t_",
    "unpack_halves",
    "NodeValue",
    "TreeNetwork",
    "fold_reduce",
    "tree_depth",
    "tree_node_count",
]

"""Prefix scan / reduce — the kit's second smart-memory machine.

An append-only column of values supporting constant-cycle reductions
(sum/min/max/count) through the fold tree and an in-place parallel prefix
sum — the canonical "active data structure" after sorting: a software scan
walks all n elements, here every reduction is one microprogram of fixed
length and the prefix transform is a single broadcast command.

Cell state: ``(value, occupied, selected)``.  ``SC_PUSH`` appends at the
first free index (the occupancy count — itself a fold); ``SC_SCAN``
replaces every occupied value with the inclusive prefix sum *and* emits
the grand total from the pre-edge fold in the same microprogram.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import IntEnum
from typing import Callable, Optional, Sequence

import numpy as np

from ..hdl import Component
from .adapter import SmartMemoryUnit
from .array import SmartCell, StructuralSmartArray, VectorSmartArray, lane_dtype
from .controller import MicroController
from .core import ArrayKind, DirectMachine, SmartMemoryCore
from .microcode import OP_A, MicroInstr
from .tree import TreeNetwork

__all__ = [
    "ScanCmd", "ScanCellState", "ScanVectors", "ScanCell",
    "VectorScanArray", "StructuralScanArray", "ScanController",
    "ScanCore", "DirectScanMachine", "ScanUnit", "scan_factory",
    "SCAN_MICROCODE", "scan_write_profile",
    "SC_RESET", "SC_PUSH", "SC_SCAN", "SC_TOTAL", "SC_MIN", "SC_MAX",
    "SC_COUNT", "SC_READ_AT", "SC_ADD", "SC_FLAG_VALID",
]


class ScanCmd(IntEnum):
    """Command lines of the scan cell."""

    NOP = 0
    CLEAR = 1         # all cells to the empty state
    APPEND = 2        # first free cell ← broadcast; selections cleared
    PREFIX_SUM = 3    # value_i := Σ_{j≤i} value_j  (occupied cells)
    ADD_ALL = 4       # value += broadcast (occupied cells)
    SELECT_INDEX = 5  # sel := occupied & (index == broadcast)


@dataclass(frozen=True)
class ScanCellState:
    """The persistent state of one scan cell."""

    value: int = 0
    occupied: bool = False
    selected: bool = False


class ScanVectors:
    """The parallel state arrays of an n-cell scan column."""

    __slots__ = ("n", "dtype", "value", "occ", "sel", "pos")

    def __init__(self, n: int, word_bits: int = 64):
        self.n = n
        self.dtype = lane_dtype(word_bits)
        self.pos = np.arange(n, dtype=np.uint32)
        self.clear()

    def clear(self) -> None:
        n = self.n
        self.value = np.zeros(n, dtype=self.dtype)
        self.occ = np.zeros(n, dtype=bool)
        self.sel = np.zeros(n, dtype=bool)

    def state_of(self, i: int) -> ScanCellState:
        return ScanCellState(
            value=int(self.value[i]),
            occupied=bool(self.occ[i]),
            selected=bool(self.sel[i]),
        )

    def states(self) -> list[ScanCellState]:
        return [self.state_of(i) for i in range(self.n)]


def apply_scan_command(vec: ScanVectors, cmd: ScanCmd, broadcast: int,
                       mask: int) -> None:
    """One broadcast command applied to all cells (vectorised cell step)."""
    if cmd == ScanCmd.NOP:
        return
    b = broadcast & mask
    if cmd == ScanCmd.CLEAR:
        vec.clear()
    elif cmd == ScanCmd.APPEND:
        k = int(np.count_nonzero(vec.occ))
        if k < vec.n:
            vec.value[k] = b
            vec.occ[k] = True
        vec.sel = np.zeros(vec.n, dtype=bool)
    elif cmd == ScanCmd.PREFIX_SUM:
        # Unoccupied cells hold 0, so the raw cumulative sum is exact for
        # the occupied prefix; uint64 wraps mod 2^64 and (S mod 2^64) mod
        # 2^w == S mod 2^w for w ≤ 64, so the word mask stays exact too.
        # The masked result fits the (possibly narrower) value lane again.
        prefix = (
            np.cumsum(vec.value, dtype=np.uint64) & np.uint64(mask)
        ).astype(vec.dtype, copy=False)
        vec.value = np.where(vec.occ, prefix, vec.value)
    elif cmd == ScanCmd.ADD_ALL:
        vec.value = np.where(vec.occ, (vec.value + b) & mask, vec.value)
    elif cmd == ScanCmd.SELECT_INDEX:
        vec.sel = vec.occ & (vec.pos == np.uint32(b))
    else:  # pragma: no cover - enum exhaustive
        raise ValueError(f"unknown scan command {cmd!r}")


class ScanCell(SmartCell):
    """Structural scan cell: the per-cell view of :func:`apply_scan_command`.

    ``APPEND``'s target index and ``PREFIX_SUM``'s partial sum both need
    column-global information; a structural cell reads it by folding over
    its neighbours' *committed* registers (``self.array.cells``), exactly
    what a hardware cell would receive from the tree network.
    """

    def _reset_state(self) -> ScanCellState:
        return ScanCellState()

    def _next_state(self) -> ScanCellState:
        st = self._state.value
        cmd = ScanCmd(self.cmd.value)
        if cmd == ScanCmd.NOP:
            return st
        mask = (1 << self.word_bits) - 1
        b = self.broadcast.value & mask
        if cmd == ScanCmd.CLEAR:
            return ScanCellState() if st != ScanCellState() else st
        if cmd == ScanCmd.APPEND:
            k = sum(1 for c in self.array.cells if c._state.value.occupied)
            if self.index == k:
                return ScanCellState(value=b, occupied=True, selected=False)
            if st.selected:
                return replace(st, selected=False)
            return st
        if cmd == ScanCmd.PREFIX_SUM:
            if not st.occupied:
                return st
            total = 0
            for c in self.array.cells[: self.index + 1]:
                total += c._state.value.value
            return replace(st, value=total & mask)
        if cmd == ScanCmd.ADD_ALL:
            if not st.occupied:
                return st
            return replace(st, value=(st.value + b) & mask)
        if cmd == ScanCmd.SELECT_INDEX:
            sel = st.occupied and self.index == b
            return replace(st, selected=sel) if sel != st.selected else st
        raise ValueError(f"unknown scan command {cmd!r}")


class _ScanArrayMixin:
    """The scan-specific kit hooks, shared by both array shapes."""

    NOP_CMD = int(ScanCmd.NOP)

    def _declare_ports(self) -> None:
        self.tree = TreeNetwork(self.n_cells)
        self._mask = (1 << self.word_bits) - 1
        # command side (driven by the controller)
        self.cmd = self.signal("cmd", 8, ScanCmd.NOP)
        self.broadcast = self.signal("broadcast", self.word_bits, 0)
        # fold-tree outputs
        self.count = self.signal("count", 32, 0)
        self.total = self.signal("total", self.word_bits, 0)
        self.vmin = self.signal("vmin", self.word_bits, 0)
        self.vmax = self.signal("vmax", self.word_bits, 0)
        self.nonempty = self.signal("nonempty", 1, 0)
        self.sel_found = self.signal("sel_found", 1, 0)
        self.sel_value = self.signal("sel_value", self.word_bits, 0)

    def _make_vectors(self, n_cells: int) -> ScanVectors:
        return ScanVectors(n_cells, self.word_bits)

    def _fold_vector(self, vec: ScanVectors) -> None:
        occ = vec.occ
        count = int(np.count_nonzero(occ))
        self.count.set(count)
        self.nonempty.set(1 if count else 0)
        if count:
            occupied = vec.value[occ]
            self.total.set(int(np.sum(occupied, dtype=np.uint64)) & self._mask)
            self.vmin.set(int(occupied.min()))
            self.vmax.set(int(occupied.max()))
        else:
            self.total.set(0)
            self.vmin.set(0)
            self.vmax.set(0)
        left = self.tree.leftmost(vec.sel)
        self.sel_found.set(1 if left is not None else 0)
        self.sel_value.set(int(vec.value[left]) if left is not None else 0)

    def _apply_raw(self, vec: ScanVectors) -> None:
        apply_scan_command(
            vec, ScanCmd(self.cmd._value), self.broadcast._value, self._mask
        )

    def _seed_vectors(self, vec: ScanVectors, cells: list) -> None:
        for i, cell in enumerate(cells):
            st = cell._state.value
            vec.value[i] = st.value
            vec.occ[i] = st.occupied
            vec.sel[i] = st.selected


class VectorScanArray(_ScanArrayMixin, VectorSmartArray):
    """All n scan cells as NumPy arrays; one seq process per command."""

    def _apply_ports(self, vec: ScanVectors) -> None:
        apply_scan_command(
            vec, ScanCmd(self.cmd.value), self.broadcast.value, self._mask
        )


class StructuralScanArray(_ScanArrayMixin, StructuralSmartArray):
    """One :class:`ScanCell` per element — the equivalence oracle."""

    CELL_CLASS = ScanCell
    CELL_WIRES = ("cmd", "broadcast")

    def _fold_cells(self, cells: list[ScanCell]) -> None:
        states = [c.state for c in cells]
        occupied = [s.value for s in states if s.occupied]
        count = len(occupied)
        self.count.set(count)
        self.nonempty.set(1 if count else 0)
        mask = (1 << self.word_bits) - 1
        self.total.set(sum(occupied) & mask if occupied else 0)
        self.vmin.set(min(occupied) if occupied else 0)
        self.vmax.set(max(occupied) if occupied else 0)
        left = next((i for i, s in enumerate(states) if s.selected), None)
        self.sel_found.set(1 if left is not None else 0)
        self.sel_value.set(states[left].value if left is not None else 0)


# ---------------------------------------------------------------------------
# Microcode
# ---------------------------------------------------------------------------

#: variety codes of the scan unit
SC_RESET = 0x01    # clear the column
SC_PUSH = 0x02     # op_a = value to append
SC_SCAN = 0x03     # in-place inclusive prefix sum → dst1 = grand total
SC_TOTAL = 0x04    # → dst1 = Σ values, flags.valid = nonempty
SC_MIN = 0x05      # → dst1 = min, flags.valid = nonempty
SC_MAX = 0x06      # → dst1 = max, flags.valid = nonempty
SC_COUNT = 0x07    # → dst1 = number of occupied cells
SC_READ_AT = 0x08  # op_a = index → dst1 = value, flags.valid = in range
SC_ADD = 0x09      # op_a = addend broadcast onto every occupied cell

#: flag bit the unit raises when the queried quantity is meaningful
SC_FLAG_VALID = 0x01

COUNT = ("count",)
TOTAL = ("total",)
VMIN = ("vmin",)
VMAX = ("vmax",)
NONEMPTY = ("nonempty",)
SEL_FOUND = ("sel_found",)
SEL_VALUE = ("sel_value",)

#: The scan microcode ROM: variety code → program.
SCAN_MICROCODE: dict[int, tuple[MicroInstr, ...]] = {
    SC_RESET: (MicroInstr(cell_cmd=ScanCmd.CLEAR, done=True),),
    SC_PUSH: (MicroInstr(cell_cmd=ScanCmd.APPEND, broadcast=OP_A, done=True),),
    # The emit reads the pre-edge fold, so data1 is the total of the values
    # *being* scanned — i.e. the last element of the resulting prefix.
    SC_SCAN: (
        MicroInstr(cell_cmd=ScanCmd.PREFIX_SUM, emit=(("data1", TOTAL),), done=True),
    ),
    SC_TOTAL: (
        MicroInstr(emit=(("data1", TOTAL), ("flags", NONEMPTY)), done=True),
    ),
    SC_MIN: (MicroInstr(emit=(("data1", VMIN), ("flags", NONEMPTY)), done=True),),
    SC_MAX: (MicroInstr(emit=(("data1", VMAX), ("flags", NONEMPTY)), done=True),),
    SC_COUNT: (MicroInstr(emit=(("data1", COUNT),), done=True),),
    SC_READ_AT: (
        MicroInstr(cell_cmd=ScanCmd.SELECT_INDEX, broadcast=OP_A),
        MicroInstr(emit=(("data1", SEL_VALUE), ("flags", SEL_FOUND)), done=True),
    ),
    SC_ADD: (MicroInstr(cell_cmd=ScanCmd.ADD_ALL, broadcast=OP_A, done=True),),
}


def scan_write_profile(variety: int) -> tuple[bool, bool, bool]:
    """Which destinations each scan instruction writes (decoder table)."""
    if variety in (SC_TOTAL, SC_MIN, SC_MAX, SC_READ_AT):
        return True, False, True
    if variety in (SC_SCAN, SC_COUNT):
        return True, False, False
    return False, False, False


class ScanController(MicroController):
    """The kit FSM bound to the scan ROM and the scan fold atoms."""

    def __init__(self, name: str, array, word_bits: int = 32,
                 parent: Optional[Component] = None):
        super().__init__(name, array, SCAN_MICROCODE, word_bits, parent)

    def _read_port_atom(self, atom) -> int:
        kind = atom[0]
        if kind == "count":
            return self.array.count.value
        if kind == "total":
            return self.array.total.value
        if kind == "vmin":
            return self.array.vmin.value
        if kind == "vmax":
            return self.array.vmax.value
        if kind == "nonempty":
            return self.array.nonempty.value
        if kind == "sel_found":
            return self.array.sel_found.value
        if kind == "sel_value":
            return self.array.sel_value.value
        # no super() here: the astpass inliner cannot resolve super() calls,
        # and this method is process-reachable via _read_atom.
        raise ValueError(f"unknown atom {atom!r}")


class ScanCore(SmartMemoryCore):
    """Scan controller + scan cell array."""

    vector_array_class = VectorScanArray
    structural_array_class = StructuralScanArray
    controller_class = ScanController


class DirectScanMachine(DirectMachine):
    """Drives a bare scan core cycle-accurately, without the RTM."""

    core_class = ScanCore
    core_name = "scancore"

    def reset_column(self) -> int:
        return self.op(SC_RESET)["cycles"]

    def push(self, value: int) -> int:
        return self.op(SC_PUSH, value)["cycles"]

    def load(self, values: Sequence[int]) -> int:
        return sum(self.op(SC_PUSH, v)["cycles"] for v in values)

    def prefix_sum(self) -> int:
        """In-place inclusive prefix sum; returns the grand total."""
        return self.op(SC_SCAN)["data1"]

    def total(self) -> Optional[int]:
        out = self.op(SC_TOTAL)
        return out["data1"] if out["flags"] & SC_FLAG_VALID else None

    def minimum(self) -> Optional[int]:
        out = self.op(SC_MIN)
        return out["data1"] if out["flags"] & SC_FLAG_VALID else None

    def maximum(self) -> Optional[int]:
        out = self.op(SC_MAX)
        return out["data1"] if out["flags"] & SC_FLAG_VALID else None

    def count(self) -> int:
        return self.op(SC_COUNT)["data1"]

    def read_at(self, index: int) -> Optional[int]:
        out = self.op(SC_READ_AT, index)
        return out["data1"] if out["flags"] & SC_FLAG_VALID else None

    def add_all(self, addend: int) -> int:
        return self.op(SC_ADD, addend)["cycles"]


class ScanUnit(SmartMemoryUnit):
    """Scan core wrapped in the framework's unit protocol."""

    core_class = ScanCore
    write_profile = staticmethod(scan_write_profile)


def scan_factory(
    n_cells: int = 64, array_kind: ArrayKind = "vector"
) -> Callable[..., ScanUnit]:
    """Unit-registry factory for a scan unit of a given size."""

    def make(name: str, word_bits: int, parent=None) -> ScanUnit:
        return ScanUnit(name, word_bits, parent, n_cells=n_cells, array_kind=array_kind)

    return make

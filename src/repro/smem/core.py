"""Smart-memory cores: controller + microcode ROM + SIMD cell array.

Thesis §3.3.3: "The SIMD processor unit consists of a controller unit, a
ROM storing microcode programs controlling the SIMD cells and an array of
the actual SIMD cells."  :class:`SmartMemoryCore` wires those three
together for any kit machine and exposes the controller's
start/variety/operand interface — the boundary the functional-unit
adapter (thesis Fig. 3.13) attaches to.

A core can also be driven *directly* (without the coprocessor framework)
via :class:`DirectMachine`, which is how the fixed-cycles-per-operation
benchmarks measure each machine in isolation.
"""

from __future__ import annotations

from typing import Literal, Optional

from ..hdl import Component, Simulator

ArrayKind = Literal["vector", "structural"]


class SmartMemoryCore(Component):
    """Controller + cell array, ready to adapt into the framework.

    Subclasses set ``vector_array_class``, ``structural_array_class`` and
    ``controller_class`` (a :class:`~repro.smem.controller.MicroController`
    subclass taking ``(name, array, word_bits, parent)``).
    """

    vector_array_class: Optional[type] = None
    structural_array_class: Optional[type] = None
    controller_class: Optional[type] = None

    def __init__(
        self,
        name: str,
        n_cells: int,
        word_bits: int = 32,
        array_kind: ArrayKind = "vector",
        parent: Optional[Component] = None,
    ):
        super().__init__(name, parent)
        self.n_cells = n_cells
        self.word_bits = word_bits
        if array_kind == "vector":
            self.array = self.vector_array_class("cells", n_cells, word_bits, parent=self)
        elif array_kind == "structural":
            self.array = self.structural_array_class("cells", n_cells, word_bits, parent=self)
        else:
            raise ValueError(f"unknown array kind {array_kind!r}")
        self.controller = self.controller_class("ctrl", self.array, word_bits, parent=self)

    # convenient aliases to the controller interface
    @property
    def start(self):
        return self.controller.start

    @property
    def variety(self):
        return self.controller.variety

    @property
    def op_a(self):
        return self.controller.op_a

    @property
    def op_b(self):
        return self.controller.op_b

    @property
    def running(self):
        return self.controller.running

    @property
    def completed(self):
        return self.controller.completed


class DirectMachine:
    """Drives a bare smart-memory core cycle-accurately, without the RTM.

    Used by unit tests and by the benchmarks that isolate a machine's
    fixed-cycle behaviour from message/pipeline overhead.  Subclasses set
    ``core_class``/``core_name`` and layer their high-level operations on
    :meth:`op`.
    """

    core_class: Optional[type] = None
    core_name: str = "smemcore"

    def __init__(
        self,
        n_cells: int,
        word_bits: int = 32,
        array_kind: ArrayKind = "vector",
        backend: Optional[str] = None,
        scheduler: str = "event",
        wheel: bool = True,
    ):
        self.core = self.core_class(self.core_name, n_cells, word_bits,
                                    array_kind=array_kind)
        self.sim = Simulator(self.core, scheduler=scheduler, wheel=wheel,
                             backend=backend)
        self.sim.reset()

    @property
    def cycles(self) -> int:
        return self.sim.now

    def op(self, variety: int, op_a: int = 0, op_b: int = 0, max_cycles: int = 1000) -> dict:
        """Run one microprogram to completion; returns outputs + cycle cost."""
        core = self.core
        start_cycle = self.sim.now
        core.variety.force(variety)
        core.op_a.force(op_a)
        core.op_b.force(op_b)
        core.start.force(1)
        self.sim.step()  # the start edge
        core.start.force(0)
        # run until the done strobe
        self.sim.settle()
        guard = 0
        while not core.completed.value:
            self.sim.step()
            self.sim.settle()
            guard += 1
            if guard > max_cycles:
                raise RuntimeError(f"microprogram {variety:#x} did not complete")
        self.sim.step()  # commit the done word (outputs latch here)
        ctrl = core.controller
        return {
            "data1": ctrl.out_data1.value,
            "data2": ctrl.out_data2.value,
            "flags": ctrl.out_flags.value,
            "cycles": self.sim.now - start_cycle,
        }

"""The horizontal microinstruction word of the smart-memory kit.

Every smart-memory machine in the kit (ξ-sort, prefix scan, histogram,
string match, …) is driven the same way: a ROM of *horizontal* microcode
words executed one per cycle by a two-state controller
(:class:`repro.smem.controller.MicroController`).  One word may
simultaneously drive a cell command onto the array's broadcast buses,
perform one small ALU operation on the controller's temporaries, and stage
an output — which is what gives every operation a cycle count independent
of the number of cells.

Operand *atoms* are the sources for broadcasts, ALU inputs and staged
outputs.  The kit defines the controller-local kinds; each array
contributes its own fold-output kinds via
:meth:`~repro.smem.controller.MicroController._read_port_atom`:

========================  =====================================================
atom                      meaning
========================  =====================================================
``("op_a",)``             first operand delivered with the dispatch
``("op_b",)``             second operand
``("t", i)``              controller temporary register i (0..3)
``("imm", k)``            constant k
*array-defined*           one fold-tree output of the attached cell array
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

Atom = tuple

#: Width of a half-word field (interval bounds, packed pairs) and its mask.
HALF_BITS = 16
HALF_MASK = (1 << HALF_BITS) - 1


def pack_halves(hi: int, lo: int) -> int:
    """⟨hi, lo⟩ → one word (``hi`` in the upper half)."""
    return ((hi & HALF_MASK) << HALF_BITS) | (lo & HALF_MASK)


def unpack_halves(packed: int) -> tuple[int, int]:
    return (packed >> HALF_BITS) & HALF_MASK, packed & HALF_MASK


class AluOp:
    """Operations of the controller's tiny ALU."""

    MOV = "mov"        # y ignored
    ADD = "add"
    ADDP1 = "addp1"    # x + y + 1 (adder with carry-in forced)
    ADDM1 = "addm1"    # x + y - 1
    AND = "and"        # x & y (bin masking for power-of-two histograms)
    HI16 = "hi16"      # upper half-word of x (y ignored)
    LO16 = "lo16"      # lower half-word of x (y ignored)
    PACK = "pack"      # pack_halves(x, y)


@dataclass(frozen=True)
class MicroInstr:
    """One horizontal microcode word.

    The three load-bus fields exist for arrays with a shift-load port set
    (ξ-sort's ``LOAD``); arrays without load buses simply leave them None
    and their controllers never read them.
    """

    #: cell command to drive this cycle (0 = NOP = leave the array alone)
    cell_cmd: int = 0
    #: broadcast source for the cell command
    broadcast: Optional[Atom] = None
    #: load-bus sources (arrays with a shift-load command)
    load_data: Optional[Atom] = None
    load_lower: Optional[Atom] = None
    load_upper: Optional[Atom] = None
    #: ALU micro-operation: (dst_temp, op, x_atom, y_atom)
    alu: Optional[tuple[int, str, Atom, Atom]] = None
    #: staged outputs: mapping of "data1"|"data2"|"flags" → atom
    emit: tuple[tuple[str, Atom], ...] = ()
    #: last word of the program
    done: bool = False


def t_(i: int) -> Atom:
    return ("t", i)


def imm(k: int) -> Atom:
    return ("imm", k)


OP_A: Atom = ("op_a",)
OP_B: Atom = ("op_b",)

#: The one-word handler every controller appends for unknown variety codes:
#: zeroed outputs, immediately done — a bad variety can never wedge a unit.
INVALID_INSTR = MicroInstr(
    emit=(("data1", ("imm", 0)), ("data2", ("imm", 0)), ("flags", ("imm", 0))),
    done=True,
)


def _format_atom(atom: Optional[Atom]) -> str:
    if atom is None:
        return "-"
    kind = atom[0]
    if kind == "t":
        return f"t{atom[1]}"
    if kind == "imm":
        return f"#{atom[1]:#x}" if atom[1] > 9 else f"#{atom[1]}"
    return kind


def _format_cmd(cmd: int) -> str:
    return getattr(cmd, "name", None) or f"cmd{int(cmd)}"


def format_microinstr(uinstr: MicroInstr) -> str:
    """One microcode word as a readable line (ROM-listing style)."""
    parts = []
    if uinstr.cell_cmd:
        cell = _format_cmd(uinstr.cell_cmd)
        if uinstr.broadcast is not None:
            cell += f" bcast={_format_atom(uinstr.broadcast)}"
        if uinstr.load_data is not None or uinstr.load_lower is not None \
                or uinstr.load_upper is not None:
            cell += (f" data={_format_atom(uinstr.load_data)}"
                     f" lo={_format_atom(uinstr.load_lower)}"
                     f" hi={_format_atom(uinstr.load_upper)}")
        parts.append(cell)
    if uinstr.alu is not None:
        dst, op, x, y = uinstr.alu
        parts.append(f"t{dst} := {op}({_format_atom(x)}, {_format_atom(y)})")
    for field_name, atom in uinstr.emit:
        parts.append(f"{field_name} ← {_format_atom(atom)}")
    if uinstr.done:
        parts.append("DONE")
    return "; ".join(parts) if parts else "nop"


def format_microcode(
    microcode: dict[int, tuple[MicroInstr, ...]],
    varieties: Optional[list[int]] = None,
    names: Optional[dict[int, str]] = None,
) -> str:
    """A microcode ROM (or selected programs) as an annotated listing.

    Debugging/documentation aid — the view a microcode author works from.
    """
    picked = varieties if varieties is not None else sorted(microcode)
    named = names or {}
    lines: list[str] = []
    for variety in picked:
        prog = microcode.get(variety)
        if prog is None:
            continue
        name = named.get(variety, f"variety {variety:#x}")
        lines.append(f"{name} ({variety:#04x}) — {len(prog)} cycles:")
        for pc, uinstr in enumerate(prog):
            lines.append(f"  {pc:>3}: {format_microinstr(uinstr)}")
        lines.append("")
    return "\n".join(lines).rstrip()

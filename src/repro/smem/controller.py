"""The kit's microcode controller — the two-state FSM of thesis Fig. 3.10.

"The controller is implemented as a simple finite state machine having only
two states": *Idle* and *Run*.  A dispatch latches the operands and the
microprogram entry point; in Run the controller executes one horizontal
microinstruction per cycle — driving the cell-array command buses, its tiny
ALU and the output staging registers — and returns to Idle on the
program's ``done`` word, asserting ``completed`` for the adapter.

The FSM, the ROM flattening, the ALU and the controller-local atoms are
machine-independent; a concrete smart-memory unit subclasses
:class:`MicroController` with its microcode dict and (optionally)
overrides:

* :meth:`_read_port_atom` — map array-specific atoms onto the fold-tree
  output ports (the default knows none);
* :meth:`_drive_command` / :meth:`_drive_idle` — drive extra command
  buses beyond ``cmd``/``broadcast`` (e.g. ξ-sort's load buses).

Overrides must stay within the closure rules of
:mod:`repro.analysis.lint.astpass` (tracked Signal reads, resolvable
bound-method calls) so the compiled backend can value-guard the two
controller processes — the kit's cores compile with zero interpreted
fallbacks, and the conformance suite holds implementers to that.
"""

from __future__ import annotations

from typing import Optional

from ..hdl import Component, Rom
from .microcode import (
    HALF_BITS,
    HALF_MASK,
    INVALID_INSTR,
    AluOp,
    Atom,
    MicroInstr,
    pack_halves,
)

#: number of temporary registers in the controller datapath
N_TEMPS = 4


class MicroController(Component):
    """Executes microprograms against a smart-memory cell array."""

    def __init__(
        self,
        name: str,
        array,  # a VectorSmartArray | StructuralSmartArray implementer
        microcode: dict[int, tuple[MicroInstr, ...]],
        word_bits: int = 32,
        parent: Optional[Component] = None,
    ):
        super().__init__(name, parent)
        self.array = array
        self.word_bits = word_bits
        self._mask = (1 << word_bits) - 1

        # flatten the microcode ROM: variety → (base, length)
        image: list[MicroInstr] = []
        self._entry: dict[int, int] = {}
        for variety, program in sorted(microcode.items()):
            self._entry[variety] = len(image)
            image.extend(program)
        # Invalid-variety handler: one cycle, zeroed outputs, done.  Keeps the
        # unit from ever wedging on a bad variety code.
        self._invalid_entry = len(image)
        image.append(INVALID_INSTR)
        self.rom = Rom("urom", image, parent=self)

        # -- control interface (driven by the adapter) ---------------------------
        self.start = self.signal("start", 1, 0)
        self.variety = self.signal("variety", 8, 0)
        self.op_a = self.signal("op_a", word_bits, 0)
        self.op_b = self.signal("op_b", word_bits, 0)
        #: Idle/Run state bit (Fig. 3.10); 0 = Idle
        self.running = self.reg("running", 1, 0)
        #: strobes for one cycle when a program finishes
        self.completed = self.signal("completed", 1, 0)
        # staged results
        self.out_data1 = self.reg("out_data1", word_bits, 0)
        self.out_data2 = self.reg("out_data2", word_bits, 0)
        self.out_flags = self.reg("out_flags", 8, 0)

        # -- internal state ----------------------------------------------------------
        self._pc = self.reg("pc", 16, 0)
        self._op_a = self.reg("lat_op_a", word_bits, 0)
        self._op_b = self.reg("lat_op_b", word_bits, 0)
        self._temps = [self.reg(f"t{i}", word_bits, 0) for i in range(N_TEMPS)]
        self._done_now = self.signal("done_now", 1, 0)

        @self.comb
        def _drive() -> None:
            done = 0
            if self.running.value:
                uinstr: MicroInstr = self.rom.read(self._pc.value)
                self._drive_command(uinstr)
                done = 1 if uinstr.done else 0
            else:
                self._drive_idle()
            self._done_now.set(done)
            self.completed.set(done)

        @self.seq(pure=True)
        def _tick() -> None:
            if self.running.value:
                uinstr: MicroInstr = self.rom.read(self._pc.value)
                if uinstr.alu is not None:
                    dst, op, x_atom, y_atom = uinstr.alu
                    self._temps[dst].nxt = self._alu(op, x_atom, y_atom)
                for field_name, atom in uinstr.emit:
                    value = self._read_atom(atom)
                    if field_name == "data1":
                        self.out_data1.nxt = value
                    elif field_name == "data2":
                        self.out_data2.nxt = value
                    elif field_name == "flags":
                        self.out_flags.nxt = value
                    else:  # pragma: no cover - microcode is static
                        raise ValueError(f"unknown emit field {field_name!r}")
                if uinstr.done:
                    self.running.nxt = 0
                else:
                    self._pc.nxt = self._pc.value + 1
            elif self.start.value:
                variety = self.variety.value
                base = self._entry.get(variety, self._invalid_entry)
                self._pc.nxt = base
                self._op_a.nxt = self.op_a.value
                self._op_b.nxt = self.op_b.value
                self.running.nxt = 1

    # -- analysis metadata --------------------------------------------------------

    def rom_layout(self) -> list[tuple[int, int, tuple[MicroInstr, ...]]]:
        """Per-program ROM spans: ``(variety, base, rows)``.

        The FSM enters a program at its base and walks linearly until the
        first ``done`` word (there are no microcode branches), so this
        layout is the complete reachability model the dataflow verifier
        needs: within a span, rows after the first ``done`` can never
        execute.  The trailing invalid-variety handler is reported under
        variety ``-1``.
        """
        spans: list[tuple[int, int, tuple[MicroInstr, ...]]] = []
        bounds = sorted(self._entry.items(), key=lambda kv: kv[1])
        for i, (variety, base) in enumerate(bounds):
            end = bounds[i + 1][1] if i + 1 < len(bounds) else self._invalid_entry
            rows = tuple(self.rom.read(pc) for pc in range(base, end))
            spans.append((variety, base, rows))
        spans.append((-1, self._invalid_entry, (self.rom.read(self._invalid_entry),)))
        return spans

    # -- array bus driving --------------------------------------------------------

    def _drive_command(self, uinstr: MicroInstr) -> None:
        """Drive the array buses for one Run-state word.

        The default drives ``cmd`` and ``broadcast``; arrays with more
        command buses override (and :meth:`_drive_idle` with it — both
        must set the same port set every evaluation).
        """
        self.array.cmd.set(int(uinstr.cell_cmd))
        broadcast = 0
        if uinstr.broadcast is not None:
            broadcast = self._read_atom(uinstr.broadcast)
        self.array.broadcast.set(broadcast)

    def _drive_idle(self) -> None:
        """Park the array buses while Idle (NOP, zeroed broadcasts)."""
        self.array.cmd.set(int(self.array.NOP_CMD))
        self.array.broadcast.set(0)

    # -- atom / ALU evaluation ---------------------------------------------------------

    def _read_atom(self, atom: Atom) -> int:
        kind = atom[0]
        if kind == "op_a":
            return self._op_a.value
        if kind == "op_b":
            return self._op_b.value
        if kind == "t":
            return self._temps[atom[1]].value
        if kind == "imm":
            return atom[1]
        return self._read_port_atom(atom)

    def _read_port_atom(self, atom: Atom) -> int:
        """Array-defined atoms (fold-tree outputs); the kit knows none."""
        raise ValueError(f"unknown atom {atom!r}")

    def _alu(self, op: str, x_atom: Atom, y_atom: Atom) -> int:
        x = self._read_atom(x_atom)
        y = self._read_atom(y_atom)
        if op == AluOp.MOV:
            result = x
        elif op == AluOp.ADD:
            result = x + y
        elif op == AluOp.ADDP1:
            result = x + y + 1
        elif op == AluOp.ADDM1:
            result = x + y - 1
        elif op == AluOp.AND:
            result = x & y
        elif op == AluOp.HI16:
            result = (x >> HALF_BITS) & HALF_MASK
        elif op == AluOp.LO16:
            result = x & HALF_MASK
        elif op == AluOp.PACK:
            result = pack_halves(x, y)
        else:
            raise ValueError(f"unknown ALU op {op!r}")
        return result & self._mask

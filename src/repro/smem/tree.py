"""The tree network over the cell array (paper Fig. 8 / thesis Fig. 3.9).

"A logarithmic height tree is used to compute the count of SIMD cells whose
selection flag register is set and to select a pivot element having an
imprecise interval ... Besides this the tree is able to retrieve a single
data value from the array of SIMD cells assuming that only a single
selection flag is set."

The interior nodes carry no persistent state — they are combinational folds
over associative operators, so every tree operation completes within one
clock period at a gate depth of ⌈log₂ n⌉ (which is what bounds the clock in
the area/timing model).  Two implementations:

* :class:`TreeNetwork` — vectorised NumPy reductions (the fast model);
* :func:`fold_reduce` — an explicit node-by-node binary fold used to verify
  the vectorised results and to count nodes/depth for the area model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class NodeValue:
    """The value combined upward through one tree node.

    ``count``     — number of selected cells in the subtree;
    ``leftmost``  — index of the leftmost selected cell (or None);
    ``any_value`` — OR-combined data of selected cells (equals the datum of
    the unique selected cell when exactly one is selected — the retrieval
    trick the thesis uses).
    """

    count: int
    leftmost: Optional[int]
    any_value: int

    @staticmethod
    def leaf(index: int, selected: bool, data: int) -> "NodeValue":
        if selected:
            return NodeValue(1, index, data)
        return NodeValue(0, None, 0)

    def combine(self, right: "NodeValue") -> "NodeValue":
        """The associative operator of the interior node circuit."""
        return NodeValue(
            count=self.count + right.count,
            leftmost=self.leftmost if self.leftmost is not None else right.leftmost,
            any_value=self.any_value | right.any_value,
        )


def fold_reduce(selected: Sequence[bool], data: Sequence[int]) -> NodeValue:
    """Explicit binary-tree fold (structural model of the node network)."""
    leaves = [
        NodeValue.leaf(i, bool(s), int(d)) for i, (s, d) in enumerate(zip(selected, data))
    ]
    if not leaves:
        return NodeValue(0, None, 0)
    level = leaves
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(level[i].combine(level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def tree_depth(n_leaves: int) -> int:
    """Gate levels of the fold — ⌈log₂ n⌉ (timing-model input)."""
    if n_leaves <= 1:
        return 0
    return int(np.ceil(np.log2(n_leaves)))


def tree_node_count(n_leaves: int) -> int:
    """Interior nodes of a full binary fold over n leaves (area-model input)."""
    return max(0, n_leaves - 1)


class TreeNetwork:
    """Vectorised tree reductions over array state (the hot path).

    Operates directly on the NumPy state arrays of the cell array; each
    method corresponds to one output port of the tree in Fig. 3.9.
    """

    def __init__(self, n_leaves: int):
        if n_leaves < 1:
            raise ValueError("tree needs at least one leaf")
        self.n_leaves = n_leaves
        self.depth = tree_depth(n_leaves)
        self.node_count = tree_node_count(n_leaves)

    def count(self, selected: np.ndarray) -> int:
        """Flag count output."""
        return int(np.count_nonzero(selected))

    def leftmost(self, selected: np.ndarray) -> Optional[int]:
        """Index of the leftmost selected cell (pivot selection)."""
        idx = np.argmax(selected) if selected.any() else -1
        return int(idx) if idx >= 0 else None

    def selected_value(self, selected: np.ndarray, data: np.ndarray) -> int:
        """Single-cell retrieval: OR over selected data (unique ⇒ exact)."""
        if not selected.any():
            return 0
        return int(np.bitwise_or.reduce(data[selected].astype(object)))

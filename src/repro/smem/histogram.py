"""Histogram — one smart-memory bin per cell, constant-cycle statistics.

Each cell is one bin holding a saturating-free word counter; ``H_INC``
bumps the addressed bin, ``H_SAMPLE`` bins a raw sample with the
controller's ALU (an AND mask — exact modulo when the bin count is a
power of two) before incrementing.  The fold tree keeps the aggregate
view live: total mass, the (leftmost) peak bin and its height, and the
number of non-empty bins are each one fixed-length microprogram away,
where a software histogram would rescan all the bins.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import IntEnum
from typing import Callable, Optional, Sequence

import numpy as np

from ..hdl import Component
from .adapter import SmartMemoryUnit
from .array import SmartCell, StructuralSmartArray, VectorSmartArray, lane_dtype
from .controller import MicroController
from .core import ArrayKind, DirectMachine, SmartMemoryCore
from .microcode import OP_A, AluOp, MicroInstr, imm, t_
from .tree import TreeNetwork

__all__ = [
    "HistCmd", "HistCellState", "HistVectors", "HistCell",
    "VectorHistArray", "StructuralHistArray", "HistController",
    "HistCore", "DirectHistMachine", "HistUnit", "hist_factory",
    "build_hist_microcode", "hist_write_profile",
    "H_RESET", "H_INC", "H_SAMPLE", "H_READ", "H_TOTAL", "H_PEAK", "H_NNZ",
    "H_FLAG_VALID",
]


class HistCmd(IntEnum):
    """Command lines of the histogram cell."""

    NOP = 0
    CLEAR = 1         # all counters to zero
    INC_AT = 2        # bin[broadcast] += 1
    SELECT_INDEX = 3  # sel := (index == broadcast)


@dataclass(frozen=True)
class HistCellState:
    """The persistent state of one bin cell."""

    count: int = 0
    selected: bool = False


class HistVectors:
    """The parallel state arrays of an n-bin histogram column."""

    __slots__ = ("n", "dtype", "count", "sel", "pos")

    def __init__(self, n: int, word_bits: int = 64):
        self.n = n
        self.dtype = lane_dtype(word_bits)
        self.pos = np.arange(n, dtype=np.uint32)
        self.clear()

    def clear(self) -> None:
        self.count = np.zeros(self.n, dtype=self.dtype)
        self.sel = np.zeros(self.n, dtype=bool)

    def state_of(self, i: int) -> HistCellState:
        return HistCellState(count=int(self.count[i]), selected=bool(self.sel[i]))

    def states(self) -> list[HistCellState]:
        return [self.state_of(i) for i in range(self.n)]


def apply_hist_command(vec: HistVectors, cmd: HistCmd, broadcast: int,
                       mask: int) -> None:
    """One broadcast command applied to all bins (vectorised cell step)."""
    if cmd == HistCmd.NOP:
        return
    if cmd == HistCmd.CLEAR:
        vec.clear()
    elif cmd == HistCmd.INC_AT:
        hit = vec.pos == np.uint32(broadcast)
        vec.count = np.where(hit, (vec.count + 1) & mask, vec.count)
    elif cmd == HistCmd.SELECT_INDEX:
        vec.sel = vec.pos == np.uint32(broadcast)
    else:  # pragma: no cover - enum exhaustive
        raise ValueError(f"unknown hist command {cmd!r}")


class HistCell(SmartCell):
    """Structural bin cell: the per-cell view of :func:`apply_hist_command`."""

    def _reset_state(self) -> HistCellState:
        return HistCellState()

    def _next_state(self) -> HistCellState:
        st = self._state.value
        cmd = HistCmd(self.cmd.value)
        if cmd == HistCmd.NOP:
            return st
        b = self.broadcast.value
        if cmd == HistCmd.CLEAR:
            return HistCellState() if st != HistCellState() else st
        if cmd == HistCmd.INC_AT:
            if self.index != b:
                return st
            mask = (1 << self.word_bits) - 1
            return replace(st, count=(st.count + 1) & mask)
        if cmd == HistCmd.SELECT_INDEX:
            sel = self.index == b
            return replace(st, selected=sel) if sel != st.selected else st
        raise ValueError(f"unknown hist command {cmd!r}")


class _HistArrayMixin:
    """The histogram-specific kit hooks, shared by both array shapes."""

    NOP_CMD = int(HistCmd.NOP)

    def _declare_ports(self) -> None:
        self.tree = TreeNetwork(self.n_cells)
        self._mask = (1 << self.word_bits) - 1
        # command side (driven by the controller)
        self.cmd = self.signal("cmd", 8, HistCmd.NOP)
        self.broadcast = self.signal("broadcast", self.word_bits, 0)
        # fold-tree outputs
        self.total = self.signal("total", self.word_bits, 0)
        self.peak_index = self.signal("peak_index", 32, 0)
        self.peak_count = self.signal("peak_count", self.word_bits, 0)
        self.nonzero = self.signal("nonzero", 32, 0)
        self.nonempty = self.signal("nonempty", 1, 0)
        self.sel_found = self.signal("sel_found", 1, 0)
        self.sel_value = self.signal("sel_value", self.word_bits, 0)

    def _make_vectors(self, n_cells: int) -> HistVectors:
        return HistVectors(n_cells, self.word_bits)

    def _fold_vector(self, vec: HistVectors) -> None:
        counts = vec.count
        total = int(np.sum(counts, dtype=np.uint64)) & self._mask
        self.total.set(total)
        # np.argmax is the leftmost maximum — the tree's tie-break order
        peak = int(np.argmax(counts))
        self.peak_index.set(peak)
        self.peak_count.set(int(counts[peak]))
        self.nonzero.set(int(np.count_nonzero(counts)))
        self.nonempty.set(1 if total else 0)
        left = self.tree.leftmost(vec.sel)
        self.sel_found.set(1 if left is not None else 0)
        self.sel_value.set(int(counts[left]) if left is not None else 0)

    def _apply_raw(self, vec: HistVectors) -> None:
        apply_hist_command(
            vec, HistCmd(self.cmd._value), self.broadcast._value, self._mask
        )

    def _seed_vectors(self, vec: HistVectors, cells: list) -> None:
        for i, cell in enumerate(cells):
            st = cell._state.value
            vec.count[i] = st.count
            vec.sel[i] = st.selected


class VectorHistArray(_HistArrayMixin, VectorSmartArray):
    """All n bins as NumPy arrays; one seq process per command."""

    def _apply_ports(self, vec: HistVectors) -> None:
        apply_hist_command(
            vec, HistCmd(self.cmd.value), self.broadcast.value, self._mask
        )


class StructuralHistArray(_HistArrayMixin, StructuralSmartArray):
    """One :class:`HistCell` per bin — the equivalence oracle."""

    CELL_CLASS = HistCell
    CELL_WIRES = ("cmd", "broadcast")

    def _fold_cells(self, cells: list[HistCell]) -> None:
        states = [c.state for c in cells]
        counts = [s.count for s in states]
        mask = (1 << self.word_bits) - 1
        total = sum(counts) & mask
        self.total.set(total)
        peak_count = max(counts)
        peak = counts.index(peak_count)
        self.peak_index.set(peak)
        self.peak_count.set(peak_count)
        self.nonzero.set(sum(1 for c in counts if c))
        self.nonempty.set(1 if total else 0)
        left = next((i for i, s in enumerate(states) if s.selected), None)
        self.sel_found.set(1 if left is not None else 0)
        self.sel_value.set(states[left].count if left is not None else 0)


# ---------------------------------------------------------------------------
# Microcode
# ---------------------------------------------------------------------------

#: variety codes of the histogram unit
H_RESET = 0x01   # clear all bins
H_INC = 0x02     # op_a = bin index (out-of-range indices hit no bin)
H_SAMPLE = 0x03  # op_a = raw sample, binned by AND with (n_bins - 1)
H_READ = 0x04    # op_a = bin index → dst1 = count, flags.valid = in range
H_TOTAL = 0x05   # → dst1 = total mass, flags.valid = histogram non-empty
H_PEAK = 0x06    # → dst1 = peak bin index, dst2 = its count, flags.valid
H_NNZ = 0x07     # → dst1 = number of non-empty bins

#: flag bit the unit raises when the queried quantity is meaningful
H_FLAG_VALID = 0x01

TOTAL = ("total",)
PEAK_INDEX = ("peak_index",)
PEAK_COUNT = ("peak_count",)
NONZERO = ("nonzero",)
NONEMPTY = ("nonempty",)
SEL_FOUND = ("sel_found",)
SEL_VALUE = ("sel_value",)


def build_hist_microcode(n_bins: int) -> dict[int, tuple[MicroInstr, ...]]:
    """The histogram ROM for one array size.

    ``H_SAMPLE``'s bin mask is baked into the ROM as an immediate — the
    microcode is built per instance, mirroring how a synthesised ROM is
    parameterised by the generic ``n_bins``.  The mask is exact modulo for
    power-of-two bin counts (the recommended configuration); otherwise it
    is still a deterministic binning, just not value-order-preserving.
    """
    return {
        H_RESET: (MicroInstr(cell_cmd=HistCmd.CLEAR, done=True),),
        H_INC: (MicroInstr(cell_cmd=HistCmd.INC_AT, broadcast=OP_A, done=True),),
        H_SAMPLE: (
            MicroInstr(alu=(0, AluOp.AND, OP_A, imm(n_bins - 1))),
            MicroInstr(cell_cmd=HistCmd.INC_AT, broadcast=t_(0), done=True),
        ),
        H_READ: (
            MicroInstr(cell_cmd=HistCmd.SELECT_INDEX, broadcast=OP_A),
            MicroInstr(emit=(("data1", SEL_VALUE), ("flags", SEL_FOUND)), done=True),
        ),
        H_TOTAL: (
            MicroInstr(emit=(("data1", TOTAL), ("flags", NONEMPTY)), done=True),
        ),
        H_PEAK: (
            MicroInstr(
                emit=(("data1", PEAK_INDEX), ("data2", PEAK_COUNT),
                      ("flags", NONEMPTY)),
                done=True,
            ),
        ),
        H_NNZ: (MicroInstr(emit=(("data1", NONZERO),), done=True),),
    }


def hist_write_profile(variety: int) -> tuple[bool, bool, bool]:
    """Which destinations each histogram instruction writes (decoder table)."""
    if variety == H_PEAK:
        return True, True, True
    if variety in (H_READ, H_TOTAL):
        return True, False, True
    if variety == H_NNZ:
        return True, False, False
    return False, False, False


class HistController(MicroController):
    """The kit FSM bound to the per-size histogram ROM and fold atoms."""

    def __init__(self, name: str, array, word_bits: int = 32,
                 parent: Optional[Component] = None):
        super().__init__(name, array, build_hist_microcode(array.n_cells),
                         word_bits, parent)

    def _read_port_atom(self, atom) -> int:
        kind = atom[0]
        if kind == "total":
            return self.array.total.value
        if kind == "peak_index":
            return self.array.peak_index.value
        if kind == "peak_count":
            return self.array.peak_count.value
        if kind == "nonzero":
            return self.array.nonzero.value
        if kind == "nonempty":
            return self.array.nonempty.value
        if kind == "sel_found":
            return self.array.sel_found.value
        if kind == "sel_value":
            return self.array.sel_value.value
        # no super() here: the astpass inliner cannot resolve super() calls,
        # and this method is process-reachable via _read_atom.
        raise ValueError(f"unknown atom {atom!r}")


class HistCore(SmartMemoryCore):
    """Histogram controller + bin array."""

    vector_array_class = VectorHistArray
    structural_array_class = StructuralHistArray
    controller_class = HistController


class DirectHistMachine(DirectMachine):
    """Drives a bare histogram core cycle-accurately, without the RTM."""

    core_class = HistCore
    core_name = "histcore"

    def reset_bins(self) -> int:
        return self.op(H_RESET)["cycles"]

    def increment(self, bin_index: int) -> int:
        return self.op(H_INC, bin_index)["cycles"]

    def sample(self, value: int) -> int:
        return self.op(H_SAMPLE, value)["cycles"]

    def load(self, samples: Sequence[int]) -> int:
        return sum(self.op(H_SAMPLE, v)["cycles"] for v in samples)

    def read_bin(self, bin_index: int) -> Optional[int]:
        out = self.op(H_READ, bin_index)
        return out["data1"] if out["flags"] & H_FLAG_VALID else None

    def total(self) -> int:
        return self.op(H_TOTAL)["data1"]

    def peak(self) -> Optional[tuple[int, int]]:
        """(bin index, count) of the leftmost fullest bin, None when empty."""
        out = self.op(H_PEAK)
        if not out["flags"] & H_FLAG_VALID:
            return None
        return out["data1"], out["data2"]

    def nonzero_bins(self) -> int:
        return self.op(H_NNZ)["data1"]


class HistUnit(SmartMemoryUnit):
    """Histogram core wrapped in the framework's unit protocol."""

    core_class = HistCore
    write_profile = staticmethod(hist_write_profile)


def hist_factory(
    n_cells: int = 64, array_kind: ArrayKind = "vector"
) -> Callable[..., HistUnit]:
    """Unit-registry factory for a histogram unit of a given size."""

    def make(name: str, word_bits: int, parent=None) -> HistUnit:
        return HistUnit(name, word_bits, parent, n_cells=n_cells, array_kind=array_kind)

    return make

"""Streaming string match — a systolic pattern comparator on the kit.

The pattern lives in the cells (one character per cell, appended like the
ξ-sort shift-load); the *text* streams through as ``M_STEP`` commands, one
character per dispatch.  Each cell holds an ``alive`` bit — "the pattern
prefix ending at me still matches" — which it recomputes each step from
its own character and its left neighbour's committed ``alive`` (the
classic systolic shift-register NFA for exact matching).  The last
pattern cell accumulates a hit counter; the fold tree exports the live
match flag and the running hit count, so the host learns "match ended at
this character" with fixed latency regardless of pattern length.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import IntEnum
from typing import Callable, Iterable, Optional

import numpy as np

from ..hdl import Component
from .adapter import SmartMemoryUnit
from .array import SmartCell, StructuralSmartArray, VectorSmartArray, lane_dtype
from .controller import MicroController
from .core import ArrayKind, DirectMachine, SmartMemoryCore
from .microcode import OP_A, MicroInstr
from .tree import TreeNetwork

__all__ = [
    "MatchCmd", "MatchCellState", "MatchVectors", "MatchCell",
    "VectorMatchArray", "StructuralMatchArray", "MatchController",
    "MatchCore", "DirectMatchMachine", "MatchUnit", "match_factory",
    "MATCH_MICROCODE", "match_write_profile",
    "M_RESET", "M_PAT", "M_STEP", "M_COUNT", "M_LEN", "M_RESTART", "M_READ",
    "M_FLAG_MATCH", "M_FLAG_VALID",
]


class MatchCmd(IntEnum):
    """Command lines of the match cell."""

    NOP = 0
    CLEAR = 1         # forget pattern and stream state
    APPEND_PAT = 2    # first free cell ← pattern character; alive cleared
    STEP = 3          # one text character through the systolic comparator
    RESTART = 4       # keep the pattern, clear alive/hits/selection
    SELECT_INDEX = 5  # sel := occupied & (index == broadcast)


@dataclass(frozen=True)
class MatchCellState:
    """The persistent state of one pattern cell."""

    pat: int = 0
    occupied: bool = False
    alive: bool = False
    hits: int = 0
    selected: bool = False


class MatchVectors:
    """The parallel state arrays of an n-cell match column."""

    __slots__ = ("n", "dtype", "pat", "occ", "alive", "hits", "sel", "pos")

    def __init__(self, n: int, word_bits: int = 64):
        self.n = n
        self.dtype = lane_dtype(word_bits)
        self.pos = np.arange(n, dtype=np.uint32)
        self.clear()

    def clear(self) -> None:
        n = self.n
        self.pat = np.zeros(n, dtype=self.dtype)
        self.occ = np.zeros(n, dtype=bool)
        self.alive = np.zeros(n, dtype=bool)
        self.hits = np.zeros(n, dtype=self.dtype)
        self.sel = np.zeros(n, dtype=bool)

    def state_of(self, i: int) -> MatchCellState:
        return MatchCellState(
            pat=int(self.pat[i]),
            occupied=bool(self.occ[i]),
            alive=bool(self.alive[i]),
            hits=int(self.hits[i]),
            selected=bool(self.sel[i]),
        )

    def states(self) -> list[MatchCellState]:
        return [self.state_of(i) for i in range(self.n)]


def apply_match_command(vec: MatchVectors, cmd: MatchCmd, broadcast: int,
                        mask: int) -> None:
    """One broadcast command applied to all cells (vectorised cell step)."""
    if cmd == MatchCmd.NOP:
        return
    b = broadcast & mask
    if cmd == MatchCmd.CLEAR:
        vec.clear()
    elif cmd == MatchCmd.APPEND_PAT:
        k = int(np.count_nonzero(vec.occ))
        if k < vec.n:
            vec.pat[k] = b
            vec.occ[k] = True
        # the pattern changed: any in-flight partial match is void
        vec.alive = np.zeros(vec.n, dtype=bool)
    elif cmd == MatchCmd.STEP:
        k = int(np.count_nonzero(vec.occ))
        shifted = np.roll(vec.alive, 1)
        shifted[0] = True  # a match may start at this character
        alive = vec.occ & (vec.pat == b) & shifted
        vec.alive = alive
        if k:
            # the last pattern cell counts completed matches
            last = alive & (vec.pos == np.uint32(k - 1))
            vec.hits = np.where(last, (vec.hits + 1) & mask, vec.hits)
    elif cmd == MatchCmd.RESTART:
        vec.alive = np.zeros(vec.n, dtype=bool)
        vec.hits = np.zeros(vec.n, dtype=vec.dtype)
        vec.sel = np.zeros(vec.n, dtype=bool)
    elif cmd == MatchCmd.SELECT_INDEX:
        vec.sel = vec.occ & (vec.pos == np.uint32(b))
    else:  # pragma: no cover - enum exhaustive
        raise ValueError(f"unknown match command {cmd!r}")


class MatchCell(SmartCell):
    """Structural match cell: the systolic view of :func:`apply_match_command`.

    ``STEP`` reads the left neighbour's *committed* ``alive`` — exactly
    the one-register-deep systolic pipe the vector model expresses with
    ``np.roll`` — and the committed column occupancy for the last-cell
    hit counter.
    """

    def _reset_state(self) -> MatchCellState:
        return MatchCellState()

    def _next_state(self) -> MatchCellState:
        st = self._state.value
        cmd = MatchCmd(self.cmd.value)
        if cmd == MatchCmd.NOP:
            return st
        mask = (1 << self.word_bits) - 1
        b = self.broadcast.value & mask
        if cmd == MatchCmd.CLEAR:
            return MatchCellState() if st != MatchCellState() else st
        if cmd == MatchCmd.APPEND_PAT:
            k = sum(1 for c in self.array.cells if c._state.value.occupied)
            if self.index == k:
                return replace(st, pat=b, occupied=True, alive=False)
            if st.alive:
                return replace(st, alive=False)
            return st
        if cmd == MatchCmd.STEP:
            prev_alive = (
                True if self.is_first
                else self.prev_cell._state.value.alive
            )
            alive = st.occupied and st.pat == b and prev_alive
            k = sum(1 for c in self.array.cells if c._state.value.occupied)
            hits = st.hits
            if alive and self.index == k - 1:
                hits = (hits + 1) & mask
            if alive == st.alive and hits == st.hits:
                return st
            return replace(st, alive=alive, hits=hits)
        if cmd == MatchCmd.RESTART:
            if not (st.alive or st.hits or st.selected):
                return st
            return replace(st, alive=False, hits=0, selected=False)
        if cmd == MatchCmd.SELECT_INDEX:
            sel = st.occupied and self.index == b
            return replace(st, selected=sel) if sel != st.selected else st
        raise ValueError(f"unknown match command {cmd!r}")


class _MatchArrayMixin:
    """The match-specific kit hooks, shared by both array shapes."""

    NOP_CMD = int(MatchCmd.NOP)

    def _declare_ports(self) -> None:
        self.tree = TreeNetwork(self.n_cells)
        self._mask = (1 << self.word_bits) - 1
        # command side (driven by the controller)
        self.cmd = self.signal("cmd", 8, MatchCmd.NOP)
        self.broadcast = self.signal("broadcast", self.word_bits, 0)
        # fold-tree outputs
        self.pat_len = self.signal("pat_len", 32, 0)
        self.match_now = self.signal("match_now", 1, 0)
        self.hits_total = self.signal("hits_total", self.word_bits, 0)
        self.sel_found = self.signal("sel_found", 1, 0)
        self.sel_value = self.signal("sel_value", self.word_bits, 0)

    def _make_vectors(self, n_cells: int) -> MatchVectors:
        return MatchVectors(n_cells, self.word_bits)

    def _fold_vector(self, vec: MatchVectors) -> None:
        k = int(np.count_nonzero(vec.occ))
        self.pat_len.set(k)
        self.match_now.set(1 if k and bool(vec.alive[k - 1]) else 0)
        self.hits_total.set(int(np.sum(vec.hits, dtype=np.uint64)) & self._mask)
        left = self.tree.leftmost(vec.sel)
        self.sel_found.set(1 if left is not None else 0)
        self.sel_value.set(int(vec.pat[left]) if left is not None else 0)

    def _apply_raw(self, vec: MatchVectors) -> None:
        apply_match_command(
            vec, MatchCmd(self.cmd._value), self.broadcast._value, self._mask
        )

    def _seed_vectors(self, vec: MatchVectors, cells: list) -> None:
        for i, cell in enumerate(cells):
            st = cell._state.value
            vec.pat[i] = st.pat
            vec.occ[i] = st.occupied
            vec.alive[i] = st.alive
            vec.hits[i] = st.hits
            vec.sel[i] = st.selected


class VectorMatchArray(_MatchArrayMixin, VectorSmartArray):
    """All n match cells as NumPy arrays; one seq process per command."""

    def _apply_ports(self, vec: MatchVectors) -> None:
        apply_match_command(
            vec, MatchCmd(self.cmd.value), self.broadcast.value, self._mask
        )


class StructuralMatchArray(_MatchArrayMixin, StructuralSmartArray):
    """One :class:`MatchCell` per element — the equivalence oracle."""

    CELL_CLASS = MatchCell
    CELL_WIRES = ("cmd", "broadcast")

    def _fold_cells(self, cells: list[MatchCell]) -> None:
        states = [c.state for c in cells]
        k = sum(1 for s in states if s.occupied)
        self.pat_len.set(k)
        self.match_now.set(1 if k and states[k - 1].alive else 0)
        mask = (1 << self.word_bits) - 1
        self.hits_total.set(sum(s.hits for s in states) & mask)
        left = next((i for i, s in enumerate(states) if s.selected), None)
        self.sel_found.set(1 if left is not None else 0)
        self.sel_value.set(states[left].pat if left is not None else 0)


# ---------------------------------------------------------------------------
# Microcode
# ---------------------------------------------------------------------------

#: variety codes of the match unit
M_RESET = 0x01    # forget pattern and stream state
M_PAT = 0x02      # op_a = next pattern character
M_STEP = 0x03     # op_a = next text character → dst1 = hits, flags.match
M_COUNT = 0x04    # → dst1 = completed matches so far
M_LEN = 0x05      # → dst1 = pattern length
M_RESTART = 0x06  # keep pattern, clear stream state
M_READ = 0x07     # op_a = index → dst1 = pattern char, flags.valid

#: flag bit: a match ended at the character just stepped
M_FLAG_MATCH = 0x01
#: flag bit: the read index addressed a pattern cell
M_FLAG_VALID = 0x01

PAT_LEN = ("pat_len",)
MATCH_NOW = ("match_now",)
HITS_TOTAL = ("hits_total",)
SEL_FOUND = ("sel_found",)
SEL_VALUE = ("sel_value",)

#: The match microcode ROM: variety code → program.
MATCH_MICROCODE: dict[int, tuple[MicroInstr, ...]] = {
    M_RESET: (MicroInstr(cell_cmd=MatchCmd.CLEAR, done=True),),
    M_PAT: (MicroInstr(cell_cmd=MatchCmd.APPEND_PAT, broadcast=OP_A, done=True),),
    # STEP commits on the first edge; the second word's emit then reads the
    # post-step fold — hits and the match flag reflect this character.
    M_STEP: (
        MicroInstr(cell_cmd=MatchCmd.STEP, broadcast=OP_A),
        MicroInstr(emit=(("data1", HITS_TOTAL), ("flags", MATCH_NOW)), done=True),
    ),
    M_COUNT: (MicroInstr(emit=(("data1", HITS_TOTAL),), done=True),),
    M_LEN: (MicroInstr(emit=(("data1", PAT_LEN),), done=True),),
    M_RESTART: (MicroInstr(cell_cmd=MatchCmd.RESTART, done=True),),
    M_READ: (
        MicroInstr(cell_cmd=MatchCmd.SELECT_INDEX, broadcast=OP_A),
        MicroInstr(emit=(("data1", SEL_VALUE), ("flags", SEL_FOUND)), done=True),
    ),
}


def match_write_profile(variety: int) -> tuple[bool, bool, bool]:
    """Which destinations each match instruction writes (decoder table)."""
    if variety in (M_STEP, M_READ):
        return True, False, True
    if variety in (M_COUNT, M_LEN):
        return True, False, False
    return False, False, False


class MatchController(MicroController):
    """The kit FSM bound to the match ROM and the match fold atoms."""

    def __init__(self, name: str, array, word_bits: int = 32,
                 parent: Optional[Component] = None):
        super().__init__(name, array, MATCH_MICROCODE, word_bits, parent)

    def _read_port_atom(self, atom) -> int:
        kind = atom[0]
        if kind == "pat_len":
            return self.array.pat_len.value
        if kind == "match_now":
            return self.array.match_now.value
        if kind == "hits_total":
            return self.array.hits_total.value
        if kind == "sel_found":
            return self.array.sel_found.value
        if kind == "sel_value":
            return self.array.sel_value.value
        # no super() here: the astpass inliner cannot resolve super() calls,
        # and this method is process-reachable via _read_atom.
        raise ValueError(f"unknown atom {atom!r}")


class MatchCore(SmartMemoryCore):
    """Match controller + pattern cell array."""

    vector_array_class = VectorMatchArray
    structural_array_class = StructuralMatchArray
    controller_class = MatchController


class DirectMatchMachine(DirectMachine):
    """Drives a bare match core cycle-accurately, without the RTM."""

    core_class = MatchCore
    core_name = "matchcore"

    def reset_machine(self) -> int:
        return self.op(M_RESET)["cycles"]

    def set_pattern(self, pattern: Iterable[int]) -> int:
        total = self.op(M_RESET)["cycles"]
        for ch in pattern:
            total += self.op(M_PAT, ch)["cycles"]
        return total

    def step(self, char: int) -> tuple[bool, int]:
        """One text character; returns (match ended here, total hits)."""
        out = self.op(M_STEP, char)
        return bool(out["flags"] & M_FLAG_MATCH), out["data1"]

    def feed(self, text: Iterable[int]) -> list[int]:
        """Stream a text; returns the end positions of every match."""
        ends = []
        for i, ch in enumerate(text):
            matched, _ = self.step(ch)
            if matched:
                ends.append(i)
        return ends

    def hits(self) -> int:
        return self.op(M_COUNT)["data1"]

    def pattern_length(self) -> int:
        return self.op(M_LEN)["data1"]

    def restart(self) -> int:
        return self.op(M_RESTART)["cycles"]

    def read_pattern_at(self, index: int) -> Optional[int]:
        out = self.op(M_READ, index)
        return out["data1"] if out["flags"] & M_FLAG_VALID else None


class MatchUnit(SmartMemoryUnit):
    """Match core wrapped in the framework's unit protocol."""

    core_class = MatchCore
    write_profile = staticmethod(match_write_profile)


def match_factory(
    n_cells: int = 64, array_kind: ArrayKind = "vector"
) -> Callable[..., MatchUnit]:
    """Unit-registry factory for a match unit of a given size."""

    def make(name: str, word_bits: int, parent=None) -> MatchUnit:
        return MatchUnit(name, word_bits, parent, n_cells=n_cells, array_kind=array_kind)

    return make

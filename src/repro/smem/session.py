"""Host-side accelerators for the smart-memory suite.

Mirrors :class:`repro.xisort.algorithm.XiSortAccelerator`: each class
drives one smart-memory unit through an open :class:`repro.host.Session`
— RTM dispatches over the message channel, results chained through
coprocessor registers under the scoreboard, flag reads only where the
host actually branches.  Build the system with
``SystemBuilder.with_smem_suite()`` (or register the individual
factories) before opening the session.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..host.session import Session
from ..isa import instructions as ins
from ..isa.opcodes import Opcode
from .histogram import (
    H_FLAG_VALID,
    H_INC,
    H_NNZ,
    H_PEAK,
    H_READ,
    H_RESET,
    H_SAMPLE,
    H_TOTAL,
)
from .match import (
    M_COUNT,
    M_FLAG_MATCH,
    M_FLAG_VALID,
    M_LEN,
    M_PAT,
    M_READ,
    M_RESET,
    M_RESTART,
    M_STEP,
)
from .scan import (
    SC_ADD,
    SC_COUNT,
    SC_FLAG_VALID,
    SC_MAX,
    SC_MIN,
    SC_PUSH,
    SC_READ_AT,
    SC_RESET,
    SC_SCAN,
    SC_TOTAL,
)

__all__ = ["ScanAccelerator", "HistogramAccelerator", "MatchAccelerator"]


class _SmemAccelerator:
    """Common register plumbing for the suite accelerators."""

    def __init__(self, session: Session, unit_code: int):
        self.session = session
        self.unit_code = unit_code
        self.r_val = session.alloc()   # operand staging
        self.r_out = session.alloc()   # primary results
        self.r_aux = session.alloc()   # secondary results
        self.f_status = session.alloc_flag()

    def _dispatch(self, variety: int, src1: int = 0, src2: int = 0,
                  dst1: int = 0, dst2: int = 0, dst_flag: int = 0) -> None:
        self.session.driver.execute(
            ins.dispatch(self.unit_code, variety, dst1=dst1, dst2=dst2,
                         src1=src1, src2=src2, dst_flag=dst_flag)
        )

    def _query(self, variety: int) -> int:
        """Zero-operand query → dst1 → host read."""
        self._dispatch(variety, dst1=self.r_out)
        return self.session.read(self.r_out)

    def _query_flagged(self, variety: int, flag_bit: int) -> Optional[int]:
        """Zero-operand query whose validity arrives in the flag register."""
        self._dispatch(variety, dst1=self.r_out, dst_flag=self.f_status)
        if not self.session.driver.read_flags(self.f_status) & flag_bit:
            return None
        return self.session.read(self.r_out)

    def _indexed_query(self, variety: int, index: int, flag_bit: int) -> Optional[int]:
        """One-operand query with a validity flag (READ_AT-shaped)."""
        self.session.write(self.r_val, index)
        self._dispatch(variety, src1=self.r_val, dst1=self.r_out,
                       dst_flag=self.f_status)
        if not self.session.driver.read_flags(self.f_status) & flag_bit:
            return None
        return self.session.read(self.r_out)


class ScanAccelerator(_SmemAccelerator):
    """Prefix scan / reduce operations over an open session."""

    def __init__(self, session: Session, unit_code: int = Opcode.SCAN):
        super().__init__(session, unit_code)

    def reset(self) -> None:
        self._dispatch(SC_RESET)

    def push(self, value: int) -> None:
        self.session.write(self.r_val, value)
        self._dispatch(SC_PUSH, src1=self.r_val)

    def load(self, values: Sequence[int]) -> None:
        for v in values:
            self.push(v)

    def prefix_sum(self) -> int:
        """In-place inclusive prefix sum; returns the grand total."""
        self._dispatch(SC_SCAN, dst1=self.r_out)
        return self.session.read(self.r_out)

    def total(self) -> Optional[int]:
        return self._query_flagged(SC_TOTAL, SC_FLAG_VALID)

    def minimum(self) -> Optional[int]:
        return self._query_flagged(SC_MIN, SC_FLAG_VALID)

    def maximum(self) -> Optional[int]:
        return self._query_flagged(SC_MAX, SC_FLAG_VALID)

    def count(self) -> int:
        return self._query(SC_COUNT)

    def read_at(self, index: int) -> Optional[int]:
        return self._indexed_query(SC_READ_AT, index, SC_FLAG_VALID)

    def add_all(self, addend: int) -> None:
        self.session.write(self.r_val, addend)
        self._dispatch(SC_ADD, src1=self.r_val)


class HistogramAccelerator(_SmemAccelerator):
    """Histogram operations over an open session."""

    def __init__(self, session: Session, unit_code: int = Opcode.HISTO):
        super().__init__(session, unit_code)

    def reset(self) -> None:
        self._dispatch(H_RESET)

    def increment(self, bin_index: int) -> None:
        self.session.write(self.r_val, bin_index)
        self._dispatch(H_INC, src1=self.r_val)

    def sample(self, value: int) -> None:
        self.session.write(self.r_val, value)
        self._dispatch(H_SAMPLE, src1=self.r_val)

    def load(self, samples: Iterable[int]) -> None:
        for v in samples:
            self.sample(v)

    def read_bin(self, bin_index: int) -> Optional[int]:
        return self._indexed_query(H_READ, bin_index, H_FLAG_VALID)

    def total(self) -> int:
        self._dispatch(H_TOTAL, dst1=self.r_out, dst_flag=self.f_status)
        return self.session.read(self.r_out)

    def peak(self) -> Optional[tuple[int, int]]:
        """(bin index, count) of the leftmost fullest bin, None when empty."""
        self._dispatch(H_PEAK, dst1=self.r_out, dst2=self.r_aux,
                       dst_flag=self.f_status)
        if not self.session.driver.read_flags(self.f_status) & H_FLAG_VALID:
            return None
        return self.session.read(self.r_out), self.session.read(self.r_aux)

    def nonzero_bins(self) -> int:
        return self._query(H_NNZ)


class MatchAccelerator(_SmemAccelerator):
    """Streaming string-match operations over an open session."""

    def __init__(self, session: Session, unit_code: int = Opcode.MATCH):
        super().__init__(session, unit_code)

    def reset(self) -> None:
        self._dispatch(M_RESET)

    def set_pattern(self, pattern: Iterable[int]) -> None:
        self.reset()
        for ch in pattern:
            self.session.write(self.r_val, ch)
            self._dispatch(M_PAT, src1=self.r_val)

    def step(self, char: int) -> bool:
        """One text character; True when a match ended on it.

        The hit counter lands in ``r_out`` on the coprocessor — read it
        with :meth:`hits` only when needed; streaming costs one flag
        round-trip per character.
        """
        self.session.write(self.r_val, char)
        self._dispatch(M_STEP, src1=self.r_val, dst1=self.r_out,
                       dst_flag=self.f_status)
        return bool(self.session.driver.read_flags(self.f_status) & M_FLAG_MATCH)

    def feed(self, text: Iterable[int]) -> list[int]:
        """Stream a text; returns the end positions of every match."""
        return [i for i, ch in enumerate(text) if self.step(ch)]

    def hits(self) -> int:
        return self._query(M_COUNT)

    def pattern_length(self) -> int:
        return self._query(M_LEN)

    def restart(self) -> None:
        self._dispatch(M_RESTART)

    def read_pattern_at(self, index: int) -> Optional[int]:
        return self._indexed_query(M_READ, index, M_FLAG_VALID)

"""Generic smart-memory cell arrays: the SIMD substrate behind every kit FU.

The paper's smart-memory construction — an array of identical cells that
all execute one broadcast command per cycle, under a logarithmic fold tree
that reduces per-cell state to a handful of output ports — is independent
of *what* the cells store.  This module carries that construction once;
ξ-sort, prefix scan, histogram and string match are clients.

The cell contract
-----------------

An array implementer subclasses :class:`VectorSmartArray` (NumPy state,
one process for the whole column — the production model) and/or
:class:`StructuralSmartArray` (one :class:`SmartCell` component per
element — the synthesis-faithful oracle) and provides:

* **per-cell state + step function** — a frozen state dataclass plus a
  pure transition: vectorised over the whole column
  (:meth:`VectorSmartArray._apply_ports`) and scalar per cell
  (:meth:`SmartCell._next_state`).  The scalar step must return the *same
  object* when nothing changes, so idle columns go dormant under the event
  kernel;
* **array-level broadcast/collect** — command ports (``cmd`` plus whatever
  broadcast/load buses the command set needs, declared in
  :meth:`_declare_ports`) and the class attribute ``NOP_CMD`` (must encode
  as 0) marking the do-nothing command;
* **fold-tree reduction** — output ports driven combinationally from the
  cell state (:meth:`VectorSmartArray._fold_vector` /
  :meth:`StructuralSmartArray._fold_cells`), matching the associative-fold
  semantics of :mod:`repro.smem.tree`;
* **wheel-hook obligation** — satisfied here: a NOP edge provably leaves
  the state untouched, so the base classes register a wheel hook that
  certifies idle cycles as skippable and vetoes (horizon 0) whenever a
  real command is on the bus.  Implementers whose NOP is not state-free
  must not use this kit;
* **__compile_vector__ obligation** — satisfied here: both base classes
  publish a :class:`SmartArrayExecutor` that absorbs the column's
  interpreted processes into per-cycle array operations under the compiled
  backend (:mod:`repro.hdl.compile.vector`), including seeding from and
  redirecting the live per-cell registers of a structural array.

The vector-state object returned by :meth:`_make_vectors` must expose
``n``, ``clear()`` and ``state_of(i)`` (see ξ-sort's ``CellVectors`` for
the canonical shape).
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Optional

import numpy as np

from ..hdl import Component


def lane_dtype(word_bits: int) -> np.dtype:
    """Narrowest unsigned numpy dtype whose lane holds a ``word_bits`` word.

    Width-proof-backed narrowing for the vectorised cell state: every value
    a cell commits is masked below ``2**word_bits``, and
    ``(x mod 2**lane) mod 2**w == x mod 2**w`` for ``w <= lane``, so
    add/multiply/bitwise arithmetic carried in the narrow lane wraps to the
    same masked words and comparisons see identical values.  Words wider
    than 64 bits clamp to the uint64 lane (the explicit word mask keeps
    them exact, exactly as before narrowing).
    """
    # lazy: repro.analysis imports system/xisort modules built on this kit
    from ..analysis.dataflow.domain import vector_width_bits

    return np.dtype(f"uint{vector_width_bits(min(word_bits, 64))}")


class SmartCell(Component):
    """One cell of a structural smart-memory column.

    Subclasses implement :meth:`_reset_state` and :meth:`_next_state`.
    The owning array wires the shared command buses onto instance
    attributes (``CELL_WIRES``) and sets ``prev_cell`` / ``is_first`` /
    ``index`` / ``array`` — a cell may read its left neighbour's committed
    state (systolic shifts) or fold over the whole column through
    ``self.array`` (global SIMD semantics such as occupancy counts).
    """

    def __init__(self, name: str, word_bits: int, parent: Optional[Component] = None):
        super().__init__(name, parent)
        self.word_bits = word_bits
        self._state = self.reg("state", None, reset=self._reset_state())
        self.prev_cell: Optional["SmartCell"] = None
        self.is_first = False
        self.index = 0
        self.array: Optional[Component] = None
        #: set by a SmartArrayExecutor to ``(executor, index)`` when the
        #: compiled backend absorbs this cell into a vectorized column; the
        #: per-cell register then goes stale and reads are redirected
        self._vec = None

        @self.seq(pure=True)
        def _tick() -> None:
            ns = self._next_state()
            # the step returns the same object when nothing changes, so an
            # idle column's cells stage nothing and go dormant.
            if ns is not self._state.value:
                self._state.nxt = ns

        self._tick_fn = _tick

    def _reset_state(self):
        raise NotImplementedError

    def _next_state(self):
        raise NotImplementedError

    @property
    def state(self):
        if self._vec is not None:
            executor, index = self._vec
            return executor.state_of(index)
        return self._state.value


class SmartArrayExecutor:
    """Compiled-backend vector executor for a smart-memory column.

    Implements the :class:`repro.hdl.compile.vector.VectorExecutor`
    contract on top of the owner array's vectorised state.  The settle
    side is dirty-guarded: the fold reruns only after an edge applied a
    real command (or after reset), so the repeated sweeps of one settle
    and the long NOP stretches between operations cost nothing.

    For a structural array the constructor seeds the vectors from the
    live per-cell register states (via the owner's ``_seed_vectors``) and
    redirects every :attr:`SmartCell.state` read through :meth:`state_of`,
    keeping inspection exact while the per-cell registers go stale.
    """

    def __init__(self, owner, vec, absorbed, cells: Optional[list] = None):
        self.owner = owner
        self.vec = vec
        self._absorbed = list(absorbed)
        self.n_cells = vec.n
        self._dirty = True
        owner._vec_executor = self
        if cells is not None:
            owner._seed_vectors(vec, cells)
            for i, cell in enumerate(cells):
                cell._vec = (self, i)

    @property
    def absorbed(self):
        return self._absorbed

    def settle(self) -> bool:
        if not self._dirty:
            return False
        self._dirty = False
        guard = self.owner._guard
        if guard is not None:
            guard.pre_fold()
        self.owner._fold_vector(self.vec)
        return True

    def edge(self) -> bool:
        o = self.owner
        if o.cmd._value == o.NOP_CMD:
            return False
        o._apply_raw(self.vec)
        if o._guard is not None:
            o._guard.after_apply()
        self._dirty = True
        return True

    def horizon(self):
        return 0 if self.owner.cmd._value != self.owner.NOP_CMD else None

    def on_reset(self) -> None:
        self.vec.clear()
        self._dirty = True

    def state_of(self, i: int) -> object:
        return self.vec.state_of(i)


def _suppress_guard_lint(array: Component) -> None:
    """Declare the guard fold's documented contract-rule waivers.

    The detection process attached by ``attach_guard`` repairs single-bit
    upsets inline (``force()`` on cell payloads / the machine-check
    latches) and reads the guard's hidden pending-upset state.  Both are
    guard-coupled: the hidden state moves only alongside the tracked
    ``guard_evt`` toggle staged by the same command edge that created it,
    so every reader is re-run.  Declared here, once, where the coupling is
    created.
    """
    array.lint_suppress(
        "contract.force-in-proc",
        "inline ECC on the fold path: a single-bit repair (or machine-check "
        "latch) forces state the tracked guard_evt toggle already re-ran "
        "readers for",
    )
    array.lint_suppress(
        "contract.hidden-comb-read",
        "the guard's pending-upset state changes only alongside the tracked "
        "guard_evt register edge staged by the same command",
    )


class VectorSmartArray(Component):
    """All n cells as NumPy arrays; one seq process applies the command.

    Subclasses provide ``NOP_CMD``, :meth:`_declare_ports`,
    :meth:`_make_vectors`, :meth:`_fold_vector`, :meth:`_apply_ports` (the
    interpreted step, reading command ports via ``.value``) and
    :meth:`_apply_raw` (the executor step, reading settled ``._value``).
    """

    NOP_CMD: int = 0

    def __init__(self, name: str, n_cells: int, word_bits: int = 32,
                 parent: Optional[Component] = None):
        super().__init__(name, parent)
        if n_cells < 1:
            raise ValueError("cell array needs at least one cell")
        self._validate(n_cells)
        self.n_cells = n_cells
        self.word_bits = word_bits
        #: optional repro.faults.ArrayGuard (see attach_guard)
        self._guard = None
        self._guard_procs: list = []
        #: set by SmartArrayExecutor when the compiled backend owns the column
        self._vec_executor: Optional["SmartArrayExecutor"] = None
        self._declare_ports()
        self.vec = self._make_vectors(n_cells)

        # always=True: this process reads the NumPy cell-state arrays, which
        # the scheduler's Signal read-tracking cannot see; it must re-run on
        # every settle iteration (the arrays change at each applied command).
        @self.comb(always=True)
        def _tree_outputs() -> None:
            self._fold_vector(self.vec)

        @self.seq
        def _apply() -> None:
            self._apply_ports(self.vec)
            if self._guard is not None and self.cmd.value != self.NOP_CMD:
                self._guard.after_apply()

        self._tree_fn = _tree_outputs
        self._apply_fn = _apply

        # A NOP edge leaves the NumPy state untouched, so idle cycles are
        # freely skippable; any real command vetoes.  This hook also keeps
        # the always=True tree fold covered on the fast-forward path: the
        # arrays cannot change while every skipped edge is a NOP.
        self.wheel(
            lambda: 0 if self.cmd.value != self.NOP_CMD else None,
            lambda n: None,
        )

        @self.on_reset
        def _reset() -> None:
            self.vec.clear()

    def __compile_vector__(self) -> SmartArrayExecutor:
        return self._make_executor()

    # -- subclass obligations -------------------------------------------------------

    def _validate(self, n_cells: int) -> None:
        """Extra size constraints (e.g. ξ-sort's sentinel bound)."""

    def _declare_ports(self) -> None:
        raise NotImplementedError

    def _make_vectors(self, n_cells: int) -> object:
        raise NotImplementedError

    def _fold_vector(self, vec) -> None:
        raise NotImplementedError

    def _apply_ports(self, vec) -> None:
        raise NotImplementedError

    def _apply_raw(self, vec) -> None:
        raise NotImplementedError

    def _make_executor(self) -> SmartArrayExecutor:
        return SmartArrayExecutor(
            self, self.vec, [self._tree_fn, self._apply_fn] + self._guard_procs
        )

    def _seed_vectors(self, vec, cells) -> None:
        raise NotImplementedError

    # -- state-fault guard hookup ---------------------------------------------------

    def attach_guard(self, guard) -> None:
        """Wire a :class:`repro.faults.ArrayGuard` onto this column.

        The guard's injection (``after_apply``) rides the existing apply
        process; its detection (``pre_fold``) gets a dedicated comb process
        woken by the guard's event register, so deferred upsets apply even
        when the triggering command changed no other signal.  Both hooks are
        absorbed by the compiled executor, which calls them directly.
        """
        if self._guard is not None:
            raise RuntimeError(f"{self.path} already has a state guard")
        self._guard = guard
        guard.bind_evt(self.reg("guard_evt", 1, 0))

        @self.comb
        def _guard_fold() -> None:
            guard.pre_fold()

        self._guard_procs.append(_guard_fold)
        _suppress_guard_lint(self)

    # -- inspection / checkpointing -------------------------------------------------

    def states(self) -> list:
        """Snapshot as per-cell state objects (equivalence tests)."""
        return self.vec.states()

    def state_at(self, i: int):
        """One cell's committed state (the executor shares ``self.vec``)."""
        return self.vec.state_of(i)

    def load_states(self, states: list) -> None:
        """Overwrite the whole column's state (checkpoint restore)."""
        if len(states) != self.n_cells:
            raise ValueError(
                f"expected {self.n_cells} states, got {len(states)}"
            )
        fakes = [SimpleNamespace(_state=SimpleNamespace(value=s)) for s in states]
        self._seed_vectors(self.vec, fakes)
        if self._vec_executor is not None:
            self._vec_executor._dirty = True

    def poke_state(self, i: int, state) -> None:
        """Replace one cell's state in place (uncorrectable-upset payload)."""
        states = self.states()
        states[i] = state
        self.load_states(states)


class StructuralSmartArray(Component):
    """One :class:`SmartCell` component per element plus a structural fold.

    Cycle-for-cycle equivalent to the matching :class:`VectorSmartArray`;
    used as the oracle in property tests and for small faithful
    simulations.  Under the compiled backend the whole column collapses
    into a :class:`SmartArrayExecutor` — same observable behaviour,
    array-speed execution.

    Subclasses provide ``NOP_CMD``, ``CELL_CLASS``, ``CELL_WIRES`` (the
    command-bus attribute names wired onto every cell),
    :meth:`_declare_ports`, :meth:`_fold_cells` plus the vector-side
    methods the executor needs (``_make_vectors``, ``_fold_vector``,
    ``_apply_raw``, ``_seed_vectors``).
    """

    NOP_CMD: int = 0
    CELL_CLASS: type = SmartCell
    CELL_WIRES: tuple[str, ...] = ("cmd", "broadcast")

    def __init__(self, name: str, n_cells: int, word_bits: int = 32,
                 parent: Optional[Component] = None):
        super().__init__(name, parent)
        if n_cells < 1:
            raise ValueError("cell array needs at least one cell")
        self._validate(n_cells)
        self.n_cells = n_cells
        self.word_bits = word_bits
        #: optional repro.faults.ArrayGuard (see attach_guard)
        self._guard = None
        self._guard_procs: list = []
        #: set by SmartArrayExecutor when the compiled backend owns the column
        self._vec_executor: Optional["SmartArrayExecutor"] = None
        self._declare_ports()
        self.cells: list[SmartCell] = self._make_cells()

        @self.comb
        def _tree_outputs() -> None:
            self._fold_cells(self.cells)

        self._tree_fn = _tree_outputs

    def _make_cells(self) -> list[SmartCell]:
        cells: list[SmartCell] = []
        prev: Optional[SmartCell] = None
        for i in range(self.n_cells):
            cell = self.CELL_CLASS(f"cell{i}", self.word_bits, parent=self)
            for wire in self.CELL_WIRES:
                setattr(cell, wire, getattr(self, wire))
            cell.prev_cell = prev
            cell.is_first = i == 0
            cell.index = i
            cell.array = self
            cells.append(cell)
            prev = cell
        return cells

    def __compile_vector__(self) -> SmartArrayExecutor:
        return self._make_executor()

    def _make_executor(self) -> SmartArrayExecutor:
        absorbed = (
            [self._tree_fn] + [c._tick_fn for c in self.cells] + self._guard_procs
        )
        return SmartArrayExecutor(
            self, self._make_vectors(self.n_cells), absorbed, cells=self.cells
        )

    # -- state-fault guard hookup ---------------------------------------------------

    def attach_guard(self, guard) -> None:
        """Wire a :class:`repro.faults.ArrayGuard` onto this column.

        The structural base has no array-level apply process, so the guard
        gets its own seq process counting applied commands, plus the comb
        detection process and a wheel veto mirroring the vector base's hook
        (skipped stretches are all-NOP, where neither process does work).
        """
        if self._guard is not None:
            raise RuntimeError(f"{self.path} already has a state guard")
        self._guard = guard
        guard.bind_evt(self.reg("guard_evt", 1, 0))

        @self.comb
        def _guard_fold() -> None:
            guard.pre_fold()

        @self.seq
        def _guard_apply() -> None:
            if self.cmd.value != self.NOP_CMD:
                guard.after_apply()

        self.wheel(
            lambda: 0 if self.cmd.value != self.NOP_CMD else None,
            lambda n: None,
        )
        self._guard_procs.extend([_guard_fold, _guard_apply])
        _suppress_guard_lint(self)

    # -- subclass obligations -------------------------------------------------------

    def _validate(self, n_cells: int) -> None:
        """Extra size constraints (none by default)."""

    def _declare_ports(self) -> None:
        raise NotImplementedError

    def _fold_cells(self, cells) -> None:
        raise NotImplementedError

    def _make_vectors(self, n_cells: int) -> object:
        raise NotImplementedError

    def _fold_vector(self, vec) -> None:
        raise NotImplementedError

    def _apply_raw(self, vec) -> None:
        raise NotImplementedError

    def _seed_vectors(self, vec, cells) -> None:
        raise NotImplementedError

    def states(self) -> list:
        return [c.state for c in self.cells]

    def state_at(self, i: int):
        return self.cells[i].state

    def load_states(self, states: list) -> None:
        """Overwrite the whole column's state (checkpoint restore)."""
        if len(states) != self.n_cells:
            raise ValueError(
                f"expected {self.n_cells} states, got {len(states)}"
            )
        if self._vec_executor is not None:
            fakes = [
                SimpleNamespace(_state=SimpleNamespace(value=s)) for s in states
            ]
            self._seed_vectors(self._vec_executor.vec, fakes)
            self._vec_executor._dirty = True
        else:
            for cell, s in zip(self.cells, states):
                cell._state.force(s)

    def poke_state(self, i: int, state) -> None:
        """Replace one cell's state in place (uncorrectable-upset payload)."""
        states = self.states()
        states[i] = state
        self.load_states(states)

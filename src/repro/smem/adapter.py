"""The kit's functional-unit adapter (thesis Figs. 3.13/3.14).

"The idea behind the design is to separate the ξ-sort controller logic
from the interface logic required by the framework" — and the interface
logic turns out to be identical for every smart-memory machine: forward a
dispatch into the core's start interface, wait for the completion strobe,
buffer the staged outputs, and hand them to the write arbiter as
transfers shaped by the unit's static *write profile*.

A concrete unit subclasses :class:`SmartMemoryUnit`, sets ``core_class``
to its :class:`~repro.smem.core.SmartMemoryCore` subclass and
``write_profile`` to its variety → (dst1, dst2, flags) table — the same
table the decoder consults for its lock sets, which is what keeps the
adapter's transfers and the dispatcher's locks in exact agreement.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Optional

from ..fu.base import FunctionalUnit
from ..fu.protocol import Transfer
from ..hdl import Component


class AdapterState(IntEnum):
    IDLE = 0
    RUN = 1
    COLLECT = 2   # capture the core's freshly latched outputs
    SEND = 3


class SmartMemoryUnit(FunctionalUnit):
    """A smart-memory core wrapped in the framework's unit protocol."""

    #: the SmartMemoryCore subclass this unit instantiates
    core_class: Optional[type] = None
    #: consulted by the functional unit table (decoder lock sets);
    #: subclasses assign ``staticmethod(<their write_profile>)``
    write_profile = None

    def __init__(
        self,
        name: str,
        word_bits: int,
        parent: Optional[Component] = None,
        n_cells: int = 64,
        array_kind: str = "vector",
    ):
        super().__init__(name, word_bits, parent)
        self._n_cells = n_cells
        self._array_kind = array_kind
        self.core = self._make_core()
        self._state = self.reg("state", 2, AdapterState.IDLE)
        self._sample = self.reg("sample", None, reset=None)
        self._pending = self.reg("pending", None, reset=())
        self.operations = 0

        @self.comb
        def _drive() -> None:
            state = self._state.value
            self.dp.idle.set(1 if state == AdapterState.IDLE else 0)
            # forward a dispatch straight into the core's start interface
            dispatching = bool(self.dp.dispatch.value and state == AdapterState.IDLE)
            self.core.start.set(1 if dispatching else 0)
            if dispatching:
                self.core.variety.set(self.dp.variety.value)
                self.core.op_a.set(self.dp.op_a.value)
                self.core.op_b.set(self.dp.op_b.value)
            pending = self._pending.value
            if state == AdapterState.SEND and pending:
                self.rp.present(pending[0])
            else:
                self.rp.present(None)

        @self.seq
        def _tick() -> None:
            state = self._state.value
            if state == AdapterState.IDLE:
                if self.dp.dispatch.value:
                    self._sample.nxt = self.dp.sample()
                    self._state.nxt = AdapterState.RUN
                    self.operations += 1
            elif state == AdapterState.RUN:
                if self.core.completed.value:
                    self._state.nxt = AdapterState.COLLECT
            elif state == AdapterState.COLLECT:
                # The core latched its outputs at the completion edge; they
                # are stable .value reads now.
                transfers = self._build_transfers()
                if transfers:
                    self._pending.nxt = transfers
                    self._state.nxt = AdapterState.SEND
                else:
                    self._state.nxt = AdapterState.IDLE
            elif state == AdapterState.SEND:
                if self.rp.ack.value:
                    rest = self._pending.value[1:]
                    self._pending.nxt = rest
                    if not rest:
                        self._state.nxt = AdapterState.IDLE

        # Any non-idle adapter state does real work every edge (the core's
        # own processes track the operation); only a truly idle unit has no
        # horizon.
        self.wheel(
            lambda: None if (self._state.value == AdapterState.IDLE
                             and not self.dp.dispatch.value) else 0,
            lambda n: None,
        )

    def _make_core(self):
        cls = self.core_class
        if cls is None:
            raise NotImplementedError(f"{type(self).__name__} sets no core_class")
        return cls("core", self._n_cells, self.word_bits,
                   array_kind=self._array_kind, parent=self)

    def _build_transfers(self) -> tuple[Transfer, ...]:
        """Map the buffered core outputs onto write-arbiter transfers.

        Mirrors the unit's ``write_profile``, which is also what the
        decoder locked for this instruction.
        """
        sample = self._sample.value
        ctrl = self.core.controller
        w1, w2, wf = self.write_profile(sample.variety)
        transfers: list[Transfer] = []
        flag_reg = sample.dst_flag if wf else None
        flag_value = ctrl.out_flags.value if wf else 0
        if w1:
            transfers.append(
                Transfer(sample.dst1, ctrl.out_data1.value, flag_reg, flag_value,
                         last=not w2)
            )
        elif wf:
            transfers.append(Transfer(None, 0, flag_reg, flag_value, last=not w2))
        if w2:
            transfers.append(Transfer(sample.dst2, ctrl.out_data2.value, None, 0, last=True))
        return tuple(transfers)

"""The smart-memory cell contract, stated once and checkable at runtime.

The kit's base classes (:mod:`repro.smem.array`) carry the machinery; this
module states what an array implementer owes the rest of the stack, and
provides :func:`verify_array_contract` — the structural check the
conformance suite (``tests/properties``) runs against every implementer
before exercising behavioural equivalence.

The obligations
---------------

1. **Per-cell state + step function.**  Cell state is a frozen dataclass;
   the transition is pure.  The scalar step (structural cells) must return
   the *identical object* when a command leaves the cell unchanged — that
   identity is what lets an idle column's pure-seq ticks stage nothing and
   go dormant under the event kernel.

2. **Array-level broadcast/collect.**  The array exposes a ``cmd`` input
   port whose do-nothing code ``NOP_CMD`` encodes as 0, plus whatever
   broadcast/load buses its command set needs; all cells observe the same
   buses each cycle (SIMD).  Collection happens only through fold outputs,
   never by the controller peeking at cell state.

3. **Fold-tree reduction.**  Every output port is a combinational fold of
   per-cell state under associative operators (:mod:`repro.smem.tree`), so
   the hardware cost model stays ⌈log₂ n⌉ gate levels per output.

4. **Wheel hook.**  A NOP edge must leave cell state bit-identical; the
   base classes then certify idle cycles as skippable (horizon ``None``)
   and veto fast-forward (horizon 0) whenever a real command is on the
   bus.  An implementer whose NOP has side effects cannot ride the kit.

5. **``__compile_vector__``.**  Both array shapes publish a
   :class:`~repro.smem.array.SmartArrayExecutor` satisfying
   :class:`repro.hdl.compile.vector.VectorExecutor`, absorbing the
   column's interpreted processes so the compiled backend runs the whole
   array as a handful of NumPy operations per cycle — with zero
   interpreted fallbacks on a bare core (controller included).
"""

from __future__ import annotations

from .array import SmartArrayExecutor, StructuralSmartArray, VectorSmartArray

__all__ = ["verify_array_contract"]


def verify_array_contract(array) -> list[str]:
    """Structurally check one array instance; returns violation messages.

    An empty list means the instance satisfies every checkable obligation
    (behavioural equivalence is the conformance suite's job, not this
    function's).
    """
    # Imported here, not at module top: repro.hdl.compile transitively
    # imports repro.analysis (and through it repro.xisort), which itself
    # loads this package — a cycle at import time, fine at call time.
    from ..hdl.compile.vector import VectorExecutor

    problems: list[str] = []
    if not isinstance(array, (VectorSmartArray, StructuralSmartArray)):
        problems.append("array must subclass VectorSmartArray or StructuralSmartArray")
        return problems

    # obligation 2: command port and a zero-encoded NOP
    cmd = getattr(array, "cmd", None)
    if cmd is None or not hasattr(cmd, "value"):
        problems.append("array declares no 'cmd' input port")
    if int(array.NOP_CMD) != 0:
        problems.append(f"NOP_CMD must encode as 0, got {int(array.NOP_CMD)}")

    # obligation 4: vector arrays carry an explicit wheel hook (their fold
    # is always=True, invisible to read tracking); structural arrays
    # discharge it through their pure-seq cells, which certify by staging
    # nothing on NOP edges.
    if isinstance(array, VectorSmartArray) and not array.wheel_hooks:
        problems.append("array registered no wheel hook")
    if isinstance(array, StructuralSmartArray):
        for cell in array.cells:
            if cell._next_state() is not cell._state.value:
                problems.append(
                    f"{cell.path}: NOP step must return the identical state object"
                )
                break

    # obligation 5: the executor satisfies the VectorExecutor protocol
    executor = array.__compile_vector__()
    if not isinstance(executor, SmartArrayExecutor):
        problems.append("__compile_vector__ must return a SmartArrayExecutor")
        return problems
    if not isinstance(executor, VectorExecutor):
        problems.append("executor does not satisfy the VectorExecutor protocol")
    if executor.n_cells != array.n_cells:
        problems.append(
            f"executor covers {executor.n_cells} cells, array has {array.n_cells}"
        )
    if not executor.absorbed:
        problems.append("executor absorbs no processes")

    # obligation 1/3: vector state exposes the required inspection surface
    vec = executor.vec
    for attr in ("n", "clear", "state_of"):
        if not hasattr(vec, attr):
            problems.append(f"vector state lacks {attr!r}")
    return problems

"""Cycle-accurate performance measurement helpers.

Shared by the benchmark harness: each helper builds (or accepts) a system,
drives a defined workload, and returns cycle counts measured on the
simulated hardware — the coprocessor-side halves of the paper's
comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..config import FrameworkConfig
from ..fu.registry import default_registry
from ..isa import instructions as ins
from ..isa.opcodes import ArithOp, Opcode
from ..messages.channel import INTEGRATED, ChannelSpec
from ..host.driver import CoprocessorDriver
from ..system.builder import BuiltSystem, build_system
from ..xisort import DirectXiSortMachine, xisort_factory


def make_system(
    config: Optional[FrameworkConfig] = None,
    channel: ChannelSpec = INTEGRATED,
    xisort_cells: int = 0,
    pipelined: bool = False,
    scheduler: str = "event",
    wheel: bool = True,
    backend: Optional[str] = None,
) -> BuiltSystem:
    """Standard benchmark system: case-study units (+ optional ξ-sort)."""
    cfg = config if config is not None else FrameworkConfig(pipelined_units=pipelined)
    registry = default_registry(pipelined=cfg.pipelined_units)
    if xisort_cells:
        registry.register(Opcode.XISORT, xisort_factory(n_cells=xisort_cells))
    return build_system(cfg, channel=channel, registry=registry,
                        scheduler=scheduler, wheel=wheel, backend=backend)


@dataclass
class IssueRateResult:
    """Result of a back-to-back issue-rate measurement."""

    instructions: int
    cycles: int

    @property
    def cycles_per_instruction(self) -> float:
        return self.cycles / self.instructions


def measure_issue_rate(
    system: BuiltSystem,
    n_instructions: int = 64,
    op: ArithOp = ArithOp.ADD,
    independent: bool = True,
) -> IssueRateResult:
    """Stream dependent-free (or chained) arithmetic ops; count cycles.

    Measures steady-state throughput of the unit + arbiter + scoreboard:
    the thesis's "able to accept an instruction every second clock cycle"
    claim (C2).  The measurement brackets only the execution phase — the
    operands are preloaded, and the clock stops when the final result has
    been written back (FENCE retires).
    """
    driver = CoprocessorDriver(system)
    driver.write_reg(1, 1111)
    driver.write_reg(2, 2222)
    driver.run_until_quiet()
    start = driver.cycles
    for i in range(n_instructions):
        if independent:
            dst = 3 + (i % 4)           # rotate over a few destinations
            driver.execute(ins.add(dst, 1, 2) if op == ArithOp.ADD
                           else ins.dispatch(Opcode.ARITH, int(op), dst1=dst, src1=1, src2=2))
        else:
            driver.execute(ins.add(3, 3, 2))  # serial dependency chain on r3
    driver.execute(ins.fence())
    driver.run_until_quiet()
    return IssueRateResult(n_instructions, driver.cycles - start)


@dataclass
class XiStepCosts:
    """Fixed-cycle costs of the ξ-sort machine's primitive steps."""

    n_cells: int
    load_cycles: int
    split_cycles: int
    find_pivot_cycles: int
    read_at_cycles: int


def measure_xisort_step_costs(n_cells: int, n_loaded: Optional[int] = None) -> XiStepCosts:
    """Measure each microprogram's cycle cost on a bare core (claim C3)."""
    import random

    n_loaded = n_loaded if n_loaded is not None else max(2, n_cells // 2)
    machine = DirectXiSortMachine(n_cells)
    values = random.Random(42).sample(range(1_000_000), n_loaded)
    machine.reset_array()
    t0 = machine.cycles
    machine.op(0x01, values[0], n_loaded - 1)  # XI_LOAD
    load_cycles = machine.cycles - t0
    for v in values[1:]:
        machine.op(0x01, v, n_loaded - 1)
    t0 = machine.cycles
    pivot = machine.find_pivot()
    find_cycles = machine.cycles - t0
    assert pivot is not None
    t0 = machine.cycles
    machine.split(*pivot)
    split_cycles = machine.cycles - t0
    t0 = machine.cycles
    machine.read_at(0)
    read_cycles = machine.cycles - t0
    return XiStepCosts(
        n_cells=n_cells,
        load_cycles=load_cycles,
        split_cycles=split_cycles,
        find_pivot_cycles=find_cycles,
        read_at_cycles=read_cycles,
    )


def measure_end_to_end_sort(
    n: int, n_cells: int, channel: ChannelSpec = INTEGRATED, seed: int = 11
) -> tuple[int, list[int]]:
    """Full-framework χ-sort of n values; returns (cycles, sorted values)."""
    import random

    from ..host.session import Session
    from ..xisort import XiSortAccelerator

    system = make_system(channel=channel, xisort_cells=n_cells)
    session = Session(system)
    acc = XiSortAccelerator(session)
    values = random.Random(seed).sample(range(1 << 20), n)
    start = session.driver.cycles
    out = acc.sort(values)
    cycles = session.driver.cycles - start
    assert out == sorted(values)
    return cycles, out


def roundtrip_cycles(system: BuiltSystem) -> int:
    """One write+GET round trip — the link-latency floor (claim C1)."""
    driver = CoprocessorDriver(system)
    driver.write_reg(1, 42)
    start = driver.cycles
    value = driver.read_reg(1)
    assert value == 42
    return driver.cycles - start

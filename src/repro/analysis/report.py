"""Plain-text table rendering for benchmark output.

The benchmark harness prints paper-style series (rows of n vs cycles vs
baseline ops) through these helpers so every bench emits a uniform,
greppable report into ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
) -> str:
    """Fixed-width table with a rule under the header."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)


def print_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> None:
    print()
    print(format_table(headers, rows, title))
    print()

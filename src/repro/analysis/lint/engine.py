"""Lint engine: rule registry, suppression matching, report assembly.

Rules are small objects with an ``id``, a default :class:`Severity` and a
``check(design)`` generator; they register themselves into a module-level
registry at import time via :func:`register_rule`, so adding a rule family
is just adding a module.  :class:`Linter` elaborates the design database
once (see :mod:`.model`) and feeds it to every selected rule, then filters
the findings through the per-component suppressions declared with
:meth:`~repro.hdl.component.Component.lint_suppress`.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Sequence

from ...hdl.component import Component
from .diagnostics import Diagnostic, LintReport, Severity, Suppression
from .model import DesignInfo, build_design


class Rule:
    """One design-rule check.

    Subclasses define class attributes ``id``, ``severity``, ``title`` and
    implement :meth:`check`, yielding :class:`Diagnostic` objects.  A rule
    must *under-approximate*: when the analysis cannot prove a fact about a
    process (opaque calls, unreadable source), it stays silent rather than
    guessing — zero false positives on clean designs is the contract that
    lets ``build_system(lint="error")`` be the default posture in CI.
    """

    id: str = ""
    severity: Severity = Severity.WARNING
    title: str = ""

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(
        self,
        component: str,
        message: str,
        *,
        signal: Optional[str] = None,
        hint: Optional[str] = None,
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        return Diagnostic(
            rule_id=self.id,
            severity=severity or self.severity,
            component=component,
            message=message,
            signal=signal,
            hint=hint,
        )


#: rule id → Rule instance (import-time population; see rules_*.py)
RULES: dict[str, Rule] = {}


def register_rule(cls: type) -> type:
    """Class decorator adding a rule to the global registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULES[rule.id] = rule
    return cls


def all_rules() -> dict[str, Rule]:
    """The full registry, importing the built-in rule modules on first use."""
    from . import (  # noqa: F401
        rules_compile,
        rules_contract,
        rules_dataflow,
        rules_faults,
        rules_futable,
        rules_graph,
        rules_issue,
        rules_protocol,
    )
    return dict(RULES)


class _SuppressionIndex:
    """Resolves which declared suppression (if any) waives a diagnostic."""

    def __init__(self, design: DesignInfo):
        # entries: (component, rule_id, reason, signal_name, subtree)
        self._entries: list[tuple[Component, str, str, Optional[str], bool]] = []
        for comp in design.components:
            for rule_id, reason, signal, subtree in comp.lint_suppressions:
                self._entries.append((comp, rule_id, reason, signal, subtree))

    def match(self, diag: Diagnostic) -> Optional[Suppression]:
        for comp, rule_id, reason, signal, subtree in self._entries:
            if rule_id != "*" and rule_id != diag.rule_id:
                continue
            if not _path_covers(comp.path, diag.component, subtree):
                continue
            if signal is not None:
                if diag.signal is None:
                    continue
                if diag.signal != f"{comp.path}.{signal}":
                    continue
            return Suppression(
                rule_id=diag.rule_id,
                component=diag.component,
                reason=reason,
                signal=diag.signal,
            )
        return None


def _path_covers(supp_path: str, diag_path: str, subtree: bool) -> bool:
    if supp_path == diag_path:
        return True
    return subtree and diag_path.startswith(supp_path + ".")


class Linter:
    """Run a rule set over an elaborated design.

    ``rules`` selects by id (default: every registered rule); ``probe``
    controls whether combinational processes are executed once for precise
    driver/reader attribution (on by default — safe on settled designs and
    on bare component trees alike).
    """

    def __init__(
        self,
        rules: Optional[Sequence[str]] = None,
        *,
        probe: bool = True,
    ):
        registry = all_rules()
        if rules is None:
            selected = registry
        else:
            import fnmatch

            selected = {}
            unknown = []
            for pat in rules:
                if any(ch in pat for ch in "*?["):
                    hits = fnmatch.filter(sorted(registry), pat)
                    if not hits:
                        unknown.append(pat)
                    for rid in hits:
                        selected[rid] = registry[rid]
                elif pat in registry:
                    selected[pat] = registry[pat]
                else:
                    unknown.append(pat)
            if unknown:
                known = ", ".join(sorted(registry))
                raise KeyError(f"unknown lint rule(s) {unknown}; known: {known}")
        self.rules = selected
        self.probe = probe

    def lint(self, target: Any, sim: Optional[Any] = None) -> LintReport:
        """Lint ``target`` and return the full report.

        ``target`` may be a :class:`~repro.hdl.component.Component` tree, a
        :class:`~repro.hdl.sim.Simulator` (lints its top, merging discovered
        dependencies), or any object exposing ``.soc``/``.sim`` the way the
        system builder's products do.
        """
        top, sim = _resolve_target(target, sim)
        design = build_design(top, sim=sim, probe=self.probe)
        return self.lint_design(design)

    def lint_design(self, design: DesignInfo) -> LintReport:
        report = LintReport(design=design.top.path,
                            rules_run=tuple(sorted(self.rules)))
        suppressions = _SuppressionIndex(design)
        for rule_id in sorted(self.rules):
            for diag in self.rules[rule_id].check(design):
                waived = suppressions.match(diag)
                if waived is not None:
                    report.suppressed.append(waived)
                else:
                    report.diagnostics.append(diag)
        report.diagnostics.sort(
            key=lambda d: (-d.severity.rank, d.rule_id, d.component, d.signal or "")
        )
        return report


def _resolve_target(target: Any, sim: Optional[Any]) -> tuple[Component, Any]:
    if isinstance(target, Component):
        return target, sim
    # Simulator-like: has .top Component
    top = getattr(target, "top", None)
    if isinstance(top, Component):
        return top, target if sim is None else sim
    # Built system-like: has .soc and .sim
    soc = getattr(target, "soc", None)
    if isinstance(soc, Component):
        return soc, sim if sim is not None else getattr(target, "sim", None)
    raise TypeError(
        f"cannot lint {type(target).__name__!r}: expected a Component, "
        "Simulator, or built system"
    )


def lint(
    target: Any,
    *,
    rules: Optional[Sequence[str]] = None,
    sim: Optional[Any] = None,
    probe: bool = True,
) -> LintReport:
    """One-shot convenience wrapper around :class:`Linter`."""
    return Linter(rules, probe=probe).lint(target, sim=sim)


def iter_rule_catalog() -> Iterable[tuple[str, Severity, str]]:
    """(id, severity, title) for every registered rule — docs/CLI listing."""
    for rid, rule in sorted(all_rules().items()):
        yield rid, rule.severity, rule.title

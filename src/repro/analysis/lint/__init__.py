"""Elaboration-time design-rule checker (lint) for the simulation kernel.

A static analyzer over the *elaborated* component/signal graph — no
simulation required.  It exists because the kernel's two central
performance features are trust-based:

* the event-driven settle scheduler re-runs a combinational process only
  when a signal it was *observed* reading changes;
* the edge scheduler puts ``seq(pure=True)`` processes to sleep, and the
  time wheel skips whole cycle ranges, on the strength of purity and
  wheel-hook declarations.

A dishonest declaration doesn't crash — it silently desynchronises the
fast kernels from the exhaustive reference.  The lint rules catch those
contract violations, plus the classic structural design-rule checks
(combinational loops, multiple drivers, undriven signals, width
truncation) and stream handshake discipline.

Three entry points:

* CLI — ``python -m repro.analysis.lint [target ...] [--json]``;
* build-time — ``build_system(lint="warn"|"error"|"off")`` (default
  ``warn``);
* tests — :func:`repro.analysis.lint.testing.assert_lint_clean`.

See docs/ARCHITECTURE.md ("Design-rule checking") for the rule catalog.
"""

from .diagnostics import (
    Diagnostic,
    LintFailure,
    LintReport,
    Severity,
    Suppression,
    merge_reports,
)
from .engine import RULES, Linter, Rule, all_rules, iter_rule_catalog, lint, register_rule
from .model import DesignInfo, ProcRecord, build_design

__all__ = [
    "DesignInfo",
    "Diagnostic",
    "LintFailure",
    "LintReport",
    "Linter",
    "ProcRecord",
    "RULES",
    "Rule",
    "Severity",
    "Suppression",
    "all_rules",
    "build_design",
    "iter_rule_catalog",
    "lint",
    "merge_reports",
    "register_rule",
]

"""Kernel-contract rules: declarations the event scheduler trusts blindly.

The event-driven kernel (see docs/ARCHITECTURE.md, "the discovery-pass
contract") schedules from *observed* behaviour: a combinational process
re-runs only when a signal it was seen reading changes; a ``seq(pure=True)``
process is put to sleep after an edge on which it staged nothing.  Both
optimisations are sound only if the declarations are honest — a violation
does not crash, it silently desynchronises the fast kernels from the
exhaustive reference.  These rules find the violations statically.

Every rule here under-approximates: a process whose body the AST pass could
not fully resolve (opaque calls, missing source) is given the benefit of
the doubt rather than flagged.
"""

from __future__ import annotations

from typing import Iterator

from ...hdl.signal import Reg, Signal
from .diagnostics import Diagnostic, Severity
from .engine import Rule, register_rule
from .model import DesignInfo, ProcRecord


def _hidden_reads_of_mutable(rec: ProcRecord, design: DesignInfo) -> list:
    """(source text, attr) for hidden loads of state some process mutates."""
    out = []
    for key, (text, _owner) in sorted(rec.hidden_loads.items(),
                                      key=lambda kv: kv[1][0]):
        if key in design.mutated_attrs:
            out.append((text, key[1]))
    return out


@register_rule
class HiddenCombReadRule(Rule):
    """A tracked comb process reads mutable Python state.

    The scheduler's sensitivity discovery only sees ``Signal.value`` reads.
    A combinational process whose output also depends on a plain attribute
    that *some* process mutates will not be re-run when that attribute
    changes — the fast kernel settles to a stale value the exhaustive
    kernel would have refreshed.  Declaring the process ``always=True``
    pins it to every settle iteration, restoring correctness.
    """

    id = "contract.hidden-comb-read"
    severity = Severity.ERROR
    title = "comb process reads mutated hidden state without always=True"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        for rec in design.comb:
            if rec.always or rec.parse_failed:
                continue
            hidden = _hidden_reads_of_mutable(rec, design)
            if not hidden:
                continue
            texts = ", ".join(sorted({t for t, _ in hidden}))
            yield self.diag(
                rec.comp.path,
                f"{rec.label} reads mutable hidden state ({texts}) invisible "
                "to sensitivity discovery — the event kernel will not re-run "
                "it when that state changes",
                hint="register it with comb(always=True), or carry the state "
                     "in a Signal/Reg so changes are tracked",
            )


@register_rule
class ImpurePureSeqRule(Rule):
    """A ``seq(pure=True)`` process touches hidden Python state.

    Purity is the licence for the edge scheduler to disarm the process
    after a no-stage edge.  Mutating an attribute (a counter, a queue)
    means dormant edges skip real work; reading mutated state means the
    process can be left asleep while its real inputs change.  Either way
    the fast kernel and the exhaustive kernel diverge.
    """

    id = "contract.impure-pure-seq"
    severity = Severity.ERROR
    title = "seq(pure=True) process reads or mutates hidden state"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        for rec in design.seq:
            if not rec.pure or rec.parse_failed:
                continue
            if rec.hidden_stores or rec.nonlocal_stores:
                what = sorted(
                    {attr for (_oid, attr) in rec.hidden_stores}
                    | set(rec.nonlocal_stores)
                )
                yield self.diag(
                    rec.comp.path,
                    f"{rec.label} is declared pure but mutates hidden state "
                    f"({', '.join(what)}) — edges skipped while dormant lose "
                    "that work",
                    hint="drop pure=True, or move the state into a Reg so "
                         "every update is a staged, tracked write",
                )
                continue
            hidden = _hidden_reads_of_mutable(rec, design)
            if hidden:
                texts = ", ".join(sorted({t for t, _ in hidden}))
                yield self.diag(
                    rec.comp.path,
                    f"{rec.label} is declared pure but reads mutable hidden "
                    f"state ({texts}) — a change there cannot re-arm it, so "
                    "it may sleep through edges that matter",
                    hint="drop pure=True, or carry the state in a Signal/Reg",
                )


@register_rule
class UntrackedReadRule(Rule):
    """A tracked process bypasses read tracking via ``sig._value``.

    Private-slot access skips the ``_READS`` hook, so the scheduler never
    learns the dependency.  In untracked contexts (``always`` comb procs,
    impure seq procs) it is merely rude; in tracked ones it is a
    scheduling bug identical to a hidden-state read.
    """

    id = "contract.untracked-read"
    severity = Severity.ERROR
    title = "tracked process reads sig._value / sig._staged directly"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        for rec in design.procs:
            tracked = (rec.kind == "comb" and not rec.always) or \
                      (rec.kind == "seq" and rec.pure)
            if not tracked or rec.parse_failed:
                continue
            for (oid, attr), (text, owner) in sorted(rec.hidden_loads.items(),
                                                     key=lambda kv: kv[1][0]):
                if attr in ("_value", "_staged") and isinstance(owner, Signal):
                    yield self.diag(
                        rec.comp.path,
                        f"{rec.label} reads {text} — private access bypasses "
                        "sensitivity tracking, the scheduler cannot see this "
                        "dependency",
                        signal=owner.name,
                        hint="read .value (or .nxt for a staged register) "
                             "through the public API",
                    )


@register_rule
class WarpInProcRule(Rule):
    """``Signal.warp()`` called from inside a process.

    Warp deliberately skips change notification; it is reserved for
    time-wheel ``skip`` hooks batch-aging private counters between cycles.
    From inside a settle or edge phase it corrupts the fixpoint: readers
    are never re-evaluated against the new value.
    """

    id = "contract.warp-in-proc"
    severity = Severity.ERROR
    title = "warp() inside a process skips change notification"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        yield from _site_kind_diags(
            self, design, "warp",
            lambda rec: True,
            "calls warp() on {sig} — no reader is notified of the change, "
            "breaking the settled fixpoint",
            "warp is for wheel skip hooks only; use set() (comb) or "
            "stage()/.nxt (seq) inside processes",
        )


@register_rule
class ForceInProcRule(Rule):
    """``Signal.force()`` called from inside a process.

    Force bypasses the dirty flag and assumes a complete fanout map (it
    runs between cycles, from testbench/host code).  Mid-process it can
    drop wake-ups for first-time readers exactly like an unsynchronised
    write in real hardware.
    """

    id = "contract.force-in-proc"
    severity = Severity.ERROR
    title = "force() inside a process bypasses dirty tracking"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        yield from _site_kind_diags(
            self, design, "force",
            lambda rec: True,
            "calls force() on {sig} — the settle loop's dirty flag is not "
            "raised, the write can be lost by the event kernel",
            "processes must use set() / stage(); force() belongs to reset "
            "hooks and host-side code between cycles",
        )


def _site_kind_diags(rule, design, kind, want, message, hint):
    for rec in design.procs:
        for site in rec.sites:
            if site.kind != kind or not want(rec):
                continue
            for tgt in site.targets:
                sig_name = tgt.name if isinstance(tgt, Signal) else "?"
                yield rule.diag(
                    rec.comp.path,
                    f"{rec.label} " + message.format(sig=sig_name) +
                    f" (line {site.line})",
                    signal=sig_name if isinstance(tgt, Signal) else None,
                    hint=hint,
                )


@register_rule
class CombDrivesRegRule(Rule):
    """A combinational process writes the sequential domain."""

    id = "contract.comb-drives-reg"
    severity = Severity.ERROR
    title = "comb process stages or sets a Reg"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        for rec in design.comb:
            offenders = sorted(
                {s for s in (rec.stages | rec.writes) if isinstance(s, Reg)},
                key=lambda s: s.name,
            )
            for reg in offenders:
                yield self.diag(
                    rec.comp.path,
                    f"{rec.label} writes register {reg.name} from the settle "
                    "phase — register updates belong to sequential processes "
                    "at the clock edge",
                    signal=reg.name,
                    hint="move the write into a seq process, or model the "
                         "net as a plain Signal if it is combinational",
                )


@register_rule
class SetInSeqRule(Rule):
    """A sequential process drives a plain Signal with ``set()``.

    Settle has already finished when the edge phase runs: the write is
    invisible to combinational fanout until the *next* cycle's settle, and
    the exhaustive and event kernels order it differently.  State crossing
    an edge must go through a Reg.
    """

    id = "contract.set-in-seq"
    severity = Severity.ERROR
    title = "seq process drives a combinational signal"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        for rec in design.seq:
            for site in rec.sites:
                if site.kind != "set":
                    continue
                for tgt in site.targets:
                    if isinstance(tgt, Reg) or not isinstance(tgt, Signal):
                        continue
                    yield self.diag(
                        rec.comp.path,
                        f"{rec.label} set()s combinational signal {tgt.name} "
                        f"at the clock edge (line {site.line}) — the value "
                        "lands mid-cycle, unordered against settle",
                        signal=tgt.name,
                        hint="make the target a Reg and stage it, or compute "
                             "it combinationally from registered state",
                    )


@register_rule
class WheelMissingRule(Rule):
    """An impure seq process without a time-wheel hook blocks fast-forward.

    Impure sequential processes never disarm (the scheduler must run them
    every edge), so a single such component without a ``wheel`` hook pins
    the whole design to cycle-by-cycle stepping: the time wheel's skip scan
    finds it armed and vetoes every jump.  Components doing per-edge hidden
    work should either register ``wheel(horizon, skip)`` hooks describing
    their pure-aging windows, or become pure.
    """

    id = "contract.wheel-missing"
    severity = Severity.WARNING
    title = "impure seq process without wheel hooks blocks fast-forward"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        by_comp: dict = {}
        for rec in design.seq:
            if not rec.pure and not rec.wheeled:
                by_comp.setdefault(rec.comp.path, []).append(rec.label)
        for comp_path in sorted(by_comp):
            labels = sorted(by_comp[comp_path])
            yield self.diag(
                comp_path,
                f"impure seq process(es) {', '.join(labels)} stay armed on "
                "every edge and the component registers no wheel hooks — "
                "time-wheel fast-forward is vetoed design-wide while it runs",
                hint="add component.wheel(horizon, skip) describing the "
                     "pure-aging window, declare the process pure=True if it "
                     "qualifies, or suppress if fast-forward is irrelevant",
            )

"""The lint design database: one elaborated view of a component tree.

:func:`build_design` walks a component hierarchy and produces a
:class:`DesignInfo` every rule operates on, combining three evidence
sources:

* the **AST pass** (:mod:`.astpass`) — static, sees every branch, knows
  *which* write depends on *what*;
* the **probe pass** — each combinational process is executed once with the
  kernel's read/write tracking installed, attributing precise driver/reader
  sets even where source is unavailable or control flow defeats the AST
  resolver.  Signal values, staged registers and the kernel dirty flag are
  snapshotted and restored around the probe, so linting a live design is
  side-effect free.  Sequential processes are **never** executed (impure
  ones own real state — running them out of schedule would corrupt it);
* optionally, a live simulator's **discovered dependencies**
  (:meth:`~repro.hdl.sim.Simulator.discovered_dependencies`) — the ground
  truth the event kernel actually schedules from.

Rules then consume plain maps (drivers, readers, per-site edges) instead of
re-deriving facts, which keeps each rule a few dozen lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ...hdl import signal as _signal_mod
from ...hdl.component import Component
from ...hdl.components import Stream
from ...hdl.signal import Reg, Signal
from .astpass import ResolvedWrite, resolve


@dataclass
class ProcRecord:
    """Everything the rules know about one process."""

    fn: Callable[[], None]
    comp: Component
    kind: str  # "comb" | "seq"
    index: int  # declaration order within the design (stable diagnostics)
    always: bool = False  # declared comb(always=True)
    pure: bool = False  # declared seq(pure=True)
    wheeled: bool = False  # owning component registered wheel hooks
    #: signals read (probe ∪ AST ∪ kernel discovery)
    reads: set = field(default_factory=set)
    #: plain-`set()` targets (probe ∪ AST)
    writes: set = field(default_factory=set)
    #: registers staged (AST; probe write of a Reg also lands here)
    stages: set = field(default_factory=set)
    #: resolved AST write sites, with per-site dependency signals
    sites: list = field(default_factory=list)
    #: (id(owner), attr) → (source text, owner) non-signal attribute loads
    hidden_loads: dict = field(default_factory=dict)
    #: (id(owner), attr) → owner attribute stores / container mutations
    hidden_stores: dict = field(default_factory=dict)
    nonlocal_stores: set = field(default_factory=set)
    streams_fired: set = field(default_factory=set)
    #: (line, resolved test tree) for every modelable ``if`` guard
    branches: list = field(default_factory=list)
    #: static analysis confidence flags
    unknown_calls: bool = False
    opaque_reads: bool = False
    opaque_writes: bool = False
    parse_failed: bool = False
    probed: bool = False
    probe_error: Optional[str] = None

    @property
    def label(self) -> str:
        name = getattr(self.fn, "__name__", "<proc>")
        return f"{self.comp.path}:{name}"

    @property
    def read_opaque(self) -> bool:
        """True when this process may read signals the analysis missed."""
        return self.parse_failed or self.unknown_calls or self.opaque_reads

    @property
    def write_opaque(self) -> bool:
        """True when this process may write signals the analysis missed."""
        return self.parse_failed or self.unknown_calls or self.opaque_writes

    @property
    def opaque(self) -> bool:
        """True when static analysis may have missed reads or writes."""
        return self.read_opaque or self.write_opaque


@dataclass
class DesignInfo:
    """Elaborated lint view of one component tree."""

    top: Component
    components: list = field(default_factory=list)
    procs: list = field(default_factory=list)
    signals: list = field(default_factory=list)
    streams: list = field(default_factory=list)
    #: Signal → [(ProcRecord, "set" | "stage")]
    drivers: dict = field(default_factory=dict)
    #: Signal → [ProcRecord]
    readers: dict = field(default_factory=dict)
    #: (id(owner), attr) → owner for every hidden store by any process
    mutated_attrs: dict = field(default_factory=dict)
    #: was a live simulator's discovery info merged in?
    kernel_informed: bool = False

    @property
    def read_closed(self) -> bool:
        """True when *every* read in the design is attributed.

        Rules claiming "nobody reads this" (unread-drive, the protocol
        family) may only fire on a read-closed design — one process with
        unattributable reads could be the missing reader.
        """
        return not any(p.read_opaque for p in self.procs)

    @property
    def write_closed(self) -> bool:
        """True when *every* write in the design is attributed.

        Rules claiming "nobody drives this" (undriven-read) may only fire
        on a write-closed design.
        """
        return not any(p.write_opaque for p in self.procs)

    @property
    def comb(self) -> list:
        return [p for p in self.procs if p.kind == "comb"]

    @property
    def seq(self) -> list:
        return [p for p in self.procs if p.kind == "seq"]

    def drivers_of(self, sig: Signal) -> list:
        return self.drivers.get(sig, [])

    def readers_of(self, sig: Signal) -> list:
        return self.readers.get(sig, [])

    def component_at(self, path: str) -> Optional[Component]:
        for comp in self.components:
            if comp.path == path:
                return comp
        return None


def _probe_comb(design: DesignInfo) -> None:
    """Run each combinational process once under read/write tracking.

    Restores every signal value, staged register and the kernel dirty flag
    afterwards: the probe must be invisible to a live simulator.  Pending
    change-notification lists are also restored, because a probe run on a
    not-yet-settled design may legitimately change values.
    """
    saved_values = [(sig, sig._value) for sig in design.signals]
    saved_staged = [(sig, sig._staged) for sig in design.signals
                    if isinstance(sig, Reg)]
    pending_lists = {}
    for sig in design.signals:
        lst = sig._pending
        if lst is not None and id(lst) not in pending_lists:
            pending_lists[id(lst)] = (lst, list(lst))
    try:
        for rec in design.comb:
            reads: set = set()
            writes: set = set()
            with _signal_mod.tracking(reads, writes):
                try:
                    rec.fn()
                except Exception as exc:  # defective fixture / hidden deps
                    rec.probe_error = f"{type(exc).__name__}: {exc}"
            rec.probed = True
            rec.reads.update(reads)
            rec.writes.update(w for w in writes if not isinstance(w, Reg))
            # a comb process touching a Reg at all is driving the seq domain
            rec.stages.update(w for w in writes if isinstance(w, Reg))
    finally:
        for sig, value in saved_values:
            sig._value = value
        for reg, staged in saved_staged:
            reg._staged = staged
        for lst, snapshot in pending_lists.values():
            lst[:] = snapshot


def _apply_ast(rec: ProcRecord) -> None:
    res = resolve(rec.fn)
    rec.parse_failed = res.parse_failed
    rec.unknown_calls = res.unknown_calls
    rec.opaque_reads = res.opaque_reads
    rec.opaque_writes = res.opaque_writes
    rec.reads.update(res.signal_reads)
    rec.hidden_loads.update(res.hidden_loads)
    rec.hidden_stores.update(res.hidden_stores)
    rec.nonlocal_stores.update(res.nonlocal_stores)
    rec.streams_fired.update(res.streams_fired)
    rec.branches.extend(res.branches)
    for site in res.writes:
        rec.sites.append(site)
        for tgt in site.targets:
            if site.kind == "set":
                rec.writes.add(tgt)
            elif site.kind == "stage":
                rec.stages.add(tgt)


def build_design(
    top: Component,
    sim: Optional[Any] = None,
    probe: bool = True,
) -> DesignInfo:
    """Elaborate the lint database for ``top``.

    ``sim`` may be the live :class:`~repro.hdl.sim.Simulator` driving the
    design; its discovered dependency sets are merged in when available.
    ``probe=False`` skips process execution entirely (pure-static mode —
    used when linting a design mid-simulation at a non-settled point).
    """
    design = DesignInfo(top=top)
    index = 0
    for comp in top.walk():
        design.components.append(comp)
        design.signals.extend(comp.signals)
        design.streams.extend(comp.streams)
        wheeled = bool(comp.wheel_hooks)
        always_ids = set(map(id, comp.always_procs))
        pure_ids = set(map(id, comp.pure_seq_procs))
        for fn in comp.comb_procs:
            design.procs.append(
                ProcRecord(fn=fn, comp=comp, kind="comb", index=index,
                           always=id(fn) in always_ids, wheeled=wheeled)
            )
            index += 1
        for fn in comp.seq_procs:
            design.procs.append(
                ProcRecord(fn=fn, comp=comp, kind="seq", index=index,
                           pure=id(fn) in pure_ids, wheeled=wheeled)
            )
            index += 1

    for rec in design.procs:
        _apply_ast(rec)

    if probe:
        _probe_comb(design)

    if sim is not None:
        _merge_kernel_info(design, sim)

    managed = set(design.signals)
    for rec in design.procs:
        for sig in rec.reads:
            if sig in managed:
                design.readers.setdefault(sig, []).append(rec)
        for sig in rec.writes:
            if sig in managed:
                design.drivers.setdefault(sig, []).append((rec, "set"))
        for sig in rec.stages:
            if sig in managed:
                design.drivers.setdefault(sig, []).append((rec, "stage"))
        design.mutated_attrs.update(rec.hidden_stores)
    return design


def _merge_kernel_info(design: DesignInfo, sim: Any) -> None:
    info = sim.discovered_dependencies()
    if not info.get("discovered"):
        return
    by_fn = {id(rec.fn): rec for rec in design.procs}
    for entry in info["comb"]:
        rec = by_fn.get(id(entry["fn"]))
        if rec is None:
            continue
        rec.reads.update(entry["reads"])
        for sig in entry["writes"]:
            (rec.stages if isinstance(sig, Reg) else rec.writes).add(sig)
    for entry in info["seq"]:
        rec = by_fn.get(id(entry["fn"]))
        if rec is None:
            continue
        rec.reads.update(entry["reads"])
    design.kernel_informed = True


__all__ = ["DesignInfo", "ProcRecord", "ResolvedWrite", "Stream", "build_design"]

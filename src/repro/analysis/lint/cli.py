"""Command-line interface: ``python -m repro.analysis.lint``.

Targets are either **channel preset names** (``integrated``, ``fast-bus``,
``slow-prototype`` — each builds the full coprocessor system on that link)
or **paths to Python files** exposing a ``build_for_lint()`` function that
returns something lintable (a component tree, a built system, or a
simulator).  ``--all`` expands to every preset plus every example shipped
in ``examples/``.

Exit status: 0 when no finding reaches the ``--fail-on`` severity
(default ``error``), 1 when one does, 2 on usage errors.  ``--json``
switches the report to a machine-readable rendering for CI artifacts.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path
from typing import Any, List, Optional, Sequence, Tuple

from .diagnostics import LintReport, Severity
from .engine import Linter, all_rules, iter_rule_catalog

_SEVERITIES = {s.value: s for s in Severity}


def _build_preset(name: str) -> Any:
    from ...messages.channel import PRESETS
    from ...system.builder import build_system

    spec = PRESETS[name]
    # lint="off": the CLI is the lint pass; double-running would also make
    # a failing design impossible to build and report on.
    return build_system(channel=spec, lint="off")


def _load_example(path: Path) -> Any:
    spec = importlib.util.spec_from_file_location(
        f"_lint_target_{path.stem}", path
    )
    if spec is None or spec.loader is None:
        raise SystemExit(f"cannot import {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    builder = getattr(module, "build_for_lint", None)
    if builder is None:
        raise SystemExit(
            f"{path} has no build_for_lint() — lintable example modules "
            "expose one returning a component tree or built system"
        )
    return builder()


def _examples_dir() -> Optional[Path]:
    # repo layout: src/repro/analysis/lint/cli.py → repo root is parents[4]
    root = Path(__file__).resolve().parents[4]
    cand = root / "examples"
    return cand if cand.is_dir() else None


def _expand_targets(args: argparse.Namespace) -> List[Tuple[str, Any]]:
    from ...messages.channel import PRESETS

    names: List[str] = list(args.targets)
    if args.all:
        names.extend(sorted(PRESETS))
        ex_dir = _examples_dir()
        if ex_dir is not None:
            names.extend(
                str(p) for p in sorted(ex_dir.glob("*.py"))
                if p.name != "__init__.py"
            )
    if not names:
        names = sorted(PRESETS)
    targets: List[Tuple[str, Any]] = []
    for name in names:
        if name in PRESETS:
            targets.append((name, ("preset", name)))
        else:
            path = Path(name)
            if not path.exists():
                known = ", ".join(sorted(PRESETS))
                raise SystemExit(
                    f"unknown target {name!r}: not a preset ({known}) and "
                    "not a file"
                )
            targets.append((str(path), ("file", path)))
    return targets


def _lint_one(kind_arg: Tuple[str, Any], linter: Linter) -> LintReport:
    kind, arg = kind_arg
    if kind == "preset":
        built = _build_preset(arg)
        return linter.lint(built.soc, sim=built.sim)
    return linter.lint(_load_example(arg))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Elaboration-time design-rule checker for the "
                    "component graph and kernel contracts.",
    )
    parser.add_argument(
        "targets", nargs="*",
        help="channel preset names and/or paths to modules exposing "
             "build_for_lint()",
    )
    parser.add_argument(
        "--all", action="store_true",
        help="lint every channel preset and every shipped example",
    )
    parser.add_argument(
        "--rules", metavar="ID[,ID...]",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the report as JSON (one object, reports keyed by target)",
    )
    parser.add_argument(
        "--min-severity", choices=sorted(_SEVERITIES), default="info",
        help="hide findings below this severity in the text report",
    )
    parser.add_argument(
        "--fail-on", choices=("warning", "error", "never"), default="error",
        help="exit non-zero when a finding at/above this severity exists "
             "(default: error)",
    )
    parser.add_argument(
        "--no-probe", action="store_true",
        help="pure-static mode: never execute combinational processes",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rid, severity, title in iter_rule_catalog():
            print(f"{rid:28s} {severity.value:8s} {title}")
        return 0

    rule_ids = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rule_ids if r not in all_rules()]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    linter = Linter(rule_ids, probe=not args.no_probe)
    reports: List[Tuple[str, LintReport]] = []
    for label, kind_arg in _expand_targets(args):
        reports.append((label, _lint_one(kind_arg, linter)))

    if args.as_json:
        payload = {
            "targets": {label: rep.as_dict() for label, rep in reports},
            "summary": {
                "errors": sum(len(r.errors) for _, r in reports),
                "warnings": sum(len(r.warnings) for _, r in reports),
                "suppressed": sum(len(r.suppressed) for _, r in reports),
            },
        }
        print(json.dumps(payload, indent=2))
    else:
        min_sev = _SEVERITIES[args.min_severity]
        for label, rep in reports:
            print(f"== {label} ==")
            print(rep.format(min_sev))

    if args.fail_on == "never":
        return 0
    threshold = Severity.ERROR if args.fail_on == "error" else Severity.WARNING
    failed = any(rep.at_least(threshold) for _, rep in reports)
    return 1 if failed else 0

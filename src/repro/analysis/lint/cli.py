"""Command-line interface: ``python -m repro.analysis.lint``.

Targets are either **channel preset names** (``integrated``, ``fast-bus``,
``slow-prototype`` — each builds the full coprocessor system on that link)
or **paths to Python files** exposing a ``build_for_lint()`` function that
returns something lintable (a component tree, a built system, or a
simulator).  ``--all`` expands to every preset plus every example shipped
in ``examples/``.

Exit status: 0 when no finding reaches the ``--fail-on`` severity
(default ``error``), 1 when one does, 2 on usage errors.  ``--json``
switches the report to a machine-readable rendering for CI artifacts.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path
from typing import Any, List, Optional, Sequence, Tuple

from .diagnostics import LintReport, Severity
from .engine import Linter, iter_rule_catalog

_SEVERITIES = {s.value: s for s in Severity}

#: baseline file schema version (bump on key-format changes)
_BASELINE_VERSION = 1


def _finding_key(diag) -> str:
    """Stable identity of a finding across runs: rule + where it points.

    Messages are deliberately excluded — they embed values that legitimate
    refactors shift (line numbers, proven ranges) without changing *what*
    is wrong.
    """
    return f"{diag.rule_id}|{diag.component}|{diag.signal or ''}"


def _write_baseline(path: Path,
                    reports: List[Tuple[str, LintReport]]) -> None:
    payload = {
        "version": _BASELINE_VERSION,
        "findings": {
            label: sorted({_finding_key(d) for d in rep.diagnostics})
            for label, rep in reports
        },
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def _apply_baseline(path: Path,
                    reports: List[Tuple[str, LintReport]]) -> int:
    """Drop findings present in the baseline; return how many were waived.

    Unknown targets fall back to an empty baseline (every finding is new),
    so adding a preset/example to CI fails loudly instead of silently
    inheriting a waiver.
    """
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(
            f"baseline {path} does not exist — create it with "
            "--update-baseline"
        )
    if payload.get("version") != _BASELINE_VERSION:
        raise SystemExit(f"baseline {path} has an unsupported version")
    known = payload.get("findings", {})
    waived = 0
    for label, rep in reports:
        allowed = set(known.get(label, ()))
        kept = [d for d in rep.diagnostics if _finding_key(d) not in allowed]
        waived += len(rep.diagnostics) - len(kept)
        rep.diagnostics[:] = kept
    return waived


def _build_preset(name: str) -> Any:
    from ...messages.channel import PRESETS
    from ...system.builder import build_system

    spec = PRESETS[name]
    # lint="off": the CLI is the lint pass; double-running would also make
    # a failing design impossible to build and report on.
    return build_system(channel=spec, lint="off")


def _load_example(path: Path) -> Any:
    spec = importlib.util.spec_from_file_location(
        f"_lint_target_{path.stem}", path
    )
    if spec is None or spec.loader is None:
        raise SystemExit(f"cannot import {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    builder = getattr(module, "build_for_lint", None)
    if builder is None:
        raise SystemExit(
            f"{path} has no build_for_lint() — lintable example modules "
            "expose one returning a component tree or built system"
        )
    return builder()


def _examples_dir() -> Optional[Path]:
    # repo layout: src/repro/analysis/lint/cli.py → repo root is parents[4]
    root = Path(__file__).resolve().parents[4]
    cand = root / "examples"
    return cand if cand.is_dir() else None


def _expand_targets(args: argparse.Namespace) -> List[Tuple[str, Any]]:
    from ...messages.channel import PRESETS

    names: List[str] = list(args.targets)
    if args.all:
        names.extend(sorted(PRESETS))
        ex_dir = _examples_dir()
        if ex_dir is not None:
            # repo-relative labels so a baseline written on one checkout
            # matches on another (CI runners, worktrees)
            root = ex_dir.parent
            names.extend(
                str(p.relative_to(root)) for p in sorted(ex_dir.glob("*.py"))
                if p.name != "__init__.py"
            )
    if not names:
        names = sorted(PRESETS)
    targets: List[Tuple[str, Any]] = []
    for name in names:
        if name in PRESETS:
            targets.append((name, ("preset", name)))
        else:
            path = Path(name)
            if not path.exists():
                # relative labels from the --all expansion resolve against
                # the repo root regardless of the invocation directory
                ex_dir = _examples_dir()
                alt = None if ex_dir is None else ex_dir.parent / path
                if alt is not None and alt.exists():
                    path = alt
                else:
                    known = ", ".join(sorted(PRESETS))
                    raise SystemExit(
                        f"unknown target {name!r}: not a preset ({known}) "
                        "and not a file"
                    )
            targets.append((name, ("file", path)))
    return targets


def _lint_one(kind_arg: Tuple[str, Any], linter: Linter) -> LintReport:
    kind, arg = kind_arg
    if kind == "preset":
        built = _build_preset(arg)
        return linter.lint(built.soc, sim=built.sim)
    return linter.lint(_load_example(arg))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Elaboration-time design-rule checker for the "
                    "component graph and kernel contracts.",
    )
    parser.add_argument(
        "targets", nargs="*",
        help="channel preset names and/or paths to modules exposing "
             "build_for_lint()",
    )
    parser.add_argument(
        "--all", action="store_true",
        help="lint every channel preset and every shipped example",
    )
    parser.add_argument(
        "--rules", metavar="ID[,ID...]",
        help="comma-separated rule ids to run; globs select families, "
             "e.g. 'dataflow.*' (default: all)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", type=Path,
        help="waive findings recorded in FILE: only *new* findings count "
             "toward --fail-on (CI gates on regressions, not backlog)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline FILE from this run's findings and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the report as JSON (one object, reports keyed by target)",
    )
    parser.add_argument(
        "--min-severity", choices=sorted(_SEVERITIES), default="info",
        help="hide findings below this severity in the text report",
    )
    parser.add_argument(
        "--fail-on", choices=("warning", "error", "never"), default="error",
        help="exit non-zero when a finding at/above this severity exists "
             "(default: error)",
    )
    parser.add_argument(
        "--no-probe", action="store_true",
        help="pure-static mode: never execute combinational processes",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rid, severity, title in iter_rule_catalog():
            print(f"{rid:28s} {severity.value:8s} {title}")
        return 0

    if args.update_baseline and args.baseline is None:
        print("--update-baseline requires --baseline FILE", file=sys.stderr)
        return 2

    rule_ids = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]

    try:
        linter = Linter(rule_ids, probe=not args.no_probe)
    except KeyError as exc:
        print(f"unknown rule id(s): {exc.args[0]}", file=sys.stderr)
        return 2
    reports: List[Tuple[str, LintReport]] = []
    for label, kind_arg in _expand_targets(args):
        reports.append((label, _lint_one(kind_arg, linter)))

    if args.baseline is not None:
        if args.update_baseline:
            _write_baseline(args.baseline, reports)
            print(f"baseline written: {args.baseline}")
            return 0
        waived = _apply_baseline(args.baseline, reports)
        if waived:
            print(f"{waived} baselined finding(s) waived "
                  f"({args.baseline})", file=sys.stderr)

    if args.as_json:
        payload = {
            "targets": {label: rep.as_dict() for label, rep in reports},
            "summary": {
                "errors": sum(len(r.errors) for _, r in reports),
                "warnings": sum(len(r.warnings) for _, r in reports),
                "suppressed": sum(len(r.suppressed) for _, r in reports),
            },
        }
        print(json.dumps(payload, indent=2))
    else:
        min_sev = _SEVERITIES[args.min_severity]
        for label, rep in reports:
            print(f"== {label} ==")
            print(rep.format(min_sev))

    if args.fail_on == "never":
        return 0
    threshold = Severity.ERROR if args.fail_on == "error" else Severity.WARNING
    failed = any(rep.at_least(threshold) for _, rep in reports)
    return 1 if failed else 0

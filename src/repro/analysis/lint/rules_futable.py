"""Functional-unit-table rules: the decoder's routing data must be sane.

The RTM routes every dispatched instruction through a
:class:`~repro.rtm.futable.FunctionalUnitTable` — opcode → (unit, port,
write profile).  :meth:`~repro.rtm.futable.FunctionalUnitTable.add`
guards the common assembly path, but tables can also be built by hand
(custom RTMs, unit-subset experiments, the smart-memory suite presets),
and nothing downstream re-validates the rows: the decoder trusts the
dict key, the scoreboard trusts ``entry.code``, the dispatcher trusts
``entry.port`` and the lock manager trusts the write profile.  A row
those four disagree about produces wrong-unit dispatch or phantom
register locks that simulate plausibly until the colliding opcode is
actually issued.

The rules fire on evidence alone — every table reachable as a
``futable`` attribute of a component in the design — and stay silent on
anything they cannot inspect (under-approximation, like every rule).
"""

from __future__ import annotations

from typing import Iterator

from ...isa.opcodes import FIRST_UNIT_OPCODE
from .diagnostics import Diagnostic, Severity
from .engine import Rule, register_rule
from .model import DesignInfo

#: variety codes probed against each write profile — the full 8-bit space
#: the decoder can present, so a profile must total-function over it
_PROBE_VARIETIES = range(0x100)


def _tables(design: DesignInfo):
    """Every functional-unit table owned by a component in the design.

    The RTM shares one table instance with its decoder and dispatcher;
    each distinct table is attributed to the outermost component holding
    it (components are listed top-down) and reported once.
    """
    from ...rtm.futable import FunctionalUnitTable

    seen: set[int] = set()
    for comp in design.components:
        table = getattr(comp, "futable", None)
        if isinstance(table, FunctionalUnitTable) and id(table) not in seen:
            seen.add(id(table))
            yield comp, table


@register_rule
class FutableRoutingRule(Rule):
    """Table rows whose routing data is internally inconsistent.

    Three defects, all of the "two subsystems index the same row
    differently" shape:

    * an entry keyed under one opcode but carrying another ``code`` — the
      decoder routes by key, the scoreboard locks by code, so issuing
      either opcode corrupts the other's in-flight state;
    * two entries sharing a ``port`` index — the dispatcher forwards both
      opcodes into the same unit's dispatch register;
    * an opcode below ``FIRST_UNIT_OPCODE`` — shadowed by the system
      instruction space, the row is unreachable (or worse, reachable on
      decoders that check the unit table first).
    """

    id = "futable.duplicate-opcode"
    severity = Severity.ERROR
    title = "functional-unit table row aliases another opcode or port"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        for comp, table in _tables(design):
            ports: dict[int, int] = {}
            for key, entry in table.entries.items():
                if entry.code != key:
                    yield self.diag(
                        comp.path,
                        f"table row keyed {key:#04x} carries unit code "
                        f"{entry.code:#04x} — the decoder routes by key but "
                        "the scoreboard locks by code, so the two opcodes "
                        "corrupt each other's in-flight state",
                        hint="rebuild the row through FunctionalUnitTable.add",
                    )
                if not FIRST_UNIT_OPCODE <= key <= 0xFF:
                    yield self.diag(
                        comp.path,
                        f"unit opcode {key:#04x} lies outside "
                        f"[{FIRST_UNIT_OPCODE:#04x}, 0xff] — shadowed by the "
                        "system instruction space, the unit is unreachable",
                        hint="pick a code in the user-unit range",
                    )
                if entry.port in ports:
                    yield self.diag(
                        comp.path,
                        f"opcodes {ports[entry.port]:#04x} and {key:#04x} "
                        f"share dispatch port {entry.port} — both route into "
                        "the same unit's dispatch register",
                        hint="rebuild the table through FunctionalUnitTable.add,"
                             " which assigns ports densely",
                    )
                else:
                    ports[entry.port] = key


@register_rule
class FutableUnregisteredUnitRule(Rule):
    """A table row points at a unit that is not part of the design.

    The decoder will accept the opcode and the dispatcher will drive the
    orphan's dispatch ports, but the unit's processes were never
    elaborated into the simulated tree: the instruction is swallowed
    whole — no result, no flag write, and a permanently locked
    destination register.
    """

    id = "futable.unregistered-unit"
    severity = Severity.ERROR
    title = "functional-unit table routes to a unit outside the design"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        wired = {id(c) for c in design.components}
        for comp, table in _tables(design):
            for key, entry in table.entries.items():
                if id(entry.unit) not in wired:
                    yield self.diag(
                        comp.path,
                        f"opcode {key:#04x} routes to unit "
                        f"{getattr(entry.unit, 'name', entry.unit)!r} which is "
                        "not elaborated under the linted design — dispatches "
                        "are swallowed and their destination registers lock "
                        "forever",
                        hint="parent the unit into the RTM (registry factories "
                             "receive the parent) or drop the row",
                    )


@register_rule
class FutableWriteProfileRule(Rule):
    """A row's write profile is not a total function onto 3 booleans.

    The lock manager calls ``write_profile(variety)`` at dispatch time to
    decide which destinations to lock; a profile that raises or returns
    the wrong shape takes down the dispatcher on the first instruction
    with that variety.  Probed over the full 8-bit variety space the
    decoder can present.
    """

    id = "futable.write-profile"
    severity = Severity.ERROR
    title = "functional-unit write profile is partial or malformed"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        for comp, table in _tables(design):
            for key, entry in table.entries.items():
                problem = self._probe(entry.write_profile)
                if problem is not None:
                    yield self.diag(
                        comp.path,
                        f"opcode {key:#04x}: write profile {problem} — the "
                        "lock manager evaluates it for every dispatched "
                        "variety",
                        hint="return (writes_dst1, writes_dst2, writes_flags) "
                             "booleans for all variety codes",
                    )

    @staticmethod
    def _probe(profile) -> str | None:
        for variety in _PROBE_VARIETIES:
            try:
                result = profile(variety)
            except Exception as exc:
                return f"raises {type(exc).__name__} on variety {variety:#04x}"
            if not (isinstance(result, tuple) and len(result) == 3
                    and all(isinstance(b, bool) for b in result)):
                return (f"returns {result!r} for variety {variety:#04x} "
                        "instead of a (dst1, dst2, flags) bool triple")
        return None

"""Protocol rules: valid/ready handshake discipline over Stream bundles.

Every stream in the framework (FIFOs, pipe stages, arbiters, host ports)
carries the same contract: a word transfers exactly when ``valid & ready``
in the same cycle.  A producer that raises ``valid`` without ever sampling
``ready`` overruns slow consumers; a consumer that raises ``ready`` without
ever sampling ``valid`` latches garbage on idle cycles.  Both bugs simulate
fine against well-behaved peers and then corrupt data the first time
backpressure or starvation actually happens — which is exactly when the
fault-injection layer (PR 3) starts exercising retry paths.

The rules work on the stream registry each component declares
(:class:`~repro.hdl.components.Stream` self-registers) plus the per-process
read/write evidence from the model layer.  Opaque processes (unresolved
calls / unreadable source) disable the check for the streams they touch —
silence over speculation.
"""

from __future__ import annotations

from typing import Iterator

from .diagnostics import Diagnostic, Severity
from .engine import Rule, register_rule
from .model import DesignInfo


def _stream_evidence(design: DesignInfo):
    """Per-stream driver/reader process sets, with an opacity flag.

    Returns ``[(stream, valid_writers, ready_readers, ready_writers,
    valid_readers, opaque)]``.  ``opaque`` is True when any process
    touching the stream could not be fully analysed — both rules then skip
    the stream.
    """
    out = []
    for stream in design.streams:
        valid_writers = {id(r): r for r, _ in design.drivers_of(stream.valid)}
        ready_writers = {id(r): r for r, _ in design.drivers_of(stream.ready)}
        valid_readers = {id(r): r for r in design.readers_of(stream.valid)}
        ready_readers = {id(r): r for r in design.readers_of(stream.ready)}
        touching = (
            list(valid_writers.values()) + list(ready_writers.values())
            + list(valid_readers.values()) + list(ready_readers.values())
        )
        opaque = any(rec.opaque for rec in touching)
        out.append((stream, valid_writers, ready_readers, ready_writers,
                    valid_readers, opaque))
    return out


@register_rule
class ValidNoReadyRule(Rule):
    """A stream's ``valid`` is driven but its ``ready`` is never sampled.

    The producer pushes words blind: whenever the consumer stalls, the word
    on the bus that cycle is silently replaced.  The framework's blocking
    primitives (FIFO full, arbiter grant) all express themselves through
    ``ready`` — ignoring it means they cannot push back.
    """

    id = "protocol.valid-no-ready"
    severity = Severity.ERROR
    title = "stream drives valid without ever sampling ready"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        if not design.read_closed:
            return  # "never samples ready" needs every read attributed
        for (stream, valid_writers, ready_readers, _rw, _vr,
             opaque) in _stream_evidence(design):
            if opaque or not valid_writers or ready_readers:
                continue
            drivers = sorted(r.label for r in valid_writers.values())
            yield self.diag(
                stream.comp.path,
                f"stream {stream.name!r}: valid driven by "
                f"{', '.join(drivers)} but no process ever reads ready — "
                "words are lost the moment the consumer applies backpressure",
                signal=stream.valid.name,
                hint="gate the transfer on stream.fires() (valid & ready) "
                     "and hold the word while ready is low",
            )


@register_rule
class ReadyNoValidRule(Rule):
    """A stream's ``ready`` is driven but its ``valid`` is never sampled.

    The consumer accepts unconditionally: on cycles where no word is
    offered it latches whatever stale payload sits on the bus.  Warning
    rather than error — an always-ready sink that *also* qualifies its
    payload use by ``valid`` elsewhere is a common and sound idiom, but
    one this evidence cannot distinguish from the broken variant when the
    valid read lives outside the design.
    """

    id = "protocol.ready-no-valid"
    severity = Severity.WARNING
    title = "stream drives ready without ever sampling valid"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        if not design.read_closed:
            return  # "never samples valid" needs every read attributed
        for (stream, _vw, _rr, ready_writers, valid_readers,
             opaque) in _stream_evidence(design):
            if opaque or not ready_writers or valid_readers:
                continue
            drivers = sorted(r.label for r in ready_writers.values())
            yield self.diag(
                stream.comp.path,
                f"stream {stream.name!r}: ready driven by "
                f"{', '.join(drivers)} but no process ever reads valid — "
                "the consumer cannot tell a word from idle bus noise",
                signal=stream.ready.name,
                hint="qualify consumption with stream.fires(), or suppress "
                     "if valid is checked host-side",
            )

"""State-fault rules: protection declared must be protection applied.

A protected system (``state_faults=``/``state_protection=True``) carries a
:class:`~repro.faults.mcu.MachineCheckUnit` and wires a guard onto every
architectural state element — ECC shadows on the RAMs, the scoreboard
check on the lock manager, golden-copy validation on the unit table, and
the fold-tree ECC on smart-memory arrays.  The wiring is convention, not
construction: a custom RTM (or a new functional unit added to a stock one)
can instantiate the machine-check unit and still leave an element bare, at
which point an upset in that element is *silently* wrong — the precise
failure mode the whole fault stack exists to rule out.

:class:`UnprotectedStateRule` pins the convention: **if** a design contains
a machine-check unit, every guardable state element in it must actually
hold a guard.  Unprotected systems (no MCU anywhere) are exempt — running
without the fault stack is a legitimate configuration, not a defect.
ROMs are exempt too: their contents are construction constants re-readable
from the netlist, not mutable state an upset can linger in.
"""

from __future__ import annotations

from typing import Iterator

from .diagnostics import Diagnostic, Severity
from .engine import Rule, register_rule
from .model import DesignInfo


def _protection_domain(design: DesignInfo) -> bool:
    """True when the design instantiated the machine-check stack."""
    from ...faults.mcu import MachineCheckUnit

    return any(isinstance(c, MachineCheckUnit) for c in design.components)


def _bare_elements(design: DesignInfo):
    """Every guardable state element with no guard attached.

    Yields ``(owner_path, kind, element)`` triples.  Guardable means the
    element exposes the ``_guard`` hook the fault stack wires into:
    :class:`~repro.hdl.SyncRam`, :class:`~repro.rtm.lockmgr.LockManager`,
    :class:`~repro.rtm.futable.FunctionalUnitTable` and both smart-memory
    array implementations.
    """
    from ...hdl.memory import SyncRam
    from ...rtm.futable import FunctionalUnitTable
    from ...rtm.lockmgr import LockManager
    from ...smem.array import StructuralSmartArray, VectorSmartArray

    seen_tables: set[int] = set()
    for comp in design.components:
        if isinstance(comp, SyncRam) and comp._guard is None:
            yield comp.path, "RAM", comp
        elif isinstance(comp, LockManager) and comp._guard is None:
            yield comp.path, "lock scoreboard", comp
        elif isinstance(comp, (VectorSmartArray, StructuralSmartArray)):
            if comp._guard is None:
                yield comp.path, "smart-memory array", comp
        table = getattr(comp, "futable", None)
        if (
            isinstance(table, FunctionalUnitTable)
            and id(table) not in seen_tables
        ):
            seen_tables.add(id(table))
            if table._guard is None:
                yield comp.path, "unit-table config", table


@register_rule
class UnprotectedStateRule(Rule):
    """State elements left outside a declared protection domain.

    Fires once per bare element, attributed to the component owning it.
    Under-approximates like every rule: a design with no machine-check
    unit yields nothing, and only the four known-guardable element kinds
    are examined.
    """

    id = "fault.unprotected_state"
    severity = Severity.ERROR
    title = "state element has no fault guard in a protected design"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        if not _protection_domain(design):
            return
        for path, kind, _elem in _bare_elements(design):
            yield self.diag(
                path,
                f"{kind} at {path!r} has no fault guard, but the design "
                "instantiates a machine-check unit — an upset here is "
                "invisible to the ECC/scrub/machine-check stack and "
                "silently corrupts results",
                hint="wire a RamGuard/LockGuard/FutableGuard/ArrayGuard "
                     "onto the element (the RTM does this for its own "
                     "state when built with state protection)",
            )

"""``dataflow.*`` rules: value/width proofs from the abstract-interpretation
fixpoint (:mod:`repro.analysis.dataflow`).

Every rule fires only on a *proof* over the solver's sound value ranges —
an opaque write, an unmodelable expression or a mutated constant silently
drops the claim, keeping the family inside the engine's zero-false-positive
contract.  Width-overflow and pool-underflow are errors (both describe
silent corruption: a value that always truncates, a rename pool that can
strand the dispatcher); the rest describe dead weight and report as
warning/info.
"""

from __future__ import annotations

from typing import Iterator

from ..dataflow import analyze_design
from .diagnostics import Diagnostic, Severity
from .engine import Rule, register_rule
from .model import DesignInfo


def _range_text(av) -> str:
    if av.lo == av.hi:
        return str(av.lo)
    return f"[{av.lo}, {av.hi}]"


@register_rule
class WidthOverflowRule(Rule):
    id = "dataflow.width-overflow"
    severity = Severity.ERROR
    title = "written value provably exceeds the destination width"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        res = analyze_design(design)
        seen = set()
        for f in res.site_facts:
            if f.pre is None:
                continue
            mask = f.target._mask
            if f.pre.lo <= mask:
                continue  # may fit (counters wrap by design: not a proof)
            key = (f.target, f.rec.comp.path, f.site.line)
            if key in seen:
                continue
            seen.add(key)
            yield self.diag(
                f.rec.comp.path,
                f"value written to {f.target.name} at line {f.site.line} is "
                f"provably {_range_text(f.pre)}, beyond the {f.target.width}-bit "
                f"range [0, {mask}]: every write truncates",
                signal=f.target.name,
                hint="widen the destination signal or mask the expression "
                "intentionally at the source",
            )


@register_rule
class TruncatingSliceRule(Rule):
    id = "dataflow.truncating-slice"
    severity = Severity.WARNING
    title = "bit-slice/shift result may still exceed the destination"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        res = analyze_design(design)
        seen = set()
        for f in res.site_facts:
            if f.pre is None or f.site.expr is None:
                continue
            root = f.site.expr[0]
            if not (root == "bits" or (root == "bin" and f.site.expr[1] == ">>")):
                continue  # only explicit extractions: arithmetic re-widths
            mask = f.target._mask
            if not (0 <= f.site.line and f.pre.lo <= mask < f.pre.hi):
                continue  # full overflow is width-overflow's finding
            key = (f.target, f.rec.comp.path, f.site.line)
            if key in seen:
                continue
            seen.add(key)
            yield self.diag(
                f.rec.comp.path,
                f"bit extraction written to {f.target.name} at line "
                f"{f.site.line} spans {_range_text(f.pre)} but the "
                f"destination holds only [0, {mask}]: high bits are "
                f"silently dropped",
                signal=f.target.name,
                hint="slice down to the destination width explicitly",
            )


@register_rule
class ConstantSignalRule(Rule):
    id = "dataflow.constant-signal"
    severity = Severity.INFO
    title = "driven signal is provably constant"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        res = analyze_design(design)
        driven = {f.target for f in res.site_facts}
        for sig in design.signals:
            if sig not in res.tracked or sig not in driven:
                continue
            av = res.values[sig]
            if not av.is_const:
                continue
            yield self.diag(
                getattr(sig.owner, "path", design.top.path),
                f"{sig.name} is driven but provably always {av.lo}",
                signal=sig.name,
                hint="tie it off as a constant or delete the dead driver",
            )


@register_rule
class DeadBranchRule(Rule):
    id = "dataflow.dead-branch"
    severity = Severity.WARNING
    title = "signal-dependent guard is provably never taken"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        res = analyze_design(design)
        seen = set()
        for b in res.branch_facts:
            if b.verdict is not False or not b.signal_dependent:
                # config-constant gating (reliable=False and friends) is a
                # deliberate mode switch, not a dataflow defect
                continue
            key = (b.rec.comp.path, b.rec.label, b.line)
            if key in seen:
                continue
            seen.add(key)
            yield self.diag(
                b.rec.comp.path,
                f"guard at line {b.line} of {b.rec.label} is provably never "
                f"true: the branch body is unreachable",
                hint="the guarded condition lies outside the proven signal "
                "ranges — delete the branch or fix the comparison",
            )


@register_rule
class UnreachableMicrocodeRule(Rule):
    id = "dataflow.unreachable-microcode"
    severity = Severity.WARNING
    title = "microcode ROM rows no reachable FSM state selects"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        from ...smem.controller import MicroController

        for comp in design.components:
            if not isinstance(comp, MicroController):
                continue
            for variety, base, rows in comp.rom_layout():
                done_at = next(
                    (i for i, r in enumerate(rows) if r.done), None
                )
                if done_at is None or done_at == len(rows) - 1:
                    continue
                dead = len(rows) - 1 - done_at
                label = "invalid-variety handler" if variety < 0 else (
                    f"variety 0x{variety:02x}"
                )
                yield self.diag(
                    comp.path,
                    f"microprogram {label} finishes at row {base + done_at} "
                    f"but {dead} more row(s) follow in its span: the FSM "
                    f"returns to Idle on `done`, so rows "
                    f"{base + done_at + 1}..{base + len(rows) - 1} can "
                    f"never execute",
                    hint="delete the dead rows or move `done` to the last word",
                )


@register_rule
class PoolUnderflowRule(Rule):
    id = "dataflow.pool-underflow"
    severity = Severity.ERROR
    title = "rename pool can exhaust under the configured issue window"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        from ...fu.protocol import WriteSpace
        from ...rtm.rename import RenameTable

        for comp in design.components:
            if not isinstance(comp, RenameTable):
                continue
            need = comp.pool_requirement()
            for space in (WriteSpace.DATA, WriteSpace.FLAG):
                have = comp.n_phys[space]
                if have >= need[space]:
                    continue
                yield self.diag(
                    comp.path,
                    f"{space.name.lower()} pool holds {have} physical "
                    f"registers but the issue window "
                    f"({comp.config.ooo_window}) needs {need[space]} to "
                    f"rule out exhaustion: dispatch can stall on "
                    f"`can_accept` with the queue non-full",
                    hint="grow phys_regs (or shrink ooo_window) to at "
                    f"least {need[space]}",
                )

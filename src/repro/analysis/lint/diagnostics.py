"""Structured lint diagnostics and reports.

A :class:`Diagnostic` is one rule finding, addressed like a hardware DRC
violation: rule id, severity, the offending component's hierarchical path,
optionally the signal involved, a one-line message and a fix hint.  A
:class:`LintReport` is the ordered collection the engine returns, with the
human and machine renderings the CLI/CI exits are built on.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional


class Severity(enum.Enum):
    """Diagnostic severity, ordered: INFO < WARNING < ERROR."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One design-rule finding."""

    rule_id: str
    severity: Severity
    #: hierarchical path of the offending component (e.g. ``soc.rtm.decoder``)
    component: str
    #: one-line statement of the defect
    message: str
    #: hierarchical signal name the finding anchors to, when there is one
    signal: Optional[str] = None
    #: how to fix (or deliberately waive) the finding
    hint: Optional[str] = None

    def format(self) -> str:
        loc = self.component if self.signal is None else self.signal
        text = f"{self.severity.value:7s} {self.rule_id:26s} {loc}: {self.message}"
        if self.hint:
            text += f"\n        hint: {self.hint}"
        return text

    def as_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "component": self.component,
            "signal": self.signal,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass(frozen=True)
class Suppression:
    """A waived diagnostic — recorded, not hidden."""

    rule_id: str
    component: str
    reason: str
    signal: Optional[str] = None

    def as_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "component": self.component,
            "signal": self.signal,
            "reason": self.reason,
        }


@dataclass
class LintReport:
    """Every diagnostic a lint run produced, plus what was suppressed."""

    #: design the run was addressed to (top component path)
    design: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: findings matched by a component's declared suppression
    suppressed: list[Suppression] = field(default_factory=list)
    #: rule ids that ran (for "did my rule even execute" debugging)
    rules_run: tuple[str, ...] = ()

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def worst(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max((d.severity for d in self.diagnostics), key=lambda s: s.rank)

    def at_least(self, severity: Severity) -> list[Diagnostic]:
        """Diagnostics at or above ``severity``."""
        return [d for d in self.diagnostics if d.severity.rank >= severity.rank]

    def format(self, min_severity: Severity = Severity.INFO) -> str:
        """Human rendering, most severe first, stable within a severity."""
        shown = sorted(
            self.at_least(min_severity),
            key=lambda d: (-d.severity.rank, d.rule_id, d.component, d.signal or ""),
        )
        lines = [d.format() for d in shown]
        n_err = len(self.errors)
        n_warn = len(self.warnings)
        n_info = len(self.by_severity(Severity.INFO))
        lines.append(
            f"{self.design}: {n_err} error(s), {n_warn} warning(s), "
            f"{n_info} note(s), {len(self.suppressed)} suppressed"
        )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "design": self.design,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
            "suppressed": [s.as_dict() for s in self.suppressed],
            "rules_run": list(self.rules_run),
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "notes": len(self.by_severity(Severity.INFO)),
                "suppressed": len(self.suppressed),
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)


class LintFailure(Exception):
    """Raised by ``build_system(lint="error")`` when a design violates rules.

    Carries the full report so callers (and pytest failures) show every
    finding, not just the first.
    """

    def __init__(self, report: LintReport):
        self.report = report
        super().__init__(
            f"design {report.design!r} failed lint with "
            f"{len(report.errors)} error(s), {len(report.warnings)} warning(s):\n"
            + report.format()
        )


def merge_reports(reports: Iterable[LintReport]) -> LintReport:
    """Fold several per-design reports into one (CLI ``--all`` mode)."""
    merged = LintReport(design="*")
    rules: list[str] = []
    for rep in reports:
        merged.diagnostics.extend(rep.diagnostics)
        merged.suppressed.extend(rep.suppressed)
        for rid in rep.rules_run:
            if rid not in rules:
                rules.append(rid)
    merged.rules_run = tuple(rules)
    return merged

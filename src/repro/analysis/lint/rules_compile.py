"""Compiled-backend coverage rules: which processes defeat the codegen?

The compiled backend (:mod:`repro.hdl.compile`) shares its front end with
this lint package: a process is specialized (translated or value-guarded)
exactly when :func:`~repro.analysis.lint.astpass.closure_of` proves its
dependence closure.  Anything unproven falls back to interpreted,
run-every-sweep execution — always correct, but it erodes the backend's
speedup one process at a time.  This rule family makes those fallbacks
visible at elaboration time instead of leaving them buried in
``KernelStats.fallback_procs``.

Informational severity: a fallback is a performance observation, not a
design error.
"""

from __future__ import annotations

from typing import Iterator

from ...hdl.compile.frontend import guard_eligible
from .astpass import closure_of
from .diagnostics import Diagnostic, Severity
from .engine import Rule, register_rule
from .model import DesignInfo, ProcRecord


def _fallback_reason(rec: ProcRecord) -> str:
    """Why the compiler front end cannot value-guard this process."""
    try:
        closure = closure_of(rec.fn)
    except Exception:
        return "closure resolution failed"
    if closure.parse_failed:
        return "source unavailable to the AST pass"
    if closure.unknown_calls:
        return "calls the front end cannot see through"
    if closure.opaque_reads:
        return "reads the front end cannot enumerate"
    if not guard_eligible(closure):
        return "hidden inputs are mutable or late-bound (unpollable)"
    return ""


@register_rule
class CompiledFallbackRule(Rule):
    """A process the compiled backend must run unguarded on every sweep.

    Combinational processes declared ``always=True`` — or whose read
    closure the shared front end cannot prove — execute on every compiled
    settle sweep, exactly like under the event kernel's exhaustive
    fallback.  Impure sequential processes without a provable closure run
    on every edge.  Each one caps the compiled backend's advantage on the
    designs it appears in.
    """

    id = "compile.fallback"
    severity = Severity.INFO
    title = "process falls back to interpreted execution under backend=\"compiled\""

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        for rec in design.comb:
            if rec.always:
                yield self.diag(
                    rec.comp.path,
                    f"{rec.label} is declared always=True — the compiled "
                    "backend runs it unguarded on every settle sweep",
                    hint="vectorize the structure behind it "
                         "(__compile_vector__) or carry its hidden inputs "
                         "in Signals so the closure becomes provable",
                )
                continue
            reason = _fallback_reason(rec)
            if reason:
                yield self.diag(
                    rec.comp.path,
                    f"{rec.label} cannot be value-guarded: {reason} — it "
                    "runs on every compiled settle sweep",
                    hint="keep process bodies to tracked Signal reads and "
                         "immutable hidden attributes",
                )
        for rec in design.seq:
            if rec.pure:
                continue  # dynamic runtime tracking still applies
            reason = _fallback_reason(rec)
            if reason:
                yield self.diag(
                    rec.comp.path,
                    f"{rec.label} is impure with an unprovable closure "
                    f"({reason}) — the compiled backend runs it on every "
                    "edge",
                    hint="declare pure=True if it qualifies, or keep its "
                         "inputs to tracked Signal reads",
                )

"""Pytest-facing lint helpers.

``assert_lint_clean`` is the one-liner test suites drop into a fixture or a
dedicated test to pin a design's rule cleanliness::

    from repro.analysis.lint.testing import assert_lint_clean

    def test_my_block_is_clean():
        assert_lint_clean(build_my_block())

A failing assertion renders the full report (not just the first finding),
because a design rarely breaks one rule at a time.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from .diagnostics import LintReport, Severity
from .engine import Linter


def lint_report(
    target: Any,
    *,
    rules: Optional[Sequence[str]] = None,
    sim: Optional[Any] = None,
) -> LintReport:
    """Lint ``target`` and return the report (assert-free variant)."""
    return Linter(rules).lint(target, sim=sim)


def assert_lint_clean(
    target: Any,
    *,
    rules: Optional[Sequence[str]] = None,
    max_severity: Severity = Severity.INFO,
    sim: Optional[Any] = None,
) -> LintReport:
    """Assert ``target`` has no diagnostics above ``max_severity``.

    The default tolerates nothing above INFO — i.e. warnings fail the
    test.  Returns the report so callers can additionally assert on
    suppressions or notes.
    """
    report = lint_report(target, rules=rules, sim=sim)
    worst = report.worst
    if worst is not None and worst.rank > max_severity.rank:
        raise AssertionError(
            f"design {report.design!r} is not lint-clean "
            f"(worst severity {worst.value!r}, allowed {max_severity.value!r}):\n"
            + report.format()
        )
    return report


def assert_rule_fires(
    target: Any,
    rule_id: str,
    *,
    signal: Optional[str] = None,
    sim: Optional[Any] = None,
) -> LintReport:
    """Assert that linting ``target`` raises ``rule_id`` (fixture pinning).

    ``signal`` additionally requires one of the rule's findings to anchor
    on that signal name (full hierarchical name, or a suffix of it).
    """
    report = Linter().lint(target, sim=sim)
    hits = [d for d in report.diagnostics if d.rule_id == rule_id]
    if not hits:
        raise AssertionError(
            f"expected rule {rule_id!r} to fire on {report.design!r}; got:\n"
            + report.format()
        )
    if signal is not None:
        if not any(d.signal and (d.signal == signal or d.signal.endswith(signal))
                   for d in hits):
            raise AssertionError(
                f"rule {rule_id!r} fired but not on signal {signal!r}:\n"
                + report.format()
            )
    return report

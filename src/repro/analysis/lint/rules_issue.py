"""Issue-engine rules: renaming state protected, latency metadata honest.

The out-of-order issue engine adds one architectural state element — the
register-rename map — and one piece of static metadata the observability
layer trusts: the per-unit ``latency`` column of the functional unit
table.  Both have failure modes that are silent at run time:

* a rename map inside a protection domain but without a
  :class:`~repro.faults.guards.RenameGuard` lets an upset silently steer
  every subsequent read of an architectural register to the wrong
  physical register (the exact class of corruption the fault stack exists
  to catch — see :mod:`.rules_faults` for the general form);
* a table row whose ``latency`` disagrees with the unit's own
  ``latency_cycles`` mis-reports every timing estimate built on the
  table, without affecting functional results at all.
"""

from __future__ import annotations

from typing import Iterator

from .diagnostics import Diagnostic, Severity
from .engine import Rule, register_rule
from .model import DesignInfo
from .rules_faults import _protection_domain


@register_rule
class UnprotectedRenameRule(Rule):
    """A rename table left outside a declared protection domain.

    Same convention as ``fault.unprotected_state``: designs with no
    machine-check unit are exempt — running unprotected is a
    configuration, not a defect.
    """

    id = "issue.unprotected-rename"
    severity = Severity.ERROR
    title = "rename table has no fault guard in a protected design"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        from ...rtm.rename import RenameTable

        if not _protection_domain(design):
            return
        for comp in design.components:
            if isinstance(comp, RenameTable) and comp._guard is None:
                yield self.diag(
                    comp.path,
                    f"rename table at {comp.path!r} has no fault guard, but "
                    "the design instantiates a machine-check unit — an upset "
                    "in a map entry silently redirects every later read of "
                    "that architectural register",
                    hint="wire a RenameGuard onto the table (the RTM does "
                         "this for its own rename map when built with state "
                         "protection)",
                )


@register_rule
class LatencyMismatchRule(Rule):
    """Unit-table latency column out of sync with the unit it describes.

    The table defaults the column from ``latency_cycles`` at registration,
    so a mismatch means someone overrode one side and forgot the other —
    timing reports and issue diagnostics built on the table then describe
    a pipeline that doesn't exist.
    """

    id = "issue.latency-mismatch"
    severity = Severity.WARNING
    title = "functional-unit table latency disagrees with the unit"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        from ...rtm.futable import FunctionalUnitTable

        seen: set[int] = set()
        for comp in design.components:
            table = getattr(comp, "futable", None)
            if not isinstance(table, FunctionalUnitTable) or id(table) in seen:
                continue
            seen.add(id(table))
            # `_entries`, not `entries`: rules must not trip the config
            # guard's access-time validation.
            for entry in table._entries.values():
                actual = int(getattr(entry.unit, "latency_cycles", 1))
                if entry.latency != actual:
                    yield self.diag(
                        comp.path,
                        f"unit table row {entry.code:#04x} declares latency "
                        f"{entry.latency} but {type(entry.unit).__name__} "
                        f"reports latency_cycles={actual} — timing and "
                        "issue diagnostics built on the table are wrong",
                        hint="drop the explicit latency= override (the table "
                             "defaults it from the unit) or fix the unit's "
                             "latency_cycles",
                    )

"""Graph rules: structural checks over the elaborated signal graph.

These rules look only at who drives what and who reads what — the facts the
probe pass and the AST pass establish per process.  The crucial refinement
over a naive process-granularity analysis is that combinational dependency
edges are taken **per write site** (``graph.comb-loop``): a process that
computes ``out.valid`` from ``inp.valid`` and, separately, ``inp.ready``
from ``out.ready`` does *not* create a loop between the two handshake
directions, even though the process as a whole reads and writes both.
Edges also never pass *through* a :class:`~repro.hdl.signal.Reg` — reading
a register returns the previously latched value, which is exactly what
breaks feedback in a synchronous design.
"""

from __future__ import annotations

from typing import Iterator

from ...hdl.signal import Reg, Signal
from .diagnostics import Diagnostic, Severity
from .engine import Rule, register_rule
from .model import DesignInfo


def _short(sig: Signal, design: DesignInfo) -> str:
    """Signal name relative to the design top (diagnostics readability)."""
    prefix = design.top.path + "."
    return sig.name[len(prefix):] if sig.name.startswith(prefix) else sig.name


@register_rule
class CombLoopRule(Rule):
    """Combinational feedback: a signal transitively drives itself."""

    id = "graph.comb-loop"
    severity = Severity.ERROR
    title = "combinational loop through plain signals"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        # dep -> {driven}: value/control edges of comb write sites, Regs
        # excluded on both sides (latched reads break feedback).
        edges: dict[Signal, set] = {}
        managed = set(design.signals)
        for rec in design.comb:
            for site in rec.sites:
                if site.kind != "set":
                    continue
                for tgt in site.targets:
                    if isinstance(tgt, Reg) or tgt not in managed:
                        continue
                    for dep in site.deps:
                        if isinstance(dep, Reg) or dep not in managed:
                            continue
                        edges.setdefault(dep, set()).add(tgt)
        for cycle in _cycles(edges):
            anchor = min(cycle, key=lambda s: s.name)
            path = " -> ".join(_short(s, design)
                               for s in sorted(cycle, key=lambda s: s.name))
            comp = anchor.owner.path if anchor.owner else design.top.path
            yield self.diag(
                comp,
                f"combinational cycle: {path}",
                signal=anchor.name,
                hint="break the feedback with a Reg (latched at the edge) or "
                     "restructure the processes so the dependency is one-way",
            )


def _cycles(edges: dict) -> list:
    """Strongly connected components with >1 node, plus self-loops.

    Iterative Tarjan — process functions can legally chain hundreds of
    stages, so no recursion.
    """
    index: dict = {}
    low: dict = {}
    on_stack: set = set()
    stack: list = []
    sccs: list = []
    counter = [0]
    nodes = set(edges)
    for tgts in edges.values():
        nodes.update(tgts)

    for root in sorted(nodes, key=lambda s: s.name):
        if root in index:
            continue
        work = [(root, iter(sorted(edges.get(root, ()), key=lambda s: s.name)))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append(
                        (succ, iter(sorted(edges.get(succ, ()),
                                           key=lambda s: s.name)))
                    )
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member is node:
                        break
                if len(scc) > 1:
                    sccs.append(scc)
                elif scc[0] in edges.get(scc[0], ()):  # self-loop
                    sccs.append(scc)
    return sccs


@register_rule
class MultiDriverRule(Rule):
    """Two processes drive the same signal (or comb logic drives a Reg)."""

    id = "graph.multi-driver"
    severity = Severity.ERROR
    title = "signal driven by more than one process"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        for sig in design.signals:
            entries = design.drivers_of(sig)
            procs = {}
            for rec, how in entries:
                procs.setdefault(id(rec), (rec, set()))[1].add(how)
            if len(procs) < 2:
                continue
            labels = sorted(rec.label for rec, _ in procs.values())
            comp = sig.owner.path if sig.owner else design.top.path
            yield self.diag(
                comp,
                f"driven by {len(procs)} processes: {', '.join(labels)}",
                signal=sig.name,
                hint="give the signal a single owning process; merge the "
                     "drivers or mux their contributions explicitly",
            )


@register_rule
class UndrivenReadRule(Rule):
    """A plain signal is read by some process but driven by none.

    It can only ever hold its reset value — either a missing connection or
    a constant that should be declared as one.  Registers are exempt: they
    are legitimately driven from the outside (host ports force them between
    cycles) and hold state by design.
    """

    id = "graph.undriven-read"
    severity = Severity.WARNING
    title = "signal read but never driven"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        if not design.write_closed:
            return  # an unattributable write could be the missing driver
        flagged: set = set()
        for sig in design.signals:
            if isinstance(sig, Reg):
                continue
            if not design.readers_of(sig):
                continue
            if design.drivers_of(sig):
                continue
            flagged.add(sig)
        # An unconnected stream would otherwise yield one diagnostic per
        # member signal; report the stream once, anchored on `valid`.
        stream_member: dict = {}
        for stream in design.streams:
            for member in (stream.valid, stream.ready, stream.payload):
                stream_member[member] = stream
        reported_streams: set = set()
        for sig in sorted(flagged, key=lambda s: s.name):
            stream = stream_member.get(sig)
            if stream is not None:
                if id(stream) in reported_streams:
                    continue
                reported_streams.add(id(stream))
                members = [m for m in (stream.valid, stream.ready, stream.payload)
                           if m in flagged]
                comp = stream.comp.path
                yield self.diag(
                    comp,
                    f"stream member(s) {', '.join(_short(m, design) for m in members)} "
                    "read but never driven (stream not connected?)",
                    signal=stream.valid.name,
                    hint="connect the stream (connect_from) or drive it from "
                         "a process; a deliberately constant input should be "
                         "a reset value on the reading side",
                )
            else:
                comp = sig.owner.path if sig.owner else design.top.path
                yield self.diag(
                    comp,
                    "read by processes but driven by none — it is stuck at "
                    f"its reset value {sig.reset!r}",
                    signal=sig.name,
                    hint="wire a driver, or fold the constant into the reader",
                )


@register_rule
class UnreadDriveRule(Rule):
    """A signal is driven but nothing in the design ever reads it.

    INFO severity: testbenches and host-side code legitimately observe
    signals from Python, which this analysis cannot see.  Inside a sealed
    design, though, an unread driven signal is usually dead logic.
    """

    id = "graph.unread-drive"
    severity = Severity.INFO
    title = "signal driven but never read"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        if not design.read_closed:
            return  # an unattributable read could be the missing reader
        for sig in sorted(design.signals, key=lambda s: s.name):
            entries = design.drivers_of(sig)
            if not entries:
                continue
            if design.readers_of(sig):
                continue
            drivers = sorted({rec.label for rec, _ in entries})
            comp = sig.owner.path if sig.owner else design.top.path
            yield self.diag(
                comp,
                f"driven by {', '.join(drivers)} but read by no process",
                signal=sig.name,
                hint="dead logic? remove the driver, or suppress if the "
                     "signal is observed from host/test code",
            )


@register_rule
class WidthMismatchRule(Rule):
    """A pure signal-to-signal copy silently truncates.

    Only exact ``dst.set(src.value)`` / ``dst.nxt = src.value`` shapes are
    checked: arithmetic, slicing and masking are deliberate re-widthing and
    stay exempt.  Payload (object) signals have no width and are skipped.
    """

    id = "graph.width-mismatch"
    severity = Severity.WARNING
    title = "copy between signals of different widths truncates"

    def check(self, design: DesignInfo) -> Iterator[Diagnostic]:
        seen: set = set()
        for rec in design.procs:
            for site in rec.sites:
                src = site.src
                if src is None or src.width is None:
                    continue
                for tgt in site.targets:
                    if not isinstance(tgt, Signal) or tgt.width is None:
                        continue
                    if src.width <= tgt.width:
                        continue
                    key = (id(src), id(tgt), rec.index)
                    if key in seen:
                        continue
                    seen.add(key)
                    comp = tgt.owner.path if tgt.owner else design.top.path
                    yield self.diag(
                        comp,
                        f"copies {_short(src, design)} ({src.width}b) into "
                        f"{_short(tgt, design)} ({tgt.width}b): high bits are "
                        f"silently dropped ({rec.label}, line {site.line})",
                        signal=tgt.name,
                        hint="widen the destination, or slice the source "
                             "explicitly (src.bits(...)) to document the "
                             "truncation",
                    )

"""Static inspection of process functions — the lint engine's AST pass.

The kernel discovers process sensitivity *dynamically* (read tracking during
the discovery settle); that is exactly why a misdeclared contract is a
Heisenbug: the scheduler can only see what a run actually did, never what a
process *could* do.  This pass recovers the missing static view.  It works
in two phases so that linting thousands of process instances stays cheap:

1. **Summary** (cached per code object) — parse the process function's
   source and reduce it to symbolic events: signal reads (``.value``,
   ``.bit``/``.bits``, bare-signal truthiness), write sites (``.set``,
   ``.stage``/``.nxt``, ``.force``, ``.warp``, ``Stream.drive``) each with
   the *taint* (data + control dependencies) feeding it, hidden-attribute
   loads and stores, nonlocal writes, and method calls.  Closures created
   from the same ``def`` share one summary (every ``PipeStage._drive`` is
   one entry).

2. **Resolution** (per process instance) — evaluate each symbolic chain
   against the function's actual closure/defaults/globals, turning
   ``("self", "out", "valid")`` into the concrete
   :class:`~repro.hdl.signal.Signal` object.  Bound-method calls resolve
   through the *instance* (so subclass overrides like
   ``FaultyLine._delivering`` are analysed, not the base method) and are
   inlined to a small depth.

Anything the pass cannot resolve is reported as *unknown*, never guessed:
rules treat unknowns conservatively in the direction that avoids false
positives, because a lint that cries wolf gets turned off.
"""

from __future__ import annotations

import ast
import builtins as _builtins
import inspect
import textwrap
import types
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from ...hdl.components import Stream
from ...hdl.signal import Reg, Signal

# -- symbolic model -----------------------------------------------------------
#
# A *chain* is a tuple of steps addressing an object from a root name:
#   (("r", "self"), ("a", "out"), ("a", "valid"))   -> self.out.valid
# Steps: ("r", name) root lookup, ("a", name) attribute, ("i", k) constant
# subscript, ("e",) "every element" (dynamic subscript / loop variable),
# ("c", func_chain) "result of calling func_chain" — resolvable only as far
# as the callee's return annotation proves the result is not a Signal.
Chain = tuple[tuple, ...]

#: taint element: ("sig", chain) — potential signal read;
#: ("call", chain, args_taint) — result of a method call
Taint = frozenset

#: expansion cap when an ("e",) step fans out over a container
_MAX_ELEMENTS = 256

#: maximum depth of bound-method inlining during resolution (process →
#: helper → datapath function chains in the FU library reach depth 4)
_MAX_INLINE_DEPTH = 5


def _is_chain_step_pure(node: ast.AST) -> bool:
    return isinstance(node, (ast.Name, ast.Attribute, ast.Subscript))


#: Symbolic value expression attached to write sites and branch tests —
#: nested tuples so sites stay hashable.  Node forms:
#:   ("const", v)                      integer/bool literal
#:   ("read", chain)                   a ``.value``/``.nxt`` signal read
#:   ("chainval", chain)               a non-signal attribute/global value
#:   ("bit", chain, i)                 ``sig.bit(i)``
#:   ("bits", chain, hi, lo)           ``sig.bits(hi, lo)``
#:   ("bin", op, l, r)                 arithmetic/shift/bitwise operator
#:   ("un", op, x)                     unary operator
#:   ("cmp", op, l, r)                 single comparison
#:   ("bool", "and"|"or", (e, ...))    boolean combination
#:   ("ifexp", t, a, b)                conditional expression
#:   ("call", name, (args, ...))       min/max/abs/int/bool
#: ``None`` marks a value the model cannot express (opaque).
Expr = Optional[tuple]

#: node-count ceiling on captured expressions — beyond this the value is
#: treated as opaque rather than ballooning summaries
_MAX_EXPR_NODES = 96


def _expr_size(expr: Expr) -> int:
    if expr is None:
        return 1
    n = 1
    for part in expr[1:]:
        if isinstance(part, tuple):
            if part and isinstance(part[0], str):
                n += _expr_size(part)
            else:  # tuple of sub-expressions (bool/call arms)
                for sub in part:
                    n += _expr_size(sub)
    return n


@dataclass(frozen=True)
class WriteSite:
    """One symbolic signal-write site inside a process function."""

    kind: str  # "set" | "stage" | "force" | "warp" | "drive"
    target: Chain
    taint: Taint
    line: int
    #: chain of the source signal when the written value is a *pure copy*
    #: (``dst.set(src.value)`` / ``dst.nxt = src.value``) — the only shape
    #: the width-mismatch rule inspects, because arithmetic and slicing are
    #: deliberate re-widthing
    src: Optional[Chain] = None
    #: symbolic tree of the written value (see :data:`Expr`); ``None`` when
    #: the value shape is outside the model — the dataflow solver then
    #: widens the destination to its full width
    expr: Expr = None


@dataclass
class FnSummary:
    """Symbolic summary of one process function body (per code object)."""

    reads: set = field(default_factory=set)  # chains read via .value/.bit/.bits
    uses: set = field(default_factory=set)  # bare chains (signal iff resolves to one)
    calls: set = field(default_factory=set)  # (chain, args_taint, arg_aliases)
    writes: list = field(default_factory=list)  # [WriteSite]
    attr_loads: set = field(default_factory=set)  # attribute chains loaded
    attr_stores: set = field(default_factory=set)  # attribute chains stored/mutated
    nonlocal_stores: set = field(default_factory=set)  # names rebound via closure
    #: calls whose target could not be modelled (dynamic dispatch, etc.)
    unknown_calls: bool = False
    #: a signal read (.value/.nxt/.bit/.bits/.fires) through an expression
    #: the chain model cannot address — the read set may be incomplete
    opaque_reads: bool = False
    #: a signal write (.set/.stage/...) through such an expression — the
    #: write set may be incomplete
    opaque_writes: bool = False
    #: source unavailable / unparseable — summary is empty, not wrong
    parse_failed: bool = False
    #: (line, Expr) for every ``if`` test the value model can express —
    #: the dataflow solver proves dead branches from these
    branches: list = field(default_factory=list)


# methods whose invocation mutates their receiver (container mutators)
_MUTATORS = frozenset(
    {
        "append", "appendleft", "add", "clear", "discard", "extend", "insert",
        "pop", "popleft", "popitem", "remove", "setdefault", "update",
    }
)

# builtin-ish callables that only propagate their arguments' taint
_PURE_CALLS = frozenset(
    {
        "abs", "all", "any", "bool", "bytes", "dict", "divmod", "enumerate",
        "float", "frozenset", "hex", "int", "isinstance", "len", "list",
        "max", "min", "pow", "range", "repr", "reversed", "round", "set",
        "sorted", "str", "sum", "tuple", "zip",
    }
)


class _Scope:
    """Local-variable state: alias chains, taint and symbolic value."""

    __slots__ = ("alias", "taint", "expr")

    def __init__(self, alias: Optional[Chain], taint: Taint,
                 expr: Expr = None):
        self.alias = alias
        self.taint = taint
        self.expr = expr


class _Analyzer:
    """Single-pass symbolic walker over a process function body."""

    def __init__(self, summary: FnSummary):
        self.s = summary
        self.env: dict[str, _Scope] = {}
        self.cond_stack: list[Taint] = []
        #: taint of every condition that guarded an early return/raise —
        #: statements after such a branch are control-dependent on it
        self.flow_taint: Taint = frozenset()

    # -- helpers -------------------------------------------------------------

    def _chain_of(self, node: ast.AST) -> Optional[Chain]:
        """Address chain of a pure attribute/subscript expression, or None."""
        if isinstance(node, ast.Name):
            local = self.env.get(node.id)
            if local is not None:
                return local.alias  # may be None: a computed local
            return (("r", node.id),)
        if isinstance(node, ast.Attribute):
            base = self._chain_of(node.value)
            if base is None:
                return None
            return base + (("a", node.attr),)
        if isinstance(node, ast.Subscript):
            base = self._chain_of(node.value)
            if base is None:
                return None
            sl = node.slice
            if isinstance(sl, ast.Constant) and isinstance(sl.value, int):
                return base + (("i", sl.value),)
            self.taint_of(sl)  # a dynamic index is itself a read
            return base + (("e",),)
        return None

    def _guards(self) -> Taint:
        acc = self.flow_taint
        for t in self.cond_stack:
            acc = acc | t
        return acc

    def _write(self, kind: str, target: Optional[Chain], value_taint: Taint,
               line: int, src: Optional[Chain] = None,
               expr: Expr = None) -> None:
        if target is None:
            self.s.opaque_writes = True
            return
        self.s.writes.append(
            WriteSite(kind=kind, target=target, taint=value_taint | self._guards(),
                      line=line, src=src, expr=expr)
        )

    def _copy_src(self, value: Optional[ast.AST]) -> Optional[Chain]:
        """Chain of ``src`` when ``value`` is exactly ``src.value``, else None."""
        if not isinstance(value, ast.Attribute) or value.attr != "value":
            return None
        chain = self._chain_of(value)
        if chain is None or chain[-1] != ("a", "value"):
            return None
        return chain[:-1]

    # -- symbolic value expressions ------------------------------------------

    _BIN_EXPR_OPS = {
        ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.FloorDiv: "//",
        ast.Mod: "%", ast.Pow: "**", ast.LShift: "<<", ast.RShift: ">>",
        ast.BitAnd: "&", ast.BitOr: "|", ast.BitXor: "^",
    }
    _CMP_EXPR_OPS = {
        ast.Eq: "==", ast.NotEq: "!=", ast.Lt: "<", ast.LtE: "<=",
        ast.Gt: ">", ast.GtE: ">=",
    }
    _UN_EXPR_OPS = {ast.USub: "-", ast.UAdd: "+", ast.Invert: "~", ast.Not: "not"}
    _EXPR_CALLS = frozenset({"min", "max", "abs", "int", "bool"})

    def expr_of(self, node: Optional[ast.AST]) -> Expr:
        """Symbolic value tree of an expression, or None when unmodelable.

        Purely syntactic (no summary side effects — ``taint_of`` is always
        run alongside).  Local names substitute their recorded expression,
        which is sound because locals bound under a conditional are
        recorded as opaque (see :meth:`_bind_target`).
        """
        expr = self._expr_of(node)
        if expr is not None and _expr_size(expr) > _MAX_EXPR_NODES:
            return None
        return expr

    def _expr_of(self, node: Optional[ast.AST]) -> Expr:
        if isinstance(node, ast.Constant):
            v = node.value
            if isinstance(v, bool):
                return ("const", int(v))
            if isinstance(v, int):
                return ("const", v)
            return None
        if isinstance(node, ast.Name):
            local = self.env.get(node.id)
            if local is not None:
                return local.expr
            return ("chainval", (("r", node.id),))
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            chain = self._chain_of(node)
            if chain is None or chain[-1] == ("e",):
                return None
            if chain[-1] in (("a", "value"), ("a", "nxt")):
                return ("read", chain[:-1])
            return ("chainval", chain)
        if isinstance(node, ast.BinOp):
            op = self._BIN_EXPR_OPS.get(type(node.op))
            if op is None:
                return None
            left = self._expr_of(node.left)
            right = self._expr_of(node.right)
            if left is None or right is None:
                return None
            return ("bin", op, left, right)
        if isinstance(node, ast.UnaryOp):
            op = self._UN_EXPR_OPS.get(type(node.op))
            if op is None:
                return None
            x = self._expr_of(node.operand)
            if x is None:
                return None
            return ("un", op, x)
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                return None
            op = self._CMP_EXPR_OPS.get(type(node.ops[0]))
            if op is None:
                return None
            left = self._expr_of(node.left)
            right = self._expr_of(node.comparators[0])
            if left is None or right is None:
                return None
            return ("cmp", op, left, right)
        if isinstance(node, ast.BoolOp):
            op = "and" if isinstance(node.op, ast.And) else "or"
            arms = tuple(self._expr_of(v) for v in node.values)
            if any(a is None for a in arms):
                return None
            return ("bool", op, arms)
        if isinstance(node, ast.IfExp):
            test = self._expr_of(node.test)
            body = self._expr_of(node.body)
            orelse = self._expr_of(node.orelse)
            if test is None or body is None or orelse is None:
                return None
            return ("ifexp", test, body, orelse)
        if isinstance(node, ast.Call):
            if node.keywords or any(isinstance(a, ast.Starred) for a in node.args):
                return None
            func = node.func
            if isinstance(func, ast.Name) and func.id in self._EXPR_CALLS:
                if func.id in ("min", "max"):
                    if len(node.args) < 2:
                        return None
                elif len(node.args) != 1:
                    return None
                args = tuple(self._expr_of(a) for a in node.args)
                if any(a is None for a in args):
                    return None
                return ("call", func.id, args)
            if isinstance(func, ast.Attribute) and func.attr in ("bit", "bits"):
                chain = self._chain_of(func)
                if chain is None or chain[-1] != ("a", func.attr):
                    return None
                idx = [self._expr_of(a) for a in node.args]
                if not all(a is not None and a[0] == "const" for a in idx):
                    return None
                prefix = chain[:-1]
                if func.attr == "bit" and len(idx) == 1:
                    return ("bit", prefix, idx[0][1])
                if func.attr == "bits" and len(idx) == 2:
                    return ("bits", prefix, idx[0][1], idx[1][1])
            return None
        return None

    def _aug_expr(self, base: Expr, stmt: ast.AugAssign) -> Expr:
        """Symbolic tree for ``target <op>= value`` given target's tree."""
        op = self._BIN_EXPR_OPS.get(type(stmt.op))
        if op is None or base is None:
            return None
        value = self.expr_of(stmt.value)
        if value is None:
            return None
        return ("bin", op, base, value)

    # -- expression taint ----------------------------------------------------

    def taint_of(self, node: Optional[ast.AST]) -> Taint:
        """Taint of an expression; records reads/uses/calls as side effects."""
        if node is None or isinstance(node, ast.Constant):
            return frozenset()
        if isinstance(node, ast.Name):
            local = self.env.get(node.id)
            if local is not None:
                if local.alias is not None:
                    self.s.uses.add(local.alias)
                    return local.taint | frozenset({("sig", local.alias)})
                return local.taint
            chain: Chain = (("r", node.id),)
            self.s.uses.add(chain)
            return frozenset({("sig", chain)})
        if isinstance(node, ast.Attribute):
            chain2 = self._chain_of(node)
            if chain2 is None:
                if node.attr in ("value", "nxt"):
                    # a .value read through an unaddressable expression may
                    # be a signal read the model cannot attribute
                    self.s.opaque_reads = True
                return self.taint_of(node.value)
            last = chain2[-1]
            if last == ("a", "value"):
                prefix = chain2[:-1]
                self.s.reads.add(prefix)
                return frozenset({("sig", prefix)})
            if last == ("a", "nxt"):
                # reading .nxt reads the register's staged/held value
                prefix = chain2[:-1]
                self.s.reads.add(prefix)
                return frozenset({("sig", prefix)})
            self.s.attr_loads.add(chain2)
            self.s.uses.add(chain2)
            return frozenset({("sig", chain2)})
        if isinstance(node, ast.Subscript):
            chain3 = self._chain_of(node)
            if chain3 is None:
                return self.taint_of(node.value) | self.taint_of(node.slice)
            self.s.uses.add(chain3)
            base_taint = self.taint_of(node.value)
            return base_taint | frozenset({("sig", chain3)})
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, (ast.BinOp,)):
            return self.taint_of(node.left) | self.taint_of(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.taint_of(node.operand)
        if isinstance(node, ast.BoolOp):
            acc: Taint = frozenset()
            for v in node.values:
                acc |= self.taint_of(v)
            return acc
        if isinstance(node, ast.Compare):
            # `x is None` / `x is not None` examines object *identity*: a
            # bare signal mention there is wiring inspection, not a value
            # read — counting it as a read manufactures phantom feedback
            # (e.g. an ack driven under `if self.ack is not None:` would
            # appear to depend on itself).
            if all(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops):
                acc = frozenset()
                for o in [node.left, *node.comparators]:
                    acc |= self._identity_operand_taint(o)
                return acc
            acc = self.taint_of(node.left)
            for c in node.comparators:
                acc |= self.taint_of(c)
            return acc
        if isinstance(node, ast.IfExp):
            return (
                self.taint_of(node.test)
                | self.taint_of(node.body)
                | self.taint_of(node.orelse)
            )
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            acc = frozenset()
            for e in node.elts:
                acc |= self.taint_of(e)
            return acc
        if isinstance(node, ast.Dict):
            acc = frozenset()
            for k in node.keys:
                acc |= self.taint_of(k)
            for v in node.values:
                acc |= self.taint_of(v)
            return acc
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._comprehension_taint(node.generators, [node.elt])
        if isinstance(node, ast.DictComp):
            return self._comprehension_taint(node.generators, [node.key, node.value])
        if isinstance(node, ast.Starred):
            return self.taint_of(node.value)
        if isinstance(node, ast.JoinedStr):
            acc = frozenset()
            for v in node.values:
                acc |= self.taint_of(v)
            return acc
        if isinstance(node, ast.FormattedValue):
            return self.taint_of(node.value)
        if isinstance(node, ast.Slice):
            return (
                self.taint_of(node.lower)
                | self.taint_of(node.upper)
                | self.taint_of(node.step)
            )
        if isinstance(node, ast.Lambda):
            return frozenset()  # deferred execution: out of scope
        if isinstance(node, ast.NamedExpr):
            t = self.taint_of(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = _Scope(None, t)
            return t
        # anything else: visit children generically for their reads
        acc = frozenset()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                acc |= self.taint_of(child)
        return acc

    def _identity_operand_taint(self, node: ast.AST) -> Taint:
        """Taint of an ``is``/``is not`` operand: value taint propagates,
        but a bare object mention is not a signal read."""
        if isinstance(node, ast.Constant):
            return frozenset()
        if isinstance(node, ast.Name):
            local = self.env.get(node.id)
            return local.taint if local is not None else frozenset()
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            chain = self._chain_of(node)
            if chain is not None:
                if chain[-1] in (("a", "value"), ("a", "nxt")):
                    prefix = chain[:-1]
                    self.s.reads.add(prefix)  # an actual value, read then compared
                    return frozenset({("sig", prefix)})
                if chain[-1][0] == "a":
                    self.s.attr_loads.add(chain)
                return frozenset()
        return self.taint_of(node)

    def _comprehension_taint(self, generators, elts) -> Taint:
        saved = dict(self.env)
        acc: Taint = frozenset()
        try:
            for gen in generators:
                it_taint = self.taint_of(gen.iter)
                acc |= it_taint
                self._bind_loop_target(gen.target, gen.iter, it_taint)
                for cond in gen.ifs:
                    acc |= self.taint_of(cond)
            for e in elts:
                acc |= self.taint_of(e)
        finally:
            self.env = saved
        return acc

    def _elements_alias(self, iter_node: ast.AST) -> Optional[Chain]:
        chain = self._chain_of(iter_node)
        if chain is None:
            return None
        return chain + (("e",),)

    def _bind_loop_target(self, target: ast.AST, iter_node: ast.AST,
                          it_taint: Taint) -> None:
        """Bind a for/comprehension target, seeing through ``enumerate``,
        ``dict.values()`` and ``dict.items()``."""
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "enumerate"
            and iter_node.args
            and isinstance(target, ast.Tuple)
            and len(target.elts) == 2
        ):
            self._bind_target(target.elts[0], None, it_taint)
            self._bind_target(target.elts[1],
                              self._elements_alias(iter_node.args[0]), it_taint)
            return
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Attribute)
            and not iter_node.args
        ):
            recv = self._chain_of(iter_node.func.value)
            if recv is not None:
                # an ("e",) step over a dict resolves to its *values*
                if iter_node.func.attr == "values":
                    self._bind_target(target, recv + (("e",),), it_taint)
                    return
                if (
                    iter_node.func.attr == "items"
                    and isinstance(target, ast.Tuple)
                    and len(target.elts) == 2
                ):
                    self._bind_target(target.elts[0], None, it_taint)
                    self._bind_target(target.elts[1], recv + (("e",),), it_taint)
                    return
        self._bind_target(target, self._elements_alias(iter_node), it_taint)

    def _call_taint(self, node: ast.Call) -> Taint:
        args_taint: Taint = frozenset()
        for a in node.args:
            args_taint |= self.taint_of(a)
        for kw in node.keywords:
            args_taint |= self.taint_of(kw.value)
        func = node.func
        chain = self._chain_of(func)
        line = getattr(node, "lineno", 0)
        if chain is None:
            # A method call on a *computed local* (``new = list(items);
            # new.pop(0)``) mutates a fresh object, not simulation state —
            # unless the method name is a signal accessor, in which case a
            # read/write may be hiding behind the computed expression.
            if isinstance(func, ast.Attribute):
                if func.attr in ("set", "stage", "force", "warp", "drive"):
                    self.s.opaque_writes = True
                elif func.attr in ("bit", "bits", "fires"):
                    self.s.opaque_reads = True
                return args_taint | self.taint_of(func.value)
            self.s.unknown_calls = True
            return args_taint
        if len(chain) == 1 and chain[0][0] == "r" and chain[0][1] in _PURE_CALLS:
            return args_taint
        last = chain[-1]
        if last[0] == "a":
            name = last[1]
            prefix = chain[:-1]
            if name in ("bit", "bits"):
                self.s.reads.add(prefix)
                return frozenset({("sig", prefix)}) | args_taint
            if name in ("set", "stage", "force", "warp"):
                src = None
                expr: Expr = None
                if name in ("set", "stage") and len(node.args) == 1 \
                        and not node.keywords:
                    src = self._copy_src(node.args[0])
                    expr = self.expr_of(node.args[0])
                self._write({"stage": "stage"}.get(name, name), prefix,
                            args_taint, line, src=src, expr=expr)
                return frozenset()
            if name == "drive":
                self._write("drive", prefix, args_taint, line)
                return frozenset()
            if name in _MUTATORS:
                self.s.attr_stores.add(prefix)
                self.s.attr_loads.add(prefix)
                return args_taint
        # Positional-argument alias chains let resolution bind callee
        # parameters to concrete objects ("pass the unit, not just its op").
        arg_aliases = tuple(
            self._chain_of(a) if _is_chain_step_pure(a) else None
            for a in node.args
        )
        self.s.calls.add((chain, args_taint, arg_aliases))
        return frozenset({("call", chain, args_taint)}) | args_taint

    # -- statements ----------------------------------------------------------

    def _bind_target(self, target: ast.AST, alias: Optional[Chain],
                     taint: Taint, src: Optional[Chain] = None,
                     expr: Expr = None) -> None:
        if isinstance(target, ast.Name):
            # a local bound under a condition/loop may hold either arm's
            # value at the join point — its symbolic value goes opaque
            self.env[target.id] = _Scope(
                alias, taint, expr if not self.cond_stack else None
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for e in target.elts:
                self._bind_target(e, None, taint)
        elif isinstance(target, ast.Attribute):
            chain = self._chain_of(target)
            if chain is None:
                if target.attr == "nxt":
                    # a register stage through an unaddressable expression:
                    # the write set may be incomplete
                    self.s.opaque_writes = True
                return
            if chain[-1] == ("a", "nxt"):
                self._write("stage", chain[:-1], taint,
                            getattr(target, "lineno", 0), src=src, expr=expr)
            else:
                self.s.attr_stores.add(chain)
        elif isinstance(target, ast.Subscript):
            base = self._chain_of(target.value)
            if base is not None:
                self.s.attr_stores.add(base)
            self.taint_of(target.slice)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, None, taint)

    def visit_body(self, body: Iterable[ast.stmt]) -> None:
        for stmt in body:
            self.visit_stmt(stmt)

    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Expr):
            self.taint_of(stmt.value)
        elif isinstance(stmt, ast.Assign):
            taint = self.taint_of(stmt.value)
            src = self._copy_src(stmt.value)
            vexpr = self.expr_of(stmt.value)
            alias = None
            if _is_chain_step_pure(stmt.value):
                alias = self._chain_of(stmt.value)
                if alias is not None and alias[-1] in (("a", "value"), ("a", "nxt")):
                    alias = None  # a *value*, not the signal object
            elif isinstance(stmt.value, ast.Call):
                # `result = helper(...)`: alias the local to the call result,
                # so later `.value` accesses can be classified through the
                # callee's return annotation instead of going opaque.
                fchain = self._chain_of(stmt.value.func)
                if fchain is not None:
                    alias = (("c", fchain),)
            for target in stmt.targets:
                self._bind_target(target, alias, taint, src=src, expr=vexpr)
        elif isinstance(stmt, ast.AugAssign):
            taint = self.taint_of(stmt.value)
            target = stmt.target
            if isinstance(target, ast.Name):
                local = self.env.get(target.id)
                if local is not None:
                    local.taint = local.taint | taint
                    aug = self._aug_expr(local.expr, stmt)
                    local.expr = aug if not self.cond_stack else None
                else:
                    chain = (("r", target.id),)
                    self.s.nonlocal_stores.add(target.id)
                    self.s.uses.add(chain)
            elif isinstance(target, ast.Attribute):
                chain2 = self._chain_of(target)
                if chain2 is not None:
                    if chain2[-1] == ("a", "nxt"):
                        self.s.reads.add(chain2[:-1])
                        self._write("stage", chain2[:-1], taint,
                                    getattr(target, "lineno", 0),
                                    expr=self._aug_expr(
                                        ("read", chain2[:-1]), stmt))
                    else:
                        self.s.attr_stores.add(chain2)
                        self.s.attr_loads.add(chain2)
                elif target.attr == "nxt":
                    self.s.opaque_reads = True
                    self.s.opaque_writes = True
            elif isinstance(target, ast.Subscript):
                base = self._chain_of(target.value)
                if base is not None:
                    self.s.attr_stores.add(base)
                    self.s.attr_loads.add(base)
                self.taint_of(target.slice)
        elif isinstance(stmt, ast.AnnAssign):
            taint = self.taint_of(stmt.value) if stmt.value else frozenset()
            self._bind_target(stmt.target, None, taint,
                              expr=self.expr_of(stmt.value) if stmt.value else None)
        elif isinstance(stmt, (ast.If,)):
            test_taint = self.taint_of(stmt.test)
            test_expr = self.expr_of(stmt.test)
            if test_expr is not None:
                self.s.branches.append(
                    (getattr(stmt.test, "lineno", 0), test_expr)
                )
            self.cond_stack.append(test_taint)
            try:
                self.visit_body(stmt.body)
                self.visit_body(stmt.orelse)
            finally:
                self.cond_stack.pop()
            if self._diverges(stmt.body) or self._diverges(stmt.orelse):
                self.flow_taint = self.flow_taint | test_taint
        elif isinstance(stmt, ast.While):
            test_taint = self.taint_of(stmt.test)
            self.cond_stack.append(test_taint)
            try:
                self.visit_body(stmt.body)
                self.visit_body(stmt.orelse)
            finally:
                self.cond_stack.pop()
        elif isinstance(stmt, ast.For):
            it_taint = self.taint_of(stmt.iter)
            self._bind_loop_target(stmt.target, stmt.iter, it_taint)
            self.cond_stack.append(it_taint)
            try:
                self.visit_body(stmt.body)
                self.visit_body(stmt.orelse)
            finally:
                self.cond_stack.pop()
        elif isinstance(stmt, ast.Return):
            self.taint_of(stmt.value)
        elif isinstance(stmt, (ast.Raise,)):
            if stmt.exc is not None:
                self.taint_of(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self.taint_of(stmt.test)
            if stmt.msg is not None:
                self.taint_of(stmt.msg)
        elif isinstance(stmt, (ast.With,)):
            for item in stmt.items:
                self.taint_of(item.context_expr)
            self.visit_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.visit_body(stmt.body)
            for handler in stmt.handlers:
                self.visit_body(handler.body)
            self.visit_body(stmt.orelse)
            self.visit_body(stmt.finalbody)
        elif isinstance(stmt, (ast.Nonlocal, ast.Global)):
            self.s.nonlocal_stores.update(stmt.names)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested definitions execute later, if ever
        elif isinstance(stmt, (ast.Pass, ast.Break, ast.Continue, ast.Delete,
                               ast.Import, ast.ImportFrom)):
            pass
        else:  # pragma: no cover - future statement kinds
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.taint_of(child)

    @staticmethod
    def _diverges(body) -> bool:
        return any(isinstance(n, (ast.Return, ast.Raise, ast.Continue, ast.Break))
                   for n in body)


# -- summary cache ------------------------------------------------------------

_SUMMARY_CACHE: dict[types.CodeType, FnSummary] = {}


def _find_def(tree: ast.AST, name: str, lineno: int):
    """Locate the FunctionDef/Lambda a code object came from."""
    best = None
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == name:
                return node
        elif isinstance(node, ast.Lambda) and name == "<lambda>":
            best = node
    return best


def summarize(fn: Callable[..., Any]) -> FnSummary:
    """Symbolic summary of a process function (cached per code object)."""
    code = getattr(fn, "__code__", None)
    if code is None:
        s = FnSummary()
        s.parse_failed = True
        return s
    cached = _SUMMARY_CACHE.get(code)
    if cached is not None:
        return cached
    summary = FnSummary()
    try:
        src = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(src)
        node = _find_def(tree, code.co_name, code.co_firstlineno)
        if node is None:
            raise SyntaxError(f"no def {code.co_name!r} in extracted source")
        analyzer = _Analyzer(summary)
        if isinstance(node, ast.Lambda):
            analyzer.taint_of(node.body)
        else:
            analyzer.visit_body(node.body)
    except (OSError, SyntaxError, TypeError, ValueError):
        summary = FnSummary()
        summary.parse_failed = True
    _SUMMARY_CACHE[code] = summary
    return summary


# -- resolution ---------------------------------------------------------------

_MISSING = object()


@dataclass(frozen=True)
class ResolvedWrite:
    """A write site with its target and dependencies as concrete signals."""

    kind: str
    targets: tuple  # Signal objects (an ("e",) target fans out)
    deps: frozenset  # Signal objects the written value/control depends on
    line: int
    deps_unresolved: bool
    #: concrete source signal of a pure ``dst.set(src.value)`` copy
    src: Optional[Signal] = None
    #: resolved symbolic value tree — like :data:`Expr` but with
    #: ("sig", Signal) leaves for signal reads and ("attr", v, owner_id,
    #: name) for attribute-derived constants (provenance lets the solver
    #: reject constants whose owner attribute some process mutates);
    #: ``None`` when the written value is outside the model
    expr: Optional[tuple] = None


@dataclass
class ResolvedFn:
    """Concrete (per-instance) view of one process function."""

    signal_reads: set = field(default_factory=set)  # Signal objects
    writes: list = field(default_factory=list)  # [ResolvedWrite]
    #: (id(owner), attr) → (dotted source text, owner): hidden-attribute loads
    hidden_loads: dict = field(default_factory=dict)
    #: (id(owner), attr) → owner: attribute stores / container mutations
    hidden_stores: dict = field(default_factory=dict)
    nonlocal_stores: set = field(default_factory=set)
    streams_fired: set = field(default_factory=set)  # Stream objects
    #: (line, resolved test tree) for every modelable ``if`` guard
    branches: list = field(default_factory=list)
    unknown_calls: bool = False
    #: some reads could not be attributed (read set may be incomplete)
    opaque_reads: bool = False
    #: some writes could not be attributed (write set may be incomplete)
    opaque_writes: bool = False
    parse_failed: bool = False

    @property
    def unresolved_chains(self) -> bool:
        return self.opaque_reads or self.opaque_writes


def _root_env(fn: Callable[..., Any]) -> dict[str, Any]:
    """Name → object environment: closure cells, defaults, then globals."""
    env: dict[str, Any] = {}
    code = fn.__code__
    env.update(getattr(fn, "__globals__", {}))
    defaults = fn.__defaults__ or ()
    if defaults:
        argnames = code.co_varnames[: code.co_argcount]
        for name, value in zip(argnames[-len(defaults):], defaults):
            env[name] = value
    closure = fn.__closure__ or ()
    for name, cell in zip(code.co_freevars, closure):
        try:
            env[name] = cell.cell_contents
        except ValueError:  # empty cell
            pass
    return env


def _safe_getattr(obj: Any, name: str) -> Any:
    try:
        return getattr(obj, name, _MISSING)
    except Exception:
        return _MISSING


#: placeholder for "some value proven (by annotation) not to be a Signal"
_NONSIG = object()

_RETURN_CLASS_CACHE: dict[Any, Optional[type]] = {}


def _return_class(fn: Any) -> Optional[type]:
    """The concrete class ``fn`` is annotated to return, if provable."""
    key = getattr(fn, "__func__", fn)
    try:
        return _RETURN_CLASS_CACHE[key]
    except (KeyError, TypeError):
        pass
    cls: Optional[type] = None
    try:
        import typing

        hints = typing.get_type_hints(key)
        r = hints.get("return")
        if not isinstance(r, type) and typing.get_origin(r) is typing.Union:
            # unwrap Optional[X] — the None arm only ever fails attribute
            # steps, which already resolve conservatively
            args = [a for a in typing.get_args(r) if a is not type(None)]
            if len(args) == 1:
                r = args[0]
        if isinstance(r, type):
            cls = r
    except Exception:
        cls = None
    try:
        _RETURN_CLASS_CACHE[key] = cls
    except TypeError:
        pass
    return cls


def _resolve_chain(chain: Chain, env: dict[str, Any]) -> Optional[list]:
    """Resolve a chain to the list of objects it can address, or None."""
    if not chain:
        return None
    objs: list[Any] = []
    first = chain[0]
    if first[0] == "c":
        # call-result root: resolvable only to the *class* of the result —
        # enough to rule a `.value` access in or out as a signal read
        fns = _resolve_chain(first[1], env)
        if fns is None:
            return None
        for f in fns:
            cls = _return_class(f)
            if cls is None or issubclass(cls, (Signal, Stream)):
                return None
            objs.append(_NONSIG)
    elif first[0] != "r":
        return None
    elif first[1] in env:
        objs = [env[first[1]]]
    elif hasattr(_builtins, first[1]):
        # `__globals__` doesn't list builtins; ValueError & co live here
        objs = [getattr(_builtins, first[1])]
    else:
        return None
    for step in chain[1:]:
        nxt: list[Any] = []
        for obj in objs:
            if step[0] == "a":
                val = _safe_getattr(obj, step[1])
                if val is _MISSING:
                    return None
                nxt.append(val)
            elif step[0] == "i":
                try:
                    nxt.append(obj[step[1]])
                except Exception:
                    return None
            else:  # ("e",) — every element
                if isinstance(obj, (list, tuple)):
                    items = list(obj)
                elif isinstance(obj, dict):
                    items = list(obj.values())
                else:
                    return None
                if len(items) > _MAX_ELEMENTS:
                    return None
                nxt.extend(items)
        objs = nxt
    return objs


def _resolve_expr(expr: Expr, env: dict[str, Any]) -> Optional[tuple]:
    """Resolve a symbolic value tree against a concrete environment.

    Signal-read leaves must resolve to exactly one numeric :class:`Signal`;
    attribute/global leaves must resolve to exactly one int (recorded with
    provenance so the solver can discount mutated attributes).  Anything
    else makes the whole tree opaque (returns None).
    """
    if expr is None:
        return None
    tag = expr[0]
    if tag == "const":
        return expr
    if tag == "read":
        objs = _resolve_chain(expr[1], env)
        if objs is None or len(objs) != 1:
            return None
        sig = objs[0]
        if not isinstance(sig, Signal) or sig.width is None:
            return None
        return ("sig", sig)
    if tag in ("bit", "bits"):
        objs = _resolve_chain(expr[1], env)
        if objs is None or len(objs) != 1:
            return None
        sig = objs[0]
        if not isinstance(sig, Signal) or sig.width is None:
            return None
        return (tag, sig) + expr[2:]
    if tag == "chainval":
        chain = expr[1]
        objs = _resolve_chain(chain, env)
        if objs is None or len(objs) != 1:
            return None
        v = objs[0]
        if not isinstance(v, int):  # bool is an int; Signals are not
            return None
        last = chain[-1]
        if last[0] == "a" and len(chain) > 1:
            owners = _resolve_chain(chain[:-1], env)
            if owners is None or len(owners) != 1:
                return None
            return ("attr", int(v), id(owners[0]), last[1])
        if last[0] == "i" and len(chain) > 1:
            owners = _resolve_chain(chain[:-1], env)
            if owners is None or len(owners) != 1:
                return None
            return ("attr", int(v), id(owners[0]), "[]")
        if last[0] == "r":
            # module-global / closure constant: provenance by name only
            return ("attr", int(v), 0, last[1])
        return None
    if tag == "bin":
        left = _resolve_expr(expr[2], env)
        right = _resolve_expr(expr[3], env)
        if left is None or right is None:
            return None
        return ("bin", expr[1], left, right)
    if tag == "un":
        x = _resolve_expr(expr[2], env)
        if x is None:
            return None
        return ("un", expr[1], x)
    if tag == "cmp":
        left = _resolve_expr(expr[2], env)
        right = _resolve_expr(expr[3], env)
        if left is None or right is None:
            return None
        return ("cmp", expr[1], left, right)
    if tag == "bool":
        arms = tuple(_resolve_expr(a, env) for a in expr[2])
        if any(a is None for a in arms):
            return None
        return ("bool", expr[1], arms)
    if tag == "ifexp":
        parts = tuple(_resolve_expr(a, env) for a in expr[1:])
        if any(a is None for a in parts):
            return None
        return ("ifexp",) + parts
    if tag == "call":
        args = tuple(_resolve_expr(a, env) for a in expr[2])
        if any(a is None for a in args):
            return None
        return ("call", expr[1], args)
    return None


class _Resolver:
    """Applies a symbolic summary to one concrete function instance."""

    def __init__(self) -> None:
        self.out = ResolvedFn()
        self._seen: set = set()

    def run(self, fn: Callable[..., Any], depth: int = 0,
            bindings: Optional[dict] = None) -> ResolvedFn:
        summary = summarize(fn)
        if summary.parse_failed:
            self.out.parse_failed = True
            return self.out
        key = (
            fn.__code__,
            id(getattr(fn, "__self__", None)),
            tuple(sorted((n, id(v)) for n, v in (bindings or {}).items())),
        )
        if key in self._seen:
            return self.out
        self._seen.add(key)
        env = _root_env(fn)
        bound_self = getattr(fn, "__self__", None)
        if bound_self is not None:
            env["self"] = bound_self  # the receiver always wins over globals
        if bindings:
            env.update(bindings)  # caller-resolved arguments (inlining)
        out = self.out
        if summary.unknown_calls:
            out.unknown_calls = True
        if summary.opaque_reads:
            out.opaque_reads = True
        if summary.opaque_writes:
            out.opaque_writes = True
        out.nonlocal_stores.update(summary.nonlocal_stores)

        for chain in summary.reads:
            objs = _resolve_chain(chain, env)
            if objs is None:
                out.opaque_reads = True
                continue
            for obj in objs:
                if isinstance(obj, Signal):
                    out.signal_reads.add(obj)

        for chain in summary.uses:
            objs = _resolve_chain(chain, env)
            if objs is None:
                continue  # bare-use of an unresolvable name: not evidence
            for obj in objs:
                if isinstance(obj, Signal):
                    out.signal_reads.add(obj)

        for chain in summary.attr_loads:
            if len(chain) < 2 or chain[-1][0] != "a":
                continue
            objs = _resolve_chain(chain[:-1], env)
            if objs is None:
                continue
            attr = chain[-1][1]
            for owner in objs:
                val = _safe_getattr(owner, attr)
                if isinstance(val, (Signal, Stream)) or callable(val):
                    continue
                out.hidden_loads[(id(owner), attr)] = (_chain_text(chain), owner)

        for chain in summary.attr_stores:
            if len(chain) < 2:
                continue  # hidden-state rules need positive evidence only
            attr = chain[-1][1] if chain[-1][0] == "a" else "[]"
            prefix = chain[:-1] if chain[-1][0] == "a" else chain
            objs = _resolve_chain(prefix, env)
            if objs is None:
                continue
            for owner in objs:
                val = _safe_getattr(owner, attr) if attr != "[]" else _MISSING
                if isinstance(val, (Signal,)):
                    continue  # rebinding a Signal attribute is its own problem
                out.hidden_stores[(id(owner), attr)] = owner

        for site in summary.writes:
            self._resolve_write(site, env, depth)

        for line, bexpr in summary.branches:
            rexpr = _resolve_expr(bexpr, env)
            if rexpr is not None:
                out.branches.append((line, rexpr))

        for chain, args_taint, arg_aliases in summary.calls:
            self._resolve_call(chain, args_taint, arg_aliases, env, depth)
        return self.out

    # -- pieces ---------------------------------------------------------------

    def _resolve_write(self, site: WriteSite, env: dict[str, Any],
                       depth: int) -> None:
        out = self.out
        targets = _resolve_chain(site.target, env)
        if targets is None:
            out.opaque_writes = True
            return
        deps, unresolved = self._taint_signals(site.taint, env, depth)
        if site.kind == "drive":
            sig_targets: list[Signal] = []
            for obj in targets:
                if isinstance(obj, Stream):
                    sig_targets.extend((obj.valid, obj.payload))
            targets = sig_targets
        else:
            targets = [t for t in targets if isinstance(t, Signal)]
        if not targets:
            return
        src_sig = None
        if site.src is not None:
            src_objs = _resolve_chain(site.src, env)
            if src_objs and len(src_objs) == 1 and isinstance(src_objs[0], Signal):
                src_sig = src_objs[0]
        out.writes.append(
            ResolvedWrite(
                kind="set" if site.kind == "drive" else site.kind,
                targets=tuple(targets),
                deps=frozenset(deps),
                line=site.line,
                deps_unresolved=unresolved,
                src=src_sig,
                expr=_resolve_expr(site.expr, env),
            )
        )

    def _resolve_call(self, chain: Chain, args_taint: Taint,
                      arg_aliases: tuple, env: dict[str, Any],
                      depth: int) -> None:
        out = self.out
        objs = _resolve_chain(chain, env)
        if objs is None:
            # A method missing on a *resolved* receiver marks a dead branch
            # for this instance (mode-gated code, e.g. reliable-only paths):
            # were the call live it would raise AttributeError, not act.
            if len(chain) >= 2 and chain[-1][0] == "a":
                owners = _resolve_chain(chain[:-1], env)
                if owners is not None and all(
                    _safe_getattr(o, chain[-1][1]) is _MISSING for o in owners
                ):
                    return
            out.unknown_calls = True
            return
        for obj in objs:
            if obj is None:
                continue  # guarded-call pattern: `if self._hook is not None: ...`
            if isinstance(obj, types.MethodType):
                owner = obj.__self__
                if isinstance(owner, Stream) and obj.__name__ == "fires":
                    out.streams_fired.add(owner)
                    out.signal_reads.add(owner.valid)
                    out.signal_reads.add(owner.ready)
                    continue
                self._inline(obj, arg_aliases, env, depth)
            elif isinstance(obj, (types.FunctionType,)):
                self._inline(obj, arg_aliases, env, depth)
            elif isinstance(obj, type) or isinstance(obj, types.BuiltinFunctionType):
                # constructors (dataclasses, exceptions) and builtin/container
                # methods neither read nor write simulation signals
                continue
            else:
                out.unknown_calls = True

    def _inline(self, obj: Any, arg_aliases: tuple, env: dict[str, Any],
                depth: int) -> None:
        if depth >= _MAX_INLINE_DEPTH:
            self.out.unknown_calls = True
            return
        for bindings in self._param_bindings(obj, arg_aliases, env):
            self.run(obj, depth + 1, bindings=bindings)

    @staticmethod
    def _param_bindings(obj: Any, arg_aliases: tuple,
                        env: dict[str, Any]) -> list:
        """Caller-side argument bindings for inlining ``obj``.

        Each positional argument whose *alias chain* resolves in the caller's
        environment is bound to the callee's parameter name, so chains rooted
        at that parameter resolve inside the callee.  A single multi-valued
        argument (e.g. a loop variable over ``self.units``) fans out into one
        binding set per candidate object, capped small.
        """
        fn = obj.__func__ if isinstance(obj, types.MethodType) else obj
        code = getattr(fn, "__code__", None)
        if code is None or not arg_aliases:
            return [None]
        params = list(code.co_varnames[: code.co_argcount])
        if isinstance(obj, types.MethodType) and params:
            params = params[1:]  # `self` comes from the bound receiver
        combos: list[dict] = [{}]
        for name, alias in zip(params, arg_aliases):
            if alias is None:
                continue
            cands = _resolve_chain(alias, env)
            if not cands:
                continue
            if len(cands) == 1:
                for c in combos:
                    c[name] = cands[0]
            elif len(cands) <= 16 and len(combos) == 1:
                combos = [dict(combos[0], **{name: cand}) for cand in cands]
            # a second fan-out (or a huge one) stays unbound: the callee
            # falls back to its own environment, possibly going opaque
        return combos or [None]

    def _taint_signals(self, taint: Taint, env: dict[str, Any],
                       depth: int) -> tuple[set, bool]:
        """Expand taint elements to the concrete signals they may read."""
        deps: set = set()
        unresolved = False
        for elem in taint:
            if elem[0] == "sig":
                objs = _resolve_chain(elem[1], env)
                if objs is None:
                    unresolved = True
                    continue
                for obj in objs:
                    if isinstance(obj, Signal):
                        deps.add(obj)
            elif elem[0] == "call":
                _, chain, args = elem
                objs = _resolve_chain(chain, env)
                if objs is None:
                    unresolved = True
                    continue
                for obj in objs:
                    if isinstance(obj, types.MethodType) and \
                            isinstance(obj.__self__, Stream) and obj.__name__ == "fires":
                        deps.add(obj.__self__.valid)
                        deps.add(obj.__self__.ready)
                    elif isinstance(obj, (types.MethodType, types.FunctionType)) \
                            and depth < _MAX_INLINE_DEPTH:
                        sub = _Resolver()
                        sub_res = sub.run(obj, depth + 1)
                        deps.update(sub_res.signal_reads)
                        if sub_res.unresolved_chains or sub_res.unknown_calls:
                            unresolved = True
                    else:
                        unresolved = True
                arg_deps, arg_unres = self._taint_signals(args, env, depth)
                deps.update(arg_deps)
                unresolved = unresolved or arg_unres
        return deps, unresolved


def _chain_text(chain: Chain) -> str:
    parts: list[str] = []
    for step in chain:
        if step[0] == "r":
            parts.append(step[1])
        elif step[0] == "a":
            parts.append(f".{step[1]}")
        elif step[0] == "i":
            parts.append(f"[{step[1]}]")
        elif step[0] == "c":
            parts.append(f"{_chain_text(step[1])}()")
        else:
            parts.append("[*]")
    return "".join(parts)


def resolve(fn: Callable[..., Any]) -> ResolvedFn:
    """Summarize + resolve one process function against its live closure.

    The inline depth covers helper-method bodies (``self._delivering()``
    resolves through the *instance*, so subclass overrides are analysed).
    Reads discovered through inlined callees merge into the caller's view.
    """
    from ...hdl import signal as _signal_mod

    with _signal_mod.tracking(None, None):
        return _Resolver().run(fn)


def is_reg(sig: Signal) -> bool:
    """True for clocked registers (edges through them break comb cycles)."""
    return isinstance(sig, Reg)


# -- compiler front end --------------------------------------------------------


@dataclass(frozen=True)
class ProcClosure:
    """The proven dependence closure of one process function.

    This is the shared front-end product consumed by both the lint rules
    and the codegen backend (:mod:`repro.hdl.compile`): the set of signals
    a process may read or write, the hidden (non-signal) attributes it
    touches, and — crucially — whether those sets are *complete*.  The
    code generator may only install a value guard around a process when
    :attr:`read_complete` holds; lint reports processes where it does not
    (rule family ``compile.*``) so closure-coverage regressions surface in
    CI rather than as silently unguarded sweeps.
    """

    fn: Callable[..., Any]
    #: Signal objects the process may read (under-approximate if not complete)
    reads: frozenset
    #: Signal objects written via ``set``/``force``/``drive``
    writes: frozenset
    #: Reg objects staged via ``nxt``/``stage``
    stages: frozenset
    #: (id(owner), attr) → (source text, owner) non-signal attribute loads
    hidden_loads: dict
    #: (id(owner), attr) → owner attribute stores / container mutations
    hidden_stores: dict
    #: closure/global names the process rebinds (hidden mutable state)
    nonlocal_stores: frozenset
    unknown_calls: bool
    opaque_reads: bool
    opaque_writes: bool
    parse_failed: bool

    @property
    def read_complete(self) -> bool:
        """True when ``reads`` ∪ ``hidden_loads`` provably covers every input."""
        return not (self.parse_failed or self.unknown_calls or self.opaque_reads)

    @property
    def write_complete(self) -> bool:
        """True when ``writes`` ∪ ``stages`` provably covers every output."""
        return not (self.parse_failed or self.unknown_calls or self.opaque_writes)


def closure_of(fn: Callable[..., Any]) -> ProcClosure:
    """Resolve one process function into its :class:`ProcClosure`.

    Thin adapter over :func:`resolve` that splits write sites into nets
    and registers and folds the confidence flags into completeness
    properties — the contract the codegen backend keys its translate /
    guard / fallback decision on.
    """
    r = resolve(fn)
    writes: set = set()
    stages: set = set()
    for site in r.writes:
        bucket = stages if site.kind == "stage" else writes
        bucket.update(site.targets)
    return ProcClosure(
        fn=fn,
        reads=frozenset(r.signal_reads),
        writes=frozenset(writes),
        stages=frozenset(stages),
        hidden_loads=dict(r.hidden_loads),
        hidden_stores=dict(r.hidden_stores),
        nonlocal_stores=frozenset(r.nonlocal_stores),
        unknown_calls=r.unknown_calls,
        opaque_reads=r.opaque_reads,
        opaque_writes=r.opaque_writes,
        parse_failed=r.parse_failed,
    )


__all__ = [
    "Chain",
    "Expr",
    "FnSummary",
    "ProcClosure",
    "ResolvedFn",
    "ResolvedWrite",
    "WriteSite",
    "closure_of",
    "resolve",
    "summarize",
]

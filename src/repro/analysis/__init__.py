"""repro.analysis — performance, timing and area models + measurement helpers.

Carries the quantitative side of the paper's argument: the ≈50 MHz Cyclone
clock model, real-unit link models spanning the prototyping-serial to
processor-integrated spectrum, first-order LE area estimates, logic-level
critical-path estimates, and the cycle-measurement harness the benchmarks
are built on.
"""

from .area import (
    CYCLONE_EP1C3_LES,
    CYCLONE_EP1C12_LES,
    CYCLONE_EP1C20_LES,
    AreaEstimate,
    area_arith_unit,
    area_case_study_system,
    area_cell,
    area_framework,
    area_logic_unit,
    area_register_file,
    area_tree,
    area_xisort_unit,
)
from .counters import (
    CounterReport,
    collect_counters,
    counters_for,
    engine_counters_for,
    kernel_counters_for,
    link_counters_for,
    state_counters_for,
)
from .inventory import ComponentStats, inventory, inventory_table, stats_for
from .clock import (
    DEFAULT_CLOCKS,
    INTEGRATED_LINK,
    PCIE_CLASS_LINK,
    REAL_LINKS,
    SERIAL_PROTOTYPE_LINK,
    ClockModel,
    LinkModel,
)
from .perf import (
    IssueRateResult,
    XiStepCosts,
    make_system,
    measure_end_to_end_sort,
    measure_issue_rate,
    measure_xisort_step_costs,
    roundtrip_cycles,
)
from .report import format_table, print_table
from .timing import (
    LEVEL_DELAY_NS,
    REG_OVERHEAD_NS,
    ClockEstimate,
    PathReport,
    ack_forwarding_path,
    arith_unit_path,
    estimate_clock,
    rtm_paths,
    xisort_paths,
)

__all__ = [
    "CYCLONE_EP1C3_LES",
    "CYCLONE_EP1C12_LES",
    "CYCLONE_EP1C20_LES",
    "AreaEstimate",
    "area_arith_unit",
    "area_case_study_system",
    "area_cell",
    "area_framework",
    "area_logic_unit",
    "area_register_file",
    "area_tree",
    "area_xisort_unit",
    "CounterReport",
    "ComponentStats",
    "inventory",
    "inventory_table",
    "stats_for",
    "collect_counters",
    "counters_for",
    "engine_counters_for",
    "kernel_counters_for",
    "link_counters_for",
    "state_counters_for",
    "DEFAULT_CLOCKS",
    "INTEGRATED_LINK",
    "PCIE_CLASS_LINK",
    "REAL_LINKS",
    "SERIAL_PROTOTYPE_LINK",
    "ClockModel",
    "LinkModel",
    "IssueRateResult",
    "XiStepCosts",
    "make_system",
    "measure_end_to_end_sort",
    "measure_issue_rate",
    "measure_xisort_step_costs",
    "roundtrip_cycles",
    "format_table",
    "print_table",
    "LEVEL_DELAY_NS",
    "REG_OVERHEAD_NS",
    "ClockEstimate",
    "PathReport",
    "ack_forwarding_path",
    "arith_unit_path",
    "estimate_clock",
    "rtm_paths",
    "xisort_paths",
]

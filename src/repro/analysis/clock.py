"""Clock and link models: converting cycles into the paper's real units.

The paper's prototype ran "on an Altera Cyclone FPGA ... with a clock speed
of approximately 50 MHz" (§IV.B) behind "a very slow connection" (§III),
while the CPU of the era clocked 1.5–3 GHz.  These models carry those
constants so benchmarks can translate architecture-neutral counts
(coprocessor cycles, CPU operations) into comparable wall-clock estimates —
the absolute numbers are illustrative, the *shape* is the reproduction
target.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..messages.channel import ChannelSpec


@dataclass(frozen=True)
class ClockModel:
    """Clock frequencies of the two sides of the system."""

    #: FPGA fabric clock (the paper's Cyclone prototype: ≈50 MHz)
    fpga_mhz: float = 50.0
    #: host CPU clock (a 2010-class workstation core)
    cpu_mhz: float = 2000.0
    #: average CPU clock cycles per counted primitive operation (load +
    #: compare + branch per element in the scan loops; a conservative 3)
    cpu_cycles_per_op: float = 3.0

    @property
    def clock_ratio(self) -> float:
        """CPU clocks per FPGA clock."""
        return self.cpu_mhz / self.fpga_mhz

    def fpga_seconds(self, cycles: int) -> float:
        return cycles / (self.fpga_mhz * 1e6)

    def cpu_seconds(self, ops: int) -> float:
        return ops * self.cpu_cycles_per_op / (self.cpu_mhz * 1e6)


DEFAULT_CLOCKS = ClockModel()


@dataclass(frozen=True)
class LinkModel:
    """A physical link in real units, mappable onto a :class:`ChannelSpec`.

    ``word_rate_hz`` — 32-bit words per second; ``latency_s`` — one-way
    propagation + protocol latency.
    """

    name: str
    word_rate_hz: float
    latency_s: float

    def transfer_seconds(self, n_words: int) -> float:
        if n_words <= 0:
            return 0.0
        return self.latency_s + n_words / self.word_rate_hz

    def to_channel_spec(self, fpga_mhz: float = 50.0) -> ChannelSpec:
        """Express this link in coprocessor clock cycles."""
        clock_hz = fpga_mhz * 1e6
        return ChannelSpec(
            self.name,
            latency_cycles=max(1, round(self.latency_s * clock_hz)),
            cycles_per_word=max(1, round(clock_hz / self.word_rate_hz)),
        )


#: The paper's development-board class link: a 115200-baud serial line
#: (≈2880 words/s with 8N1 framing of 4-byte words).
SERIAL_PROTOTYPE_LINK = LinkModel("serial-115200", word_rate_hz=2880.0, latency_s=100e-6)

#: A 2010-class host bus (PCIe gen1 x1 effective): ≈50M words/s, ~1 µs latency.
PCIE_CLASS_LINK = LinkModel("pcie-x1", word_rate_hz=50e6, latency_s=1e-6)

#: Processor-integrated fabric (e.g. an FSB-attached FPGA): word per clock.
INTEGRATED_LINK = LinkModel("integrated", word_rate_hz=50e6 * 1.0, latency_s=40e-9)

REAL_LINKS = (SERIAL_PROTOTYPE_LINK, PCIE_CLASS_LINK, INTEGRATED_LINK)

"""First-order FPGA area model (Cyclone-class logic elements).

The paper reports only that the system fits "a small scale system intended
for prototyping" (an Altera Cyclone, §IV.B).  This model estimates logic
element (LE) consumption per component with the standard first-order rules
for 4-input-LUT fabrics:

* one LE per register bit,
* one LE per adder/comparator bit (carry chain),
* one LE per 4:1-mux bit / 2 two-input gate bits.

It reproduces the *scaling shape* (linear in cell count and word width,
n−1 tree nodes) that the ablation benchmarks A1/A2 chart; it is not a
synthesis replacement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import FrameworkConfig
from ..xisort.cell import INTERVAL_BITS
from ..xisort.tree import tree_node_count

#: LE capacity of the smallest/largest Cyclone I parts (device handbook [3]).
CYCLONE_EP1C3_LES = 2_910
CYCLONE_EP1C12_LES = 12_060
CYCLONE_EP1C20_LES = 20_060


@dataclass
class AreaEstimate:
    """LE totals with a per-component breakdown."""

    breakdown: dict[str, int] = field(default_factory=dict)

    def add(self, component: str, les: int) -> None:
        self.breakdown[component] = self.breakdown.get(component, 0) + int(les)

    @property
    def total(self) -> int:
        return sum(self.breakdown.values())

    def fits(self, capacity: int = CYCLONE_EP1C12_LES) -> bool:
        return self.total <= capacity

    def merged(self, other: "AreaEstimate") -> "AreaEstimate":
        out = AreaEstimate(dict(self.breakdown))
        for k, v in other.breakdown.items():
            out.add(k, v)
        return out


# -- framework components -----------------------------------------------------------

def area_register_file(config: FrameworkConfig) -> int:
    """Registers + read muxes (3 read ports) + write decode."""
    bits = config.n_regs * config.word_bits
    read_mux = 3 * config.word_bits * (config.n_regs // 4 + 1)
    return bits + read_mux + config.n_regs


def area_flag_file(config: FrameworkConfig) -> int:
    bits = config.n_flag_regs * config.flag_bits
    read_mux = config.flag_bits * (config.n_flag_regs // 4 + 1)
    return bits + read_mux + config.n_flag_regs


def area_lock_manager(config: FrameworkConfig) -> int:
    """One lock bit per register plus set/clear decode."""
    return 2 * (config.n_regs + config.n_flag_regs)


def area_pipeline(config: FrameworkConfig) -> int:
    """Decoder/dispatcher/execution stage registers + control."""
    stage_regs = 3 * (64 + 16)          # held instruction + control vector
    decode_logic = 200                   # opcode/variety lookup cloud
    handshake = 6 * 4                    # per-stage valid/ready logic
    return stage_regs + decode_logic + handshake


def area_write_arbiter(config: FrameworkConfig, n_units: int) -> int:
    grant = 8 * max(1, n_units)
    data_mux = config.word_bits * (n_units // 4 + 1)
    return grant + data_mux


def area_transceiver(config: FrameworkConfig) -> int:
    fifo = 2 * config.transceiver_fifo_depth * 32
    framing = 150
    return fifo + framing


def area_arith_unit(config: FrameworkConfig) -> int:
    """Adder + operand steering + output registers (Table 3.1 datapath)."""
    w = config.word_bits
    adder = w
    steering = 2 * w // 2            # zero/complement muxes
    out_regs = w + 8 + 8             # data, flag, side-band registers
    return adder + steering + out_regs


def area_logic_unit(config: FrameworkConfig) -> int:
    w = config.word_bits
    func = 2 * w                      # Boolean function generators + select
    out_regs = w + 8 + 8
    return func + out_regs


def area_cell(word_bits: int) -> int:
    """One SIMD cell (Fig. 3.12): registers + comparator + bound muxes."""
    regs = word_bits + 2 * INTERVAL_BITS + 2          # data, lo, hi, sel, saved
    comparator = word_bits                             # data vs broadcast
    bound_cmp = 2 * INTERVAL_BITS                      # lo/hi vs broadcast
    muxes = (word_bits + 2 * INTERVAL_BITS) // 2
    return regs + comparator + bound_cmp + muxes


def area_tree(n_cells: int, word_bits: int) -> int:
    """Interior nodes: count adders + leftmost select + OR retrieval."""
    per_node = (n_cells.bit_length()) + word_bits // 2 + INTERVAL_BITS
    return tree_node_count(n_cells) * per_node


def area_xisort_controller(word_bits: int) -> int:
    temps = 4 * word_bits
    alu = word_bits
    rom_decode = 120
    return temps + alu + rom_decode


def area_xisort_unit(n_cells: int, word_bits: int) -> AreaEstimate:
    est = AreaEstimate()
    est.add("xisort.cells", n_cells * area_cell(word_bits))
    est.add("xisort.tree", area_tree(n_cells, word_bits))
    est.add("xisort.controller", area_xisort_controller(word_bits))
    est.add("xisort.adapter", 2 * word_bits + 60)
    return est


def area_framework(config: FrameworkConfig, n_units: int = 2) -> AreaEstimate:
    """The fixed framework (everything except user functional units)."""
    est = AreaEstimate()
    est.add("regfile", area_register_file(config))
    est.add("flagfile", area_flag_file(config))
    est.add("lockmgr", area_lock_manager(config))
    est.add("pipeline", area_pipeline(config))
    est.add("write_arbiter", area_write_arbiter(config, n_units))
    est.add("transceiver", area_transceiver(config))
    return est


def area_case_study_system(
    config: FrameworkConfig, n_cells: int = 0, include_stateless: bool = True
) -> AreaEstimate:
    """Framework + case-study units (+ optional ξ-sort of a given size)."""
    n_units = (2 if include_stateless else 0) + (1 if n_cells else 0)
    est = area_framework(config, n_units=max(1, n_units))
    if include_stateless:
        est.add("arith_unit", area_arith_unit(config))
        est.add("logic_unit", area_logic_unit(config))
    if n_cells:
        est = est.merged(area_xisort_unit(n_cells, min(config.word_bits, 64)))
    return est

"""Design elaboration report — the synthesis-report view of a component tree.

Walks an elaborated design and tabulates, per component subtree: child
components, signals, register bits, combinational and sequential processes.
This is the "resource utilisation by entity" report an FPGA engineer reads
after synthesis, and a quick sanity check that a configuration change
(word size, cell count) scales the design the way the area model predicts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hdl import Component, Reg
from .report import format_table


@dataclass
class ComponentStats:
    """Elaboration statistics for one component subtree."""

    path: str
    components: int
    signals: int
    registers: int
    register_bits: int
    comb_procs: int
    seq_procs: int


def stats_for(comp: Component) -> ComponentStats:
    """Aggregate statistics over a component and all its descendants."""
    components = signals = registers = register_bits = 0
    comb = seq = 0
    for c in comp.walk():
        components += 1
        comb += len(c.comb_procs)
        seq += len(c.seq_procs)
        for sig in c.signals:
            signals += 1
            if isinstance(sig, Reg):
                registers += 1
                register_bits += sig.width if sig.width is not None else 0
    return ComponentStats(
        path=comp.path,
        components=components,
        signals=signals,
        registers=registers,
        register_bits=register_bits,
        comb_procs=comb,
        seq_procs=seq,
    )


def inventory(top: Component, depth: int = 2) -> list[ComponentStats]:
    """Per-subtree statistics down to ``depth`` levels below ``top``."""
    rows = [stats_for(top)]

    def visit(comp: Component, level: int) -> None:
        if level > depth:
            return
        for child in comp.children:
            rows.append(stats_for(child))
            visit(child, level + 1)

    visit(top, 1)
    return rows


def inventory_table(top: Component, depth: int = 2) -> str:
    """Render the elaboration report as a fixed-width table."""
    rows = [
        [
            s.path,
            s.components,
            s.signals,
            s.registers,
            s.register_bits,
            s.comb_procs,
            s.seq_procs,
        ]
        for s in inventory(top, depth)
    ]
    return format_table(
        ["entity", "comps", "signals", "regs", "reg bits", "comb", "seq"],
        rows,
        title=f"elaboration report for {top.path}",
    )

"""First-order critical-path / clock model (Cyclone-class delays).

"The generic controller is designed to minimise the clock period; this is
achieved by pipelining, so the critical path in the controller is short ...
The main limitation on performance will be the functional unit circuits"
(§III).  This model expresses that argument quantitatively: every candidate
path is a number of logic levels (4-LUT + routing ≈ 1 ns each on a
Cyclone-class part), the clock is set by the worst one, and we can show

* the RTM's own stages stay short regardless of configuration,
* the ξ-sort tree adds ⌈log₂ n⌉ levels, eventually bounding the clock,
* ack-forwarding in minimal units (thesis §2.3.4's warning) splices the
  arbiter grant path into the dispatch path and visibly stretches it.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2

from ..config import FrameworkConfig

#: effective delay per logic level (LUT + local routing), nanoseconds
LEVEL_DELAY_NS = 1.0
#: register clock-to-out + setup overhead, nanoseconds
REG_OVERHEAD_NS = 1.5


@dataclass(frozen=True)
class PathReport:
    """One candidate critical path."""

    name: str
    levels: int

    @property
    def delay_ns(self) -> float:
        return REG_OVERHEAD_NS + self.levels * LEVEL_DELAY_NS


def _levels_carry_adder(width: int) -> int:
    """Carry-chain adder: dedicated carry logic ≈ 1 level per 8 bits + 2."""
    return 2 + ceil(width / 8)


def _levels_compare(width: int) -> int:
    return 1 + ceil(width / 8)


def _levels_mux(n_inputs: int) -> int:
    if n_inputs <= 1:
        return 0
    return ceil(log2(max(2, n_inputs)) / 2)  # 4:1 per level


def rtm_paths(config: FrameworkConfig, n_units: int = 2) -> list[PathReport]:
    """Candidate paths inside the controller pipeline."""
    return [
        PathReport("decoder.lookup", 3),
        PathReport(
            "dispatcher.read+hazard",
            _levels_mux(config.n_regs) + 2,  # regfile read mux + lock check
        ),
        PathReport("execution.retire", 2),
        PathReport("write_arbiter.grant", _levels_mux(max(1, n_units)) + 2),
        PathReport("serializer.shift", 1),
    ]


def arith_unit_path(config: FrameworkConfig) -> PathReport:
    """Operand steering + adder + flag generation (Table 3.1 datapath)."""
    return PathReport(
        "arith.datapath", 1 + _levels_carry_adder(config.word_bits) + 1
    )


def xisort_paths(n_cells: int, word_bits: int) -> list[PathReport]:
    """The ξ-sort unit's candidate paths: cell compare and the tree fold."""
    tree_levels = ceil(log2(n_cells)) if n_cells > 1 else 1
    return [
        PathReport("xisort.cell_compare", _levels_compare(word_bits) + 1),
        PathReport("xisort.tree_fold", tree_levels + _levels_compare(16)),
        PathReport("xisort.controller_alu", _levels_carry_adder(word_bits)),
    ]


def ack_forwarding_path(config: FrameworkConfig, n_units: int) -> PathReport:
    """Minimal-FU combinational ack forwarding (thesis warning).

    idle ← ack ← arbiter grant ← all units' ready: the grant logic plus the
    forwarding gates land in the *dispatch* cycle, chaining the arbiter path
    onto the dispatcher path.
    """
    base = _levels_mux(config.n_regs) + 2          # dispatcher portion
    grant = _levels_mux(max(1, n_units)) + 2       # arbiter grant portion
    return PathReport("dispatch+ack_forwarding", base + grant + 2)


@dataclass(frozen=True)
class ClockEstimate:
    """Resolved clock for one system configuration."""

    critical: PathReport
    paths: tuple[PathReport, ...]

    @property
    def period_ns(self) -> float:
        return self.critical.delay_ns

    @property
    def fmax_mhz(self) -> float:
        return 1000.0 / self.period_ns


def estimate_clock(
    config: FrameworkConfig,
    n_cells: int = 0,
    ack_forwarding: bool = False,
    n_units: int = 2,
) -> ClockEstimate:
    """Worst path over the whole system → achievable clock."""
    paths = list(rtm_paths(config, n_units))
    paths.append(arith_unit_path(config))
    if n_cells:
        paths.extend(xisort_paths(n_cells, min(config.word_bits, 64)))
    if ack_forwarding:
        paths.append(ack_forwarding_path(config, n_units))
    critical = max(paths, key=lambda p: p.delay_ns)
    return ClockEstimate(critical=critical, paths=tuple(paths))

"""Hardware performance counters: what the framework's blocks actually did.

Aggregates the event counters the components maintain (dispatches, stall
cycles, arbiter grants per port, writes, decode errors, outbound messages)
into one report — the observability a bring-up engineer instruments a real
FPGA design with, and the raw material for the pipeline benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .report import format_table


@dataclass
class CounterReport:
    """Snapshot of every framework counter."""

    cycles: int
    dispatches: int
    stall_cycles: int
    retired_ops: int
    writes: int
    decode_errors: int
    messages_sent: int
    grants_by_port: dict[int, int] = field(default_factory=dict)
    locks_outstanding: int = 0
    #: settle-scheduler counters (``Simulator.kernel_stats.as_dict()``);
    #: empty when the report was built without a simulator in hand
    kernel: dict = field(default_factory=dict)
    #: host-engine counters (``HostEngine.stats.as_dict()``); empty when the
    #: report was built without a driver in hand
    engine: dict = field(default_factory=dict)
    #: link-integrity counters: per-direction fault-injection stats plus the
    #: coprocessor-side reliability receiver's counters; empty on a clean,
    #: plain-framing system
    link: dict = field(default_factory=dict)
    #: state-fault counters (``StateFaultPlan.stats.as_dict()``): upsets
    #: injected/corrected, scrub activity, detection latency; empty on an
    #: unprotected system
    state: dict = field(default_factory=dict)
    #: issue-engine counters (``dispatcher.issue_stats()``): issue mode,
    #: per-cause stall tallies, issue-queue occupancy; empty when the
    #: report was built from a bare RTM without the dispatcher in hand
    issue: dict = field(default_factory=dict)

    @property
    def dispatch_rate(self) -> float:
        """Unit dispatches per cycle (utilisation of the dispatch port)."""
        return self.dispatches / self.cycles if self.cycles else 0.0

    @property
    def stall_fraction(self) -> float:
        """Fraction of cycles the dispatcher spent blocked on hazards."""
        return self.stall_cycles / self.cycles if self.cycles else 0.0

    def table(self) -> str:
        rows = [
            ["cycles", self.cycles],
            ["unit dispatches", self.dispatches],
            ["dispatcher stall cycles", self.stall_cycles],
            ["execution-stage retirements", self.retired_ops],
            ["register writes", self.writes],
            ["decode errors", self.decode_errors],
            ["messages to host", self.messages_sent],
            ["locks outstanding", self.locks_outstanding],
        ]
        for port, grants in sorted(self.grants_by_port.items()):
            rows.append([f"arbiter grants, port {port}", grants])
        return format_table(["counter", "value"], rows, title="framework counters")

    @property
    def ipc(self) -> float:
        """Completed instructions (unit + execution-stage) per cycle."""
        if not self.issue or not self.cycles or self.cycles < 0:
            return 0.0
        return self.issue.get("issued_total", 0) / self.cycles

    def issue_table(self) -> str:
        """Issue-engine counters as a table (empty string when absent)."""
        if not self.issue:
            return ""
        rows = [[name.replace("_", " "), value] for name, value in self.issue.items()]
        if self.cycles and self.cycles > 0:
            rows.append(["instructions per cycle", f"{self.ipc:.3f}"])
        return format_table(["issue counter", "value"], rows,
                            title="issue engine (dispatcher.issue_stats)")

    def kernel_table(self) -> str:
        """Settle-scheduler counters as a table (empty string when absent)."""
        if not self.kernel:
            return ""
        rows = [[name.replace("_", " "), value] for name, value in self.kernel.items()]
        return format_table(["kernel counter", "value"], rows,
                            title="settle scheduler (Simulator.kernel_stats)")

    def engine_table(self) -> str:
        """Host-engine counters as a table (empty string when absent)."""
        if not self.engine:
            return ""
        rows = [[name.replace("_", " "), value] for name, value in self.engine.items()]
        return format_table(["engine counter", "value"], rows,
                            title="host engine (HostEngine.stats)")

    def link_table(self) -> str:
        """Link fault/reliability counters as a table (empty when absent)."""
        if not self.link:
            return ""
        rows = []
        for section, counters in self.link.items():
            for name, value in counters.items():
                rows.append([f"{section}: {name.replace('_', ' ')}", value])
        return format_table(["link counter", "value"], rows,
                            title="link integrity (faults + reliability)")

    def state_table(self) -> str:
        """State-fault counters as a table (empty string when absent)."""
        if not self.state:
            return ""
        rows = [[name.replace("_", " "), value] for name, value in self.state.items()]
        return format_table(["state counter", "value"], rows,
                            title="state faults (StateFaultPlan.stats)")

    @property
    def settle_activations_per_cycle(self) -> float:
        """Scheduled comb executions per cycle — the event kernel's work rate."""
        if not self.kernel or not self.cycles or self.cycles < 0:
            return 0.0
        return (self.kernel["activations"] + self.kernel["always_runs"]) / self.cycles


def collect_counters(soc) -> CounterReport:
    """Read every counter from a (single- or multi-host) system's RTM."""
    rtm = soc.rtm
    sim_cycles = getattr(soc, "_sim_cycles", None)
    return CounterReport(
        cycles=sim_cycles if sim_cycles is not None else -1,
        dispatches=rtm.dispatcher.dispatch_count,
        stall_cycles=rtm.dispatcher.stall_cycles,
        retired_ops=rtm.execution.retired,
        writes=rtm.write_arbiter.writes_performed,
        decode_errors=rtm.decoder.decode_errors,
        messages_sent=rtm.serializer.messages_sent,
        grants_by_port=dict(rtm.write_arbiter.grants_by_port),
        locks_outstanding=rtm.lockmgr.locked_count,
        issue=rtm.dispatcher.issue_stats(),
    )


def counters_for(system, driver=None) -> CounterReport:
    """Counter snapshot for a BuiltSystem/BuiltMultiHostSystem.

    Pass the :class:`repro.host.CoprocessorDriver` in use to fold its host
    engine's counters (in-flight high-water, queue depth, window stalls)
    into the report.
    """
    report = collect_counters(system.soc)
    report.cycles = system.sim.now
    report.kernel = system.sim.kernel_stats.as_dict()
    report.link = link_counters_for(system)
    report.state = state_counters_for(system)
    if driver is not None:
        report.engine = engine_counters_for(driver)
    return report


def kernel_counters_for(sim) -> dict:
    """Settle-scheduler counter snapshot for a bare :class:`Simulator`."""
    return sim.kernel_stats.as_dict()


def engine_counters_for(driver) -> dict:
    """Host-engine counter snapshot for a driver (or a bare HostEngine)."""
    engine = getattr(driver, "engine", driver)
    return engine.stats.as_dict()


def state_counters_for(system) -> dict:
    """State-fault domain counters for a built system (empty if unprotected).

    The flat :class:`~repro.faults.StateFaultStats` dict: upsets injected
    (single/double), inline-ECC corrections, uncorrectable detections,
    scrubber visits/epochs, and detection-latency aggregates.  Host-side
    recovery counters (checkpoints, rollbacks, replays) live in the engine
    section — they are the host's doing, not the coprocessor's.
    """
    soc = getattr(system, "soc", system)
    domain = getattr(soc, "state_domain", None)
    if domain is None:
        return {}
    return domain.stats.as_dict()


def link_counters_for(system) -> dict:
    """Link fault-injection and reliability counters for a built system.

    Sections (each a flat counter dict, present only when applicable):

    * ``downstream_faults``/``upstream_faults`` — what the injected fault
      schedule actually did to each direction's word stream,
    * ``rtm_receiver`` — the coprocessor-side reliable deframer and NACK
      counters (reliable-framing systems only).
    """
    soc = getattr(system, "soc", system)
    counters: dict = {}
    link = getattr(soc, "link", None)
    for section, line in (
        ("downstream_faults", getattr(link, "downstream", None)),
        ("upstream_faults", getattr(link, "upstream", None)),
    ):
        stats = getattr(line, "fault_stats", None)
        if stats is not None:
            counters[section] = stats.as_dict()
    rtm_stats = getattr(getattr(soc, "rtm", None), "msgbuffer", None)
    rtm_stats = getattr(rtm_stats, "reliability_stats", None)
    if rtm_stats:
        counters["rtm_receiver"] = rtm_stats
    return counters

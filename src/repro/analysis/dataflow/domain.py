"""The abstract value domain: integer interval × known-bits mask.

An :class:`AbstractValue` describes the set of concrete integers a signal
(or an intermediate expression) may hold:

* ``lo <= x <= hi`` — the interval component, over plain Python ints so
  pre-mask overflow amounts are representable exactly;
* when ``lo >= 0``, ``(x & kmask) == kval`` — the known-bits component,
  tracked over the low :data:`KNOWN_BITS` bits.  Bitwise operators refine
  it (``x & 0xF0`` proves the low nibble zero); arithmetic drops it.
  Negative intervals carry no known bits.

Magnitudes are saturated at :data:`LIMIT` so a widening loop over
multiplications cannot balloon into bignum territory; saturation only ever
*loses* precision, never soundness.
"""

from __future__ import annotations

from dataclasses import dataclass

#: known-bits are tracked over this many low bits (covers every shipped width)
KNOWN_BITS = 64
_KMASK_ALL = (1 << KNOWN_BITS) - 1

#: interval magnitude saturation bound
LIMIT = 1 << 128


def _sat(v: int) -> int:
    if v > LIMIT:
        return LIMIT
    if v < -LIMIT:
        return -LIMIT
    return v


@dataclass(frozen=True)
class AbstractValue:
    """One abstract integer: interval ``[lo, hi]`` × known bits."""

    lo: int
    hi: int
    kmask: int = 0  # bits (within KNOWN_BITS) whose value is proven
    kval: int = 0   # their proven values (kval & kmask == kval)

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- predicates ----------------------------------------------------------

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi

    def fits(self, mask: int) -> bool:
        """Every value lies inside ``[0, mask]`` — no masking required."""
        return self.lo >= 0 and self.hi <= mask

    def truthiness(self) -> "bool | None":
        """True = provably nonzero, False = provably zero, None = unknown."""
        if self.lo == 0 and self.hi == 0:
            return False
        if self.lo > 0 or self.hi < 0:
            return True
        if self.lo >= 0 and (self.kval & self.kmask):
            return True  # some low bit proven set
        return None


def const(v: int) -> AbstractValue:
    v = _sat(int(v))
    if 0 <= v <= _KMASK_ALL:
        return AbstractValue(v, v, _KMASK_ALL, v)
    return AbstractValue(v, v)


def interval(lo: int, hi: int) -> AbstractValue:
    lo, hi = _sat(lo), _sat(hi)
    if lo == hi:
        return const(lo)
    return AbstractValue(lo, hi, *_known_from_interval(lo, hi))


def top(width: int) -> AbstractValue:
    """Any value a ``width``-bit signal can hold (normal form, so joins
    against it are idempotent)."""
    return _normalize(0, (1 << width) - 1)


def contains(outer: AbstractValue, inner: AbstractValue) -> bool:
    """True when every concretization of ``inner`` lies in ``outer``."""
    if inner.lo < outer.lo or inner.hi > outer.hi:
        return False
    known_both = outer.kmask & inner.kmask
    if known_both != outer.kmask:
        return False  # outer knows a bit inner does not
    return (outer.kval ^ inner.kval) & outer.kmask == 0


BOOL = AbstractValue(0, 1)


def _known_from_interval(lo: int, hi: int) -> tuple[int, int]:
    """High bits forced zero by a small non-negative interval."""
    if lo < 0:
        return 0, 0
    if hi <= _KMASK_ALL:
        known_zero_high = _KMASK_ALL & ~((1 << hi.bit_length()) - 1)
        return known_zero_high, 0
    return 0, 0


def _normalize(lo: int, hi: int, kmask: int = 0, kval: int = 0) -> AbstractValue:
    lo, hi = _sat(lo), _sat(hi)
    if lo < 0:
        kmask, kval = 0, 0
    zm, zv = _known_from_interval(lo, hi)
    kmask |= zm
    kval = (kval | zv) & kmask
    # tighten a constant proven by known bits
    if kmask == _KMASK_ALL and 0 <= lo and hi <= _KMASK_ALL:
        return AbstractValue(kval, kval, kmask, kval)
    return AbstractValue(lo, hi, kmask, kval)


# -- lattice ------------------------------------------------------------------


def join(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    agree = a.kmask & b.kmask & ~(a.kval ^ b.kval)
    return _normalize(
        min(a.lo, b.lo), max(a.hi, b.hi), agree, a.kval & agree
    )


# -- transfer functions -------------------------------------------------------


def add(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    return _normalize(a.lo + b.lo, a.hi + b.hi)


def sub(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    return _normalize(a.lo - b.hi, a.hi - b.lo)


def mul(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    products = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
    return _normalize(min(products), max(products))


def floordiv(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    if b.lo <= 0 <= b.hi:
        # a zero divisor raises at runtime; stay sound for the surviving
        # executions by excluding 0 where the interval allows it
        if b.is_const:
            return interval(-LIMIT, LIMIT)
        cands = []
        for d in (b.lo, -1, 1, b.hi):
            if b.lo <= d <= b.hi and d != 0:
                cands.extend((a.lo // d, a.hi // d))
    else:
        cands = [a.lo // b.lo, a.lo // b.hi, a.hi // b.lo, a.hi // b.hi]
    if not cands:
        return interval(-LIMIT, LIMIT)
    return _normalize(min(cands), max(cands))


def mod(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    if b.lo > 0:
        if a.lo >= 0:
            return _normalize(0, min(a.hi, b.hi - 1))
        return _normalize(0, b.hi - 1)
    if b.hi < 0:
        return _normalize(b.lo + 1, 0)
    return interval(-LIMIT, LIMIT)


def power(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    if a.lo >= 0 and b.lo >= 0 and b.hi <= 256:
        try:
            return _normalize(a.lo ** b.lo, a.hi ** b.hi)
        except OverflowError:  # pragma: no cover - saturated anyway
            pass
    return interval(-LIMIT, LIMIT)


def lshift(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    if b.lo < 0 or b.hi > 256:
        return interval(-LIMIT, LIMIT)
    if a.lo >= 0:
        kmask = kval = 0
        if b.is_const:
            kmask = (a.kmask << b.lo) & _KMASK_ALL | ((1 << b.lo) - 1)
            kval = (a.kval << b.lo) & kmask
        return _normalize(a.lo << b.lo, a.hi << b.hi, kmask, kval)
    return _normalize(a.lo << b.hi, a.hi << b.hi if a.hi >= 0 else a.hi << b.lo)


def rshift(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    if b.lo < 0:
        return interval(-LIMIT, LIMIT)
    if a.lo >= 0:
        kmask = kval = 0
        if b.is_const and b.lo <= KNOWN_BITS:
            kmask = a.kmask >> b.lo
            kval = a.kval >> b.lo
        return _normalize(a.lo >> min(b.hi, 512), a.hi >> min(b.lo, 512),
                          kmask, kval)
    return _normalize(a.lo >> min(b.lo, 512), a.hi >> min(b.lo, 512))


def bitand(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    if a.lo >= 0 and b.lo >= 0:
        hi = min(a.hi, b.hi)
        # bits known zero on either side are zero in the result
        kmask = (a.kmask & ~a.kval) | (b.kmask & ~b.kval) | (a.kmask & b.kmask)
        kval = (a.kval & b.kval) & kmask
        if b.is_const and b.hi <= _KMASK_ALL:
            hi = min(hi, b.hi)
        return _normalize(0, hi, kmask, kval)
    return interval(-LIMIT, LIMIT)


def bitor(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    if a.lo >= 0 and b.lo >= 0:
        hi_bits = max(a.hi, b.hi).bit_length()
        hi = (1 << hi_bits) - 1 if hi_bits else 0
        kmask = (a.kmask & a.kval) | (b.kmask & b.kval) | (a.kmask & b.kmask)
        kval = (a.kval | b.kval) & kmask
        return _normalize(max(a.lo, b.lo), hi, kmask, kval)
    return interval(-LIMIT, LIMIT)


def bitxor(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    if a.lo >= 0 and b.lo >= 0:
        hi_bits = max(a.hi, b.hi).bit_length()
        hi = (1 << hi_bits) - 1 if hi_bits else 0
        kmask = a.kmask & b.kmask
        kval = (a.kval ^ b.kval) & kmask
        return _normalize(0, hi, kmask, kval)
    return interval(-LIMIT, LIMIT)


def neg(a: AbstractValue) -> AbstractValue:
    return _normalize(-a.hi, -a.lo)


def invert(a: AbstractValue) -> AbstractValue:
    return _normalize(-a.hi - 1, -a.lo - 1)


def logical_not(a: AbstractValue) -> AbstractValue:
    t = a.truthiness()
    if t is True:
        return const(0)
    if t is False:
        return const(1)
    return BOOL


def minimum(values: "list[AbstractValue]") -> AbstractValue:
    return _normalize(min(v.lo for v in values), min(v.hi for v in values))


def maximum(values: "list[AbstractValue]") -> AbstractValue:
    return _normalize(max(v.lo for v in values), max(v.hi for v in values))


def absolute(a: AbstractValue) -> AbstractValue:
    if a.lo >= 0:
        return a
    if a.hi <= 0:
        return _normalize(-a.hi, -a.lo)
    return _normalize(0, max(-a.lo, a.hi))


def compare(op: str, a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Abstract comparison: a decided [0,0]/[1,1] or the full boolean."""
    decided: "bool | None" = None
    if op == "<":
        if a.hi < b.lo:
            decided = True
        elif a.lo >= b.hi:
            decided = False
    elif op == "<=":
        if a.hi <= b.lo:
            decided = True
        elif a.lo > b.hi:
            decided = False
    elif op == ">":
        if a.lo > b.hi:
            decided = True
        elif a.hi <= b.lo:
            decided = False
    elif op == ">=":
        if a.lo >= b.hi:
            decided = True
        elif a.hi < b.lo:
            decided = False
    elif op == "==":
        if a.is_const and b.is_const and a.lo == b.lo:
            decided = True
        elif a.hi < b.lo or a.lo > b.hi:
            decided = False
        elif (a.kmask & b.kmask) & (a.kval ^ b.kval):
            decided = False  # a proven bit disagrees
    elif op == "!=":
        if a.is_const and b.is_const and a.lo == b.lo:
            decided = False
        elif a.hi < b.lo or a.lo > b.hi:
            decided = True
        elif (a.kmask & b.kmask) & (a.kval ^ b.kval):
            decided = True
    if decided is None:
        return BOOL
    return const(int(decided))


def apply_mask(a: AbstractValue, mask: int) -> AbstractValue:
    """The committed value after the kernel's ``& mask`` write discipline."""
    if a.fits(mask):
        return _normalize(a.lo, a.hi, a.kmask, a.kval)
    if a.lo >= 0:
        # low bits survive wrapping; the interval collapses to the width
        kmask = a.kmask & mask & _KMASK_ALL
        kval = a.kval & kmask
        return _normalize(0, mask, kmask, kval)
    return AbstractValue(0, mask)


# -- codegen support ----------------------------------------------------------


def vector_width_bits(word_bits: int) -> int:
    """Narrowest power-of-two numpy lane width proven to hold a word.

    Wrap-around arithmetic in an unsigned lane of ``n`` bits is congruent
    mod ``2**n``, and every kernel write masks to ``word_bits <= n`` bits,
    so a lane at least as wide as the word preserves bit-exact results for
    the +, *, <<, &, |, ^ ops the vector executors use.
    """
    for bits in (8, 16, 32, 64):
        if word_bits <= bits:
            return bits
    raise ValueError(f"no numpy lane fits {word_bits}-bit words")

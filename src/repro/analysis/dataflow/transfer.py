"""Abstract evaluation of resolved value expressions.

The lint AST pass attaches a *resolved* symbolic tree to every write site
and ``if`` guard it can model (see
:data:`repro.analysis.lint.astpass.Expr`); this module evaluates such a
tree over the abstract domain.  Evaluation is parameterized by two
callbacks so the solver controls the leaf policy:

* ``sig_value(sig)`` — abstract value of a signal read (``None`` marks the
  read unmodelable, which poisons the whole tree);
* ``attr_ok(owner_id, name)`` — whether an attribute-derived constant may
  be trusted (the solver rejects attributes some process mutates).

A ``None`` result always means *unknown shape*, never *empty set*.
"""

from __future__ import annotations

from typing import Callable, Optional

from ...hdl.signal import mask_for
from . import domain
from .domain import BOOL, AbstractValue

_BIN_OPS = {
    "+": domain.add,
    "-": domain.sub,
    "*": domain.mul,
    "//": domain.floordiv,
    "%": domain.mod,
    "**": domain.power,
    "<<": domain.lshift,
    ">>": domain.rshift,
    "&": domain.bitand,
    "|": domain.bitor,
    "^": domain.bitxor,
}

SigValue = Callable[[object], Optional[AbstractValue]]
AttrOk = Callable[[int, str], bool]


def eval_expr(
    expr: Optional[tuple],
    sig_value: SigValue,
    attr_ok: Optional[AttrOk] = None,
) -> Optional[AbstractValue]:
    """Abstract value of a resolved expression tree, or None if opaque."""
    if expr is None:
        return None
    tag = expr[0]
    if tag == "const":
        return domain.const(expr[1])
    if tag == "attr":
        _, v, owner_id, name = expr
        if attr_ok is not None and not attr_ok(owner_id, name):
            return None
        return domain.const(v)
    if tag == "sig":
        return sig_value(expr[1])
    if tag == "bit":
        sv = sig_value(expr[1])
        if sv is None:
            return None
        return domain.bitand(
            domain.rshift(sv, domain.const(expr[2])), domain.const(1)
        )
    if tag == "bits":
        sv = sig_value(expr[1])
        if sv is None:
            return None
        _, _, hi, lo = expr
        if hi < lo:
            return None
        return domain.bitand(
            domain.rshift(sv, domain.const(lo)),
            domain.const(mask_for(hi - lo + 1)),
        )
    if tag == "bin":
        fn = _BIN_OPS.get(expr[1])
        if fn is None:
            return None
        left = eval_expr(expr[2], sig_value, attr_ok)
        right = eval_expr(expr[3], sig_value, attr_ok)
        if left is None or right is None:
            return None
        return fn(left, right)
    if tag == "un":
        x = eval_expr(expr[2], sig_value, attr_ok)
        if x is None:
            return None
        if expr[1] == "-":
            return domain.neg(x)
        if expr[1] == "+":
            return x
        if expr[1] == "~":
            return domain.invert(x)
        if expr[1] == "not":
            return domain.logical_not(x)
        return None
    if tag == "cmp":
        left = eval_expr(expr[2], sig_value, attr_ok)
        right = eval_expr(expr[3], sig_value, attr_ok)
        if left is None or right is None:
            return None
        return domain.compare(expr[1], left, right)
    if tag == "bool":
        arms = [eval_expr(a, sig_value, attr_ok) for a in expr[2]]
        if any(a is None for a in arms):
            return None
        # the result is always one of the operand values, so the join is
        # sound; short-circuit facts tighten it
        acc = arms[0]
        for a in arms[1:]:
            acc = domain.join(acc, a)
        truths = [a.truthiness() for a in arms]
        if expr[1] == "and":
            if any(t is False for t in truths):
                return domain.const(0)  # some arm is provably 0 → result 0
            if all(t is True for t in truths):
                return arms[-1]
        else:  # "or"
            if truths[0] is True:
                return arms[0]
            if all(t is False for t in truths):
                return domain.const(0)
        return acc
    if tag == "ifexp":
        test = eval_expr(expr[1], sig_value, attr_ok)
        body = eval_expr(expr[2], sig_value, attr_ok)
        orelse = eval_expr(expr[3], sig_value, attr_ok)
        if test is None or body is None or orelse is None:
            return None
        t = test.truthiness()
        if t is True:
            return body
        if t is False:
            return orelse
        return domain.join(body, orelse)
    if tag == "call":
        args = [eval_expr(a, sig_value, attr_ok) for a in expr[2]]
        if any(a is None for a in args):
            return None
        name = expr[1]
        if name == "min":
            return domain.minimum(args)
        if name == "max":
            return domain.maximum(args)
        if name == "abs":
            return domain.absolute(args[0])
        if name == "int":
            return args[0]
        if name == "bool":
            t = args[0].truthiness()
            return BOOL if t is None else domain.const(int(t))
        return None
    return None


def expr_signals(expr: Optional[tuple]) -> set:
    """Every Signal object a resolved expression tree reads."""
    sigs: set = set()
    _collect(expr, sigs)
    return sigs


def _collect(expr: Optional[tuple], sigs: set) -> None:
    if expr is None:
        return
    tag = expr[0]
    if tag in ("sig", "bit", "bits"):
        sigs.add(expr[1])
        return
    if tag in ("const", "attr"):
        return
    if tag == "bin" or tag == "cmp":
        _collect(expr[2], sigs)
        _collect(expr[3], sigs)
    elif tag == "un":
        _collect(expr[2], sigs)
    elif tag == "bool" or tag == "call":
        for a in expr[2]:
            _collect(a, sigs)
    elif tag == "ifexp":
        for a in expr[1:]:
            _collect(a, sigs)


__all__ = ["eval_expr", "expr_signals"]

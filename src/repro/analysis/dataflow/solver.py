"""Widening fixpoint over the elaborated design's write sites.

The solver assigns every numeric signal an :class:`AbstractValue`
describing its committed values, starting from the reset value and joining
the (masked) abstract value of every resolved write site until the
assignment stabilizes.  Joins per signal are counted; after
:data:`WIDEN_AFTER` changes the signal widens straight to its full width,
which bounds the fixpoint at a handful of rounds even through counter
feedback loops.

Soundness policy (the zero-false-positive contract):

* a signal is *tracked* only when every driver attributed to it is
  analyzable — any ``force``/``warp`` site, any opaque writer, or a
  missing write expression drops it to TOP(width);
* a process whose write set may be incomplete (``write_opaque``)
  contaminates the components it provably touches: every signal owned by
  its own component or by a component it already writes goes TOP.  (The
  chain model roots writes at ``self`` and bound ports, so an
  unattributable write lands in exactly those components.)
* undriven signals are external inputs: TOP;
* attribute-derived constants are rejected when any process mutates that
  attribute (``design.mutated_attrs``) or rebinds that global.

Width bounds themselves (`0 <= v <= mask`) hold unconditionally — every
kernel write path masks — which is what lets the compiled backend consume
width-only facts even under fault injection (see
:mod:`repro.hdl.compile.frontend`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ...hdl.signal import Signal
from . import domain
from .domain import AbstractValue
from .transfer import eval_expr, expr_signals

#: per-signal joins tolerated before widening to TOP(width)
WIDEN_AFTER = 3

#: hard ceiling on fixpoint rounds (reached only by pathological designs;
#: every still-unstable signal is then widened)
MAX_ROUNDS = 32


@dataclass
class SiteFact:
    """One write site with its proven pre- and post-mask value ranges."""

    rec: object  # ProcRecord
    site: object  # ResolvedWrite
    target: Signal
    #: abstract value of the written expression *before* the kernel's
    #: width mask — None when the expression is outside the model
    pre: Optional[AbstractValue]
    #: committed contribution (pre masked to the target width)
    post: AbstractValue


@dataclass
class BranchFact:
    """One ``if`` guard with its proven truthiness."""

    rec: object  # ProcRecord
    line: int
    expr: tuple
    #: True = provably always taken, False = provably never, None = unknown
    verdict: Optional[bool]
    #: the test reads at least one signal (config-constant guards are
    #: deliberate mode gating, not dataflow defects)
    signal_dependent: bool


@dataclass
class DataflowResult:
    """The fixpoint and everything the rules/codegen derive from it."""

    values: dict = field(default_factory=dict)  # Signal -> AbstractValue
    tracked: set = field(default_factory=set)  # signals with tight ranges
    site_facts: list = field(default_factory=list)  # [SiteFact]
    branch_facts: list = field(default_factory=list)  # [BranchFact]
    widened: set = field(default_factory=set)  # signals that hit WIDEN_AFTER
    rounds: int = 0
    wall_ms: float = 0.0

    def value_of(self, sig: Signal) -> Optional[AbstractValue]:
        return self.values.get(sig)


def analyze_design(design) -> DataflowResult:
    """Run (or fetch the memoized) dataflow fixpoint for a lint design."""
    cached = getattr(design, "_dataflow_result", None)
    if cached is not None:
        return cached
    result = _solve(design)
    design._dataflow_result = result
    return result


def analyze(target, sim=None, probe: bool = True) -> DataflowResult:
    """Convenience entry: elaborate ``target`` and solve it."""
    from ..lint.engine import _resolve_target
    from ..lint.model import build_design

    top, sim = _resolve_target(target, sim)
    return analyze_design(build_design(top, sim=sim, probe=probe))


def _solve(design) -> DataflowResult:
    t0 = time.perf_counter()
    result = DataflowResult()

    numeric = [s for s in design.signals if s.width is not None]
    sig_set = set(numeric)

    # -- gather per-signal write sites and disqualifiers ---------------------
    sites: dict = {s: [] for s in numeric}
    forced: set = set()
    for rec in design.procs:
        for site in rec.sites:
            if site.kind in ("force", "warp"):
                for t in site.targets:
                    if t in sig_set:
                        forced.add(t)
                continue
            for t in site.targets:
                if t in sig_set:
                    sites[t].append((rec, site))

    # components contaminated by write-opaque processes
    tainted_comps: set = set()
    for rec in design.procs:
        if rec.write_opaque:
            tainted_comps.add(id(rec.comp))
            for sig in list(rec.writes) + list(rec.stages):
                owner = getattr(sig, "owner", None)
                if owner is not None:
                    tainted_comps.add(id(owner))

    mutated_keys = set(design.mutated_attrs)
    rebound_globals: set = set()
    for rec in design.procs:
        rebound_globals.update(rec.nonlocal_stores)

    def attr_ok(owner_id: int, name: str) -> bool:
        if owner_id == 0:
            return name not in rebound_globals
        return (owner_id, name) not in mutated_keys

    # -- decide tracked vs TOP ----------------------------------------------
    values: dict = {}
    tracked: set = set()
    for s in numeric:
        width = s.width
        if (
            s in forced
            or not design.drivers_of(s)
            or id(getattr(s, "owner", None)) in tainted_comps
        ):
            values[s] = domain.top(width)
            continue
        covered = {id(st) for _, st in sites[s]}
        modelable = bool(covered)
        for rec, mode in design.drivers_of(s):
            if rec.write_opaque:
                modelable = False
                break
            rec_site_ids = {
                id(st) for st in rec.sites if s in st.targets
            }
            if not rec_site_ids:
                # probe/kernel saw a write the AST pass didn't attribute
                modelable = False
                break
        if not modelable:
            values[s] = domain.top(width)
            continue
        tracked.add(s)
        values[s] = domain.const(s.reset)

    def sig_value(sig) -> Optional[AbstractValue]:
        av = values.get(sig)
        if av is not None:
            return av
        w = getattr(sig, "width", None)
        if w is None:
            return None
        return domain.top(w)  # out-of-design signal: width bound still holds

    # -- fixpoint -------------------------------------------------------------
    joins: dict = {s: 0 for s in tracked}
    rounds = 0
    pending = set(tracked)
    while pending and rounds < MAX_ROUNDS:
        rounds += 1
        changed: set = set()
        for s in list(pending):
            new = domain.const(s.reset)
            mask = s._mask
            for rec, site in sites[s]:
                pre = eval_expr(site.expr, sig_value, attr_ok)
                contrib = (
                    domain.apply_mask(pre, mask)
                    if pre is not None
                    else domain.top(s.width)
                )
                new = domain.join(new, contrib)
            new = domain.join(values[s], new)  # monotone ascent
            if new != values[s]:
                joins[s] += 1
                if joins[s] > WIDEN_AFTER:
                    new = domain.top(s.width)
                    result.widened.add(s)
                values[s] = new
                changed.add(s)
        if not changed:
            break
        # recompute every tracked signal whose sites read a changed one —
        # cheap enough at design scale to approximate with "all tracked"
        pending = set(tracked)
    else:
        for s in tracked:  # ceiling hit: widen the stragglers
            values[s] = domain.top(s.width)
            result.widened.add(s)

    # -- narrowing ------------------------------------------------------------
    # Widening overshoots saturating counters straight to TOP; a couple of
    # decreasing iterations from the post-fixpoint recover the tight bound
    # (sound: every accepted value still contains a fixpoint of the
    # monotone site-join transfer).
    for _ in range(2):
        shrunk = False
        for s in tracked:
            new = domain.const(s.reset)
            mask = s._mask
            for rec, site in sites[s]:
                pre = eval_expr(site.expr, sig_value, attr_ok)
                contrib = (
                    domain.apply_mask(pre, mask)
                    if pre is not None
                    else domain.top(s.width)
                )
                new = domain.join(new, contrib)
            if new != values[s] and domain.contains(values[s], new):
                values[s] = new
                shrunk = True
        if not shrunk:
            break

    # -- derived facts --------------------------------------------------------
    for rec in design.procs:
        for site in rec.sites:
            if site.kind in ("force", "warp"):
                continue
            pre = eval_expr(site.expr, sig_value, attr_ok)
            for t in site.targets:
                if t not in sig_set:
                    continue
                post = (
                    domain.apply_mask(pre, t._mask)
                    if pre is not None
                    else domain.top(t.width)
                )
                result.site_facts.append(
                    SiteFact(rec=rec, site=site, target=t, pre=pre, post=post)
                )
        for line, bexpr in rec.branches:
            av = eval_expr(bexpr, sig_value, attr_ok)
            verdict = av.truthiness() if av is not None else None
            result.branch_facts.append(
                BranchFact(
                    rec=rec,
                    line=line,
                    expr=bexpr,
                    verdict=verdict,
                    signal_dependent=bool(expr_signals(bexpr)),
                )
            )

    result.values = values
    result.tracked = tracked
    result.rounds = rounds
    result.wall_ms = (time.perf_counter() - t0) * 1000.0
    return result


__all__ = [
    "BranchFact",
    "DataflowResult",
    "SiteFact",
    "analyze",
    "analyze_design",
    "WIDEN_AFTER",
]

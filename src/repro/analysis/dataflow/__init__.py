"""Whole-design value/width dataflow analysis.

Abstract interpretation over the elaborated component/signal graph: every
numeric :class:`~repro.hdl.signal.Signal` is assigned an abstract value in
a product domain (integer interval × known-bits mask), computed as a
widening fixpoint over the resolved write sites the lint AST pass
(:mod:`repro.analysis.lint.astpass`) extracts from every process.

The fixpoint feeds two consumers:

* the ``dataflow.*`` lint rule family
  (:mod:`repro.analysis.lint.rules_dataflow`) — width-overflow and
  truncation proofs, constant signals, dead branches, unreachable
  microcode rows and rename-pool sizing;
* the compiled backend (:mod:`repro.hdl.compile`) — *width-only* range
  facts justify mask elision, dead-branch folding and narrower numpy
  dtypes for vectorized cell arrays (width bounds survive fault injection
  and checkpoint forces, which is why codegen never consumes the tighter
  fixpoint ranges).
"""

from .domain import AbstractValue, vector_width_bits
from .solver import DataflowResult, SiteFact, analyze_design, analyze

__all__ = [
    "AbstractValue",
    "DataflowResult",
    "SiteFact",
    "analyze",
    "analyze_design",
    "vector_width_bits",
]

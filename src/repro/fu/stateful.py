"""The paper's other stateful functional units (§IV.B).

"A stateful unit has a local persistent memory ... Examples of stateful
functional units are histogram calculators, pseudorandom number generators,
and associative memories."  χ-sort gets its own package
(:mod:`repro.xisort`); this module implements the other three examples the
paper names, each as an area-optimised unit with a persistent store and a
variety-code instruction set, demonstrating that the framework hosts
arbitrary stateful accelerators without modification.

All three follow the same conventions as the ξ-sort adapter: persistent
state lives in registers committed at clock edges, every operation has a
cycle cost independent of host interaction, and each unit declares a
``write_profile`` matching its instruction set (the framework's one hard
contract).
"""

from __future__ import annotations

from typing import Optional

from ..hdl import Component
from .base import AreaOptimizedFU, FuComputation
from .protocol import DispatchSample

# ---------------------------------------------------------------------------
# Histogram calculator
# ---------------------------------------------------------------------------

HIST_CLEAR = 0x01      # reset every bin
HIST_SAMPLE = 0x02     # op_a = value → increment its bin (no result)
HIST_READ = 0x03       # op_a = bin index → dst1 = count
HIST_TOTAL = 0x04      # dst1 = total samples
HIST_PEAK = 0x05       # dst1 = index of fullest bin, flags bit0 = non-empty


def _hist_write_profile(variety: int) -> tuple[bool, bool, bool]:
    if variety in (HIST_CLEAR, HIST_SAMPLE):
        return False, False, False
    if variety == HIST_PEAK:
        return True, False, True
    return True, False, False


class HistogramUnit(AreaOptimizedFU):
    """Bins samples in on-chip counters; the host only ships values in.

    A software histogram performs a read-modify-write per sample through the
    memory hierarchy; here each sample is one dispatch, and readout happens
    once at the end — the streaming-accumulator pattern the paper's intro
    motivates.
    """

    write_profile = staticmethod(_hist_write_profile)

    def __init__(
        self,
        name: str,
        word_bits: int,
        parent: Optional[Component] = None,
        n_bins: int = 16,
    ):
        super().__init__(name, word_bits, parent, execute_cycles=1)
        if n_bins < 1 or n_bins & (n_bins - 1):
            raise ValueError("n_bins must be a power of two (address hashing)")
        self.n_bins = n_bins
        self._bins = self.reg("bins", None, reset=(0,) * n_bins)
        self._total = self.reg("total", word_bits, 0)

    def bin_of(self, value: int) -> int:
        """The binning function: low-order bits (a real unit would range-map)."""
        return value & (self.n_bins - 1)

    def compute(self, sample: DispatchSample) -> FuComputation:
        variety = sample.variety
        bins = self._bins.nxt
        if variety == HIST_CLEAR:
            self._bins.nxt = (0,) * self.n_bins
            self._total.nxt = 0
            return FuComputation()
        if variety == HIST_SAMPLE:
            idx = self.bin_of(sample.op_a)
            updated = list(bins)
            updated[idx] += 1
            self._bins.nxt = tuple(updated)
            self._total.nxt = self._total.nxt + 1
            return FuComputation()
        if variety == HIST_READ:
            idx = sample.op_a % self.n_bins
            return FuComputation(data1=bins[idx])
        if variety == HIST_TOTAL:
            return FuComputation(data1=self._total.nxt)
        if variety == HIST_PEAK:
            peak = max(range(self.n_bins), key=lambda i: bins[i])
            return FuComputation(data1=peak, flags=1 if bins[peak] else 0)
        return FuComputation()  # unknown variety: harmless no-op


def histogram_factory(n_bins: int = 16):
    def make(name: str, word_bits: int, parent=None) -> HistogramUnit:
        return HistogramUnit(name, word_bits, parent, n_bins=n_bins)

    return make


# ---------------------------------------------------------------------------
# Pseudorandom number generator
# ---------------------------------------------------------------------------

PRNG_SEED = 0x01   # op_a = seed (no result)
PRNG_NEXT = 0x02   # dst1 = next value


def _prng_write_profile(variety: int) -> tuple[bool, bool, bool]:
    if variety == PRNG_NEXT:
        return True, False, False
    return False, False, False


def xorshift32(state: int) -> int:
    """The reference xorshift32 step (Marsaglia) — shared with the tests."""
    state &= 0xFFFF_FFFF
    state ^= (state << 13) & 0xFFFF_FFFF
    state ^= state >> 17
    state ^= (state << 5) & 0xFFFF_FFFF
    return state & 0xFFFF_FFFF


class PrngUnit(AreaOptimizedFU):
    """A xorshift32 generator: three shift-XOR stages of pure logic.

    Classic FPGA accelerator shape — the whole generator is a handful of
    XOR gates, producing one word per dispatch with no multiplier.
    """

    write_profile = staticmethod(_prng_write_profile)

    def __init__(self, name: str, word_bits: int, parent: Optional[Component] = None):
        super().__init__(name, word_bits, parent, execute_cycles=1)
        self._prng_state = self.reg("prng_state", 32, 0x1)

    def compute(self, sample: DispatchSample) -> FuComputation:
        if sample.variety == PRNG_SEED:
            self._prng_state.nxt = sample.op_a or 1  # xorshift must not be zero
            return FuComputation()
        if sample.variety == PRNG_NEXT:
            value = xorshift32(self._prng_state.nxt)
            self._prng_state.nxt = value
            return FuComputation(data1=value)
        return FuComputation()


def prng_factory():
    def make(name: str, word_bits: int, parent=None) -> PrngUnit:
        return PrngUnit(name, word_bits, parent)

    return make


# ---------------------------------------------------------------------------
# Associative memory (content-addressable memory)
# ---------------------------------------------------------------------------

CAM_CLEAR = 0x01    # empty the memory
CAM_STORE = 0x02    # op_a = key, op_b = value (no result)
CAM_LOOKUP = 0x03   # op_a = key → dst1 = value, flags bit0 = hit
CAM_DELETE = 0x04   # op_a = key (no result)
CAM_COUNT = 0x05    # dst1 = occupied entries

#: flag bit raised on a successful lookup
CAM_FLAG_HIT = 0x01


def _cam_write_profile(variety: int) -> tuple[bool, bool, bool]:
    if variety == CAM_LOOKUP:
        return True, False, True
    if variety == CAM_COUNT:
        return True, False, False
    return False, False, False


class AssociativeMemoryUnit(AreaOptimizedFU):
    """A key→value CAM: every entry compares against the key in parallel.

    In hardware all ``capacity`` comparators fire in one cycle (like the
    ξ-sort match commands), so lookups cost O(1) where a software map costs
    hashing + probing per access.  Replacement is round-robin when full —
    the simplest synthesisable policy.
    """

    write_profile = staticmethod(_cam_write_profile)

    def __init__(
        self,
        name: str,
        word_bits: int,
        parent: Optional[Component] = None,
        capacity: int = 8,
    ):
        super().__init__(name, word_bits, parent, execute_cycles=1)
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        # entries: tuple of (key, value) | None
        self._entries = self.reg("entries", None, reset=(None,) * capacity)
        self._victim = self.reg("victim", 16, 0)

    def compute(self, sample: DispatchSample) -> FuComputation:
        variety = sample.variety
        entries = list(self._entries.nxt)
        if variety == CAM_CLEAR:
            self._entries.nxt = (None,) * self.capacity
            self._victim.nxt = 0
            return FuComputation()
        if variety == CAM_STORE:
            key, value = sample.op_a, sample.op_b
            slot = next(
                (i for i, e in enumerate(entries) if e is not None and e[0] == key),
                None,
            )
            if slot is None:
                slot = next((i for i, e in enumerate(entries) if e is None), None)
            if slot is None:  # full: round-robin replacement
                slot = self._victim.nxt % self.capacity
                self._victim.nxt = slot + 1
            entries[slot] = (key, value)
            self._entries.nxt = tuple(entries)
            return FuComputation()
        if variety == CAM_LOOKUP:
            for entry in entries:
                if entry is not None and entry[0] == sample.op_a:
                    return FuComputation(data1=entry[1], flags=CAM_FLAG_HIT)
            return FuComputation(data1=0, flags=0)
        if variety == CAM_DELETE:
            self._entries.nxt = tuple(
                None if (e is not None and e[0] == sample.op_a) else e
                for e in entries
            )
            return FuComputation()
        if variety == CAM_COUNT:
            return FuComputation(data1=sum(1 for e in entries if e is not None))
        return FuComputation()


def cam_factory(capacity: int = 8):
    def make(name: str, word_bits: int, parent=None) -> AssociativeMemoryUnit:
        return AssociativeMemoryUnit(name, word_bits, parent, capacity=capacity)

    return make

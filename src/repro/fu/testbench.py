"""Standalone functional-unit testbench.

Drives one unit's dispatch port as fast as its ``idle`` signal allows and
acknowledges its result port like an otherwise-idle write arbiter — i.e. it
isolates the unit's own issue rate from the message channel and pipeline
(the paper's per-unit throughput claims, thesis §3.2.2).  Used by the FU
unit tests and the C2/F6b benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..hdl import Component, Simulator
from .base import FunctionalUnit
from .protocol import ProtocolMonitor, Transfer


@dataclass(frozen=True)
class UnitOp:
    """One operation to feed through the unit under test."""

    variety: int
    op_a: int = 0
    op_b: int = 0
    flag_in: int = 0
    dst1: int = 1
    dst2: int = 2
    dst_flag: int = 0
    #: third operand for TernaryDispatchPort units (FMA accumulator)
    op_c: int = 0


class FuTestbench(Component):
    """A unit under test plus an eager dispatcher/arbiter pair."""

    def __init__(
        self,
        unit_factory: Callable[[str, Component], FunctionalUnit],
        name: str = "tb",
        monitor: bool = True,
        ack_every: int = 1,
    ):
        super().__init__(name)
        self.unit = unit_factory("dut", self)
        self.monitor: Optional[ProtocolMonitor] = (
            ProtocolMonitor("mon", self.unit.dp, self.unit.rp, parent=self)
            if monitor
            else None
        )
        if ack_every < 1:
            raise ValueError("ack_every must be >= 1")
        self.ack_every = ack_every  # model a contended arbiter (ack 1-in-k)
        self._queue = self.reg("queue", None, reset=())
        self._ackctr = self.reg("ackctr", 8, 0)
        #: transfers collected from the unit, in arrival order
        self.collected: list[Transfer] = []
        self.dispatched = 0
        self.completed = 0

        @self.comb
        def _drive() -> None:
            dp = self.unit.dp
            queue = self._queue.value
            go = bool(queue) and bool(dp.idle.value)
            if go:
                op: UnitOp = queue[0]
                dp.variety.set(op.variety)
                dp.op_a.set(op.op_a)
                dp.op_b.set(op.op_b)
                dp.flag_in.set(op.flag_in)
                dp.dst1.set(op.dst1)
                dp.dst2.set(op.dst2)
                dp.dst_flag.set(op.dst_flag)
                if hasattr(dp, "op_c"):
                    dp.op_c.set(op.op_c)
            dp.dispatch.set(1 if go else 0)
            rp = self.unit.rp
            # ack_every models arbiter contention: grants land only on every
            # k-th cycle (k=1 ⇒ an uncontended arbiter).
            slot_open = self._ackctr.value == 0
            rp.ack.set(1 if (rp.ready.value and slot_open) else 0)

        @self.seq
        def _tick() -> None:
            dp = self.unit.dp
            if dp.dispatch.value:
                self._queue.nxt = self._queue.value[1:]
                self.dispatched += 1
            rp = self.unit.rp
            if rp.ready.value and rp.ack.value:
                transfer = rp.take()
                self.collected.append(transfer)
                if transfer.last:
                    self.completed += 1
            self._ackctr.nxt = (self._ackctr.value + 1) % self.ack_every

    def enqueue(self, ops: Sequence[UnitOp]) -> None:
        self._queue.force(self._queue.value + tuple(ops))

    @property
    def pending(self) -> int:
        return len(self._queue.value)


def run_unit(
    unit_factory: Callable[[str, Component], FunctionalUnit],
    ops: Sequence[UnitOp],
    max_cycles: int = 100_000,
    ack_every: int = 1,
) -> tuple[FuTestbench, int]:
    """Feed ``ops`` through a fresh unit; returns (testbench, cycles used)."""
    tb = FuTestbench(unit_factory, ack_every=ack_every)
    sim = Simulator(tb)
    sim.reset()
    tb.enqueue(ops)
    start = sim.now
    sim.run_until(lambda: tb.completed >= len(ops) or
                  (tb.pending == 0 and not tb.unit.rp.ready.value and
                   tb.unit.dp.idle.value and
                   not getattr(tb.unit, "busy", False)),
                  max_cycles)
    return tb, sim.now - start

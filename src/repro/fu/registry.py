"""Registry mapping function codes to functional-unit factories.

The framework's decoder consults a *functional unit table* to route
dispatched instructions (thesis Fig. 1.4).  At system-build time the table
is populated from a registry of unit factories; user code registers its own
units the same way the case-study units are registered here, which is the
"integration of hardware accelerators ... without changing the components
themselves" design goal (thesis §1.2).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..hdl import Component
from ..isa.opcodes import Opcode
from .arith import ArithmeticUnit, PipelinedArithmeticUnit
from .base import FunctionalUnit
from .logic import LogicUnit, PipelinedLogicUnit

#: A factory builds a unit given (instance name, word_bits, parent component).
UnitFactory = Callable[[str, int, Optional[Component]], FunctionalUnit]


class UnitRegistry:
    """Function-code → factory mapping used by the system builder."""

    def __init__(self) -> None:
        self._factories: dict[int, UnitFactory] = {}

    def register(self, code: int, factory: UnitFactory) -> None:
        if not 0x10 <= code <= 0xFF:
            raise ValueError(f"unit codes must lie in [0x10, 0xFF], got {code:#x}")
        if code in self._factories:
            raise ValueError(f"unit code {code:#x} already registered")
        self._factories[code] = factory

    def build(self, code: int, name: str, word_bits: int, parent=None) -> FunctionalUnit:
        try:
            factory = self._factories[code]
        except KeyError:
            raise KeyError(f"no functional unit registered for code {code:#x}") from None
        return factory(name, word_bits, parent)

    def codes(self) -> tuple[int, ...]:
        return tuple(sorted(self._factories))

    def copy(self) -> "UnitRegistry":
        dup = UnitRegistry()
        dup._factories = dict(self._factories)
        return dup


def default_registry(pipelined: bool = False) -> UnitRegistry:
    """The registry holding the paper's case-study units.

    With ``pipelined=True`` the performance-optimised wrappers are used,
    trading FPGA resources for one-instruction-per-cycle throughput
    (thesis §2.3.4).
    """
    reg = UnitRegistry()
    if pipelined:
        reg.register(Opcode.ARITH, lambda n, w, p: PipelinedArithmeticUnit(n, w, p))
        reg.register(Opcode.LOGIC, lambda n, w, p: PipelinedLogicUnit(n, w, p))
    else:
        reg.register(Opcode.ARITH, lambda n, w, p: ArithmeticUnit(n, w, p))
        reg.register(Opcode.LOGIC, lambda n, w, p: LogicUnit(n, w, p))
    return reg


def fp_registry(
    base: Optional[UnitRegistry] = None,
    add_depth: int = 6,
    mul_depth: int = 7,
    fma_depth: int = 8,
) -> UnitRegistry:
    """A registry with the pipelined floating-point family added.

    Extends ``base`` (default: the case-study registry) with the FP
    adder, multiplier and fused multiply-add at their default opcodes.
    Kept out of :func:`default_registry` so existing preset systems
    elaborate exactly as before.
    """
    from ..isa.opcodes import Opcode as Op
    from .fp import FpAdder, FpFma, FpMultiplier

    reg = base.copy() if base is not None else default_registry()
    reg.register(Op.FPADD, lambda n, w, p: FpAdder(n, w, p, pipeline_depth=add_depth))
    reg.register(Op.FPMUL, lambda n, w, p: FpMultiplier(n, w, p, pipeline_depth=mul_depth))
    reg.register(Op.FPFMA, lambda n, w, p: FpFma(n, w, p, pipeline_depth=fma_depth))
    return reg


def smem_suite_registry(
    pipelined: bool = False,
    n_cells: int = 64,
    array_kind: str = "vector",
) -> UnitRegistry:
    """The default registry plus every smart-memory unit.

    Registers ξ-sort and the three kit machines (prefix scan, histogram,
    string match) at their default opcodes, all sized ``n_cells``.
    Imported lazily: the smart-memory packages depend on :mod:`repro.fu`,
    so a module-level import would cycle.
    """
    from ..smem.histogram import hist_factory
    from ..smem.match import match_factory
    from ..smem.scan import scan_factory
    from ..xisort.adapter import xisort_factory

    reg = default_registry(pipelined)
    reg.register(Opcode.XISORT, xisort_factory(n_cells, array_kind))
    reg.register(Opcode.SCAN, scan_factory(n_cells, array_kind))
    reg.register(Opcode.HISTO, hist_factory(n_cells, array_kind))
    reg.register(Opcode.MATCH, match_factory(n_cells, array_kind))
    return reg

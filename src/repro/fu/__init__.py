"""repro.fu — the functional-unit framework and stateless case-study units.

Implements the FU signal protocol (paper Fig. 5/6), the three construction
skeletons of thesis §2.3.4 (minimal, area-optimised, pipelined), the
arithmetic unit (Table 3.1) and the logic unit (Table 3.2), plus the unit
registry the system builder populates the functional-unit table from.
"""

from .arith import ArithmeticUnit, ArithResult, PipelinedArithmeticUnit, arith_datapath
from .base import (
    AreaOptimizedFU,
    FuComputation,
    FunctionalUnit,
    FuState,
    MinimalFunctionalUnit,
    PipelinedFunctionalUnit,
)
from .fp import FpAdder, FpFma, FpMultiplier
from .logic import LogicUnit, PipelinedLogicUnit, logic_datapath
from .protocol import (
    DispatchPort,
    DispatchSample,
    TernaryDispatchPort,
    ProtocolMonitor,
    ProtocolViolation,
    ResultPort,
    Transfer,
    WriteSpace,
)
from .registry import UnitRegistry, default_registry, fp_registry
from .stateful import (
    AssociativeMemoryUnit,
    HistogramUnit,
    PrngUnit,
    cam_factory,
    histogram_factory,
    prng_factory,
    xorshift32,
)
from .testbench import FuTestbench, UnitOp, run_unit

__all__ = [
    "ArithmeticUnit",
    "ArithResult",
    "PipelinedArithmeticUnit",
    "arith_datapath",
    "AreaOptimizedFU",
    "FuComputation",
    "FunctionalUnit",
    "FuState",
    "MinimalFunctionalUnit",
    "PipelinedFunctionalUnit",
    "LogicUnit",
    "PipelinedLogicUnit",
    "logic_datapath",
    "DispatchPort",
    "DispatchSample",
    "TernaryDispatchPort",
    "ProtocolMonitor",
    "ProtocolViolation",
    "ResultPort",
    "Transfer",
    "WriteSpace",
    "UnitRegistry",
    "default_registry",
    "fp_registry",
    "FpAdder",
    "FpFma",
    "FpMultiplier",
    "AssociativeMemoryUnit",
    "HistogramUnit",
    "PrngUnit",
    "cam_factory",
    "histogram_factory",
    "prng_factory",
    "xorshift32",
    "FuTestbench",
    "UnitOp",
    "run_unit",
]

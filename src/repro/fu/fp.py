"""Pipelined floating-point functional units (add / mul / FMA).

The latency workload that makes out-of-order issue pay: each unit is a
:class:`~repro.fu.base.PipelinedFunctionalUnit` with a multi-cycle
initiation-interval-1 pipeline, so a dependency-free instruction stream
can keep one result per cycle in flight while a dependent stream pays
the full pipeline depth per operation.

Formats are selected per-operation through the existing variety field
(multi-word values via the configurable register width):

* ``FP_FMT64`` — operands and result are binary64 raw bit patterns
  (requires ``word_bits >= 64``; on narrower machines the op completes
  with a zero result and the ERROR flag, keeping the scoreboard sound);
  clear = binary32 in the low word bits.
* ``FP_NEGATE`` — the adder subtracts (``a - b``); the FMA negates the
  product (``c - a*b``).

The FMA unit reads its accumulator from ``dst1`` (the register it also
writes), declared via ``reads_dst1`` + a :class:`TernaryDispatchPort`:
the decoder adds dst1 to the hazard sources and both dispatchers drive
``op_c`` with its contents.

Flag semantics: ZERO/NEGATIVE describe the packed result; OVERFLOW marks
a finite exact value that rounded to infinity; ERROR marks invalid
operations (NaN result) and unsupported-format dispatches.
"""

from __future__ import annotations

from typing import Optional

from ..hdl import Component
from ..isa.opcodes import (
    FLAG_ERROR,
    FLAG_NEGATIVE,
    FLAG_OVERFLOW,
    FLAG_ZERO,
    FP_FMT64,
    FP_NEGATE,
)
from .base import FuComputation, PipelinedFunctionalUnit
from .protocol import DispatchSample, TernaryDispatchPort
from .softfloat import BIN32, BIN64, FpFormat, fp_add, fp_fma, fp_mul, is_nan


def _result_flags(bits: int, fmt: FpFormat, overflowed: bool, invalid: bool) -> int:
    flags = 0
    if bits & ~(1 << (fmt.bits - 1)) == 0:
        flags |= FLAG_ZERO
    if bits >> (fmt.bits - 1):
        flags |= FLAG_NEGATIVE
    if overflowed:
        flags |= FLAG_OVERFLOW
    if invalid or is_nan(bits, fmt):
        flags |= FLAG_ERROR
    return flags


class _FpUnitBase(PipelinedFunctionalUnit):
    """Shared harness: format select, narrow-machine guard, flag packing."""

    #: pipeline stages of the concrete datapath (thesis Fig. 2.19 style)
    default_depth = 4
    #: FP ops ignore the integer carry chain — dropping src_flag from the
    #: hazard sources is what lets renaming unserialize flag-sharing streams
    reads_flag = False

    def __init__(
        self,
        name: str,
        word_bits: int,
        parent: Optional[Component] = None,
        pipeline_depth: Optional[int] = None,
        fifo_depth: Optional[int] = None,
    ):
        super().__init__(
            name,
            word_bits,
            parent,
            pipeline_depth=(
                pipeline_depth if pipeline_depth is not None else self.default_depth
            ),
            fifo_depth=fifo_depth,
        )

    def compute(self, sample: DispatchSample) -> FuComputation:
        fmt64 = bool(sample.variety & FP_FMT64)
        if fmt64 and self.word_bits < 64:
            # The write profile promised a data result; deliver one (zero)
            # with ERROR set, or the locked destination never unlocks.
            return FuComputation(data1=0, flags=FLAG_ERROR)
        fmt = BIN64 if fmt64 else BIN32
        mask = (1 << fmt.bits) - 1
        bits, overflowed, invalid = self._op(sample, fmt, mask)
        return FuComputation(
            data1=bits, flags=_result_flags(bits, fmt, overflowed, invalid)
        )

    def _op(self, sample: DispatchSample, fmt: FpFormat, mask: int):
        raise NotImplementedError


class FpAdder(_FpUnitBase):
    """Pipelined FP add/subtract (``FP_NEGATE`` selects ``a - b``)."""

    default_depth = 6
    latency_cycles = 6

    def _op(self, sample: DispatchSample, fmt: FpFormat, mask: int):
        a = sample.op_a & mask
        b = sample.op_b & mask
        if sample.variety & FP_NEGATE:
            b ^= 1 << (fmt.bits - 1)
        return fp_add(a, b, fmt)


class FpMultiplier(_FpUnitBase):
    """Pipelined FP multiplier."""

    default_depth = 7
    latency_cycles = 7

    def _op(self, sample: DispatchSample, fmt: FpFormat, mask: int):
        return fp_mul(sample.op_a & mask, sample.op_b & mask, fmt)


class FpFma(_FpUnitBase):
    """Pipelined fused multiply-add: ``dst1 := ±(a*b) + dst1``.

    Single rounding of the exact product-plus-accumulator, the way a
    hardware FMA datapath keeps the full-width product internal.
    """

    default_depth = 8
    latency_cycles = 8
    dispatch_port_cls = TernaryDispatchPort
    reads_dst1 = True

    def _op(self, sample: DispatchSample, fmt: FpFormat, mask: int):
        return fp_fma(
            sample.op_a & mask,
            sample.op_b & mask,
            sample.op_c & mask,
            fmt,
            negate_product=bool(sample.variety & FP_NEGATE),
        )

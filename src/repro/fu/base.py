"""Functional-unit skeletons: the three construction patterns of thesis §2.3.4.

* :class:`MinimalFunctionalUnit` (thesis Fig. 2.16 / paper Fig. 5) —
  combinational logic followed by an output register bank; the dispatch
  strobe is the clock enable; the acknowledgement is forwarded
  combinationally into ``idle`` so a new instruction can, in principle, be
  accepted every cycle (the thesis warns this lengthens the critical path —
  see ``repro.analysis.timing``).
* :class:`AreaOptimizedFU` (thesis Fig. 2.18 / paper Fig. 6) — a finite
  state machine holding one operation in flight, sequencing its results to
  the write arbiter one :class:`Transfer` per grant.  Single-cycle
  computations latch their result at the dispatch edge, giving the paper's
  "able to accept an instruction every second clock cycle" for the
  case-study units.
* :class:`PipelinedFunctionalUnit` (thesis Fig. 2.19) — a k-stage internal
  pipeline with result FIFOs; accepts one instruction per cycle until the
  FIFOs fill.  Destination register numbers are enqueued at dispatch time;
  data values follow k cycles later, so the FIFO occupancy computed at
  dispatch bounds everything and the pipeline itself never stalls
  (thesis §2.3.4).

Concrete units override :meth:`FunctionalUnit.compute`, mapping a latched
:class:`DispatchSample` to a :class:`FuComputation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional

from ..hdl import Component
from .protocol import DispatchPort, DispatchSample, ResultPort, Transfer


@dataclass(frozen=True)
class FuComputation:
    """The outputs of one functional-unit operation.

    ``None`` fields produce no register write — e.g. CMP leaves ``data1``
    as None (the "Output data" variety bit is clear) and only writes flags.
    """

    data1: Optional[int] = None
    data2: Optional[int] = None
    flags: Optional[int] = None

    def transfers(self, sample: DispatchSample) -> tuple[Transfer, ...]:
        """Expand into write-arbiter transfers using the side-band registers.

        The flag write rides along with the first data write (separate
        memories, one grant); a second data result needs its own transfer.
        """
        out: list[Transfer] = []
        flag_reg = sample.dst_flag if self.flags is not None else None
        flag_value = self.flags if self.flags is not None else 0
        if self.data1 is not None:
            out.append(
                Transfer(sample.dst1, self.data1, flag_reg, flag_value, last=True)
            )
        elif self.flags is not None:
            out.append(Transfer(None, 0, flag_reg, flag_value, last=True))
        if self.data2 is not None:
            if out:
                out[0] = Transfer(
                    out[0].data_reg, out[0].data_value,
                    out[0].flag_reg, out[0].flag_value, last=False,
                )
            out.append(Transfer(sample.dst2, self.data2, None, 0, last=True))
        return tuple(out)


class FunctionalUnit(Component):
    """Common base: owns the two protocol port bundles."""

    #: cycles from dispatch to result availability (timing model input)
    latency_cycles: int = 1
    #: the dispatch-port bundle class to elaborate (units needing extra
    #: operand buses — e.g. FMA's accumulator — override with a subclass)
    dispatch_port_cls = DispatchPort
    #: the unit reads its dst1 register as a third operand (``op_c``); the
    #: decoder adds dst1 to the hazard sources and the dispatcher drives
    #: ``op_c`` with its contents
    reads_dst1: bool = False
    #: the unit samples ``flag_in`` (the ADC/SBB carry chain); units that
    #: ignore it clear this so the decoder omits src_flag from the hazard
    #: sources — the read-profile counterpart of the write profile
    reads_flag: bool = True

    def __init__(
        self,
        name: str,
        word_bits: int,
        parent: Optional[Component] = None,
        flag_bits: int = 8,
    ):
        super().__init__(name, parent)
        self.word_bits = word_bits
        self.dp = self.dispatch_port_cls(self, "dp", word_bits, flag_bits)
        self.rp = ResultPort(self, "rp", word_bits, flag_bits)

    def compute(self, sample: DispatchSample) -> FuComputation:
        raise NotImplementedError


def _data_only_profile(variety: int) -> tuple[bool, bool, bool]:
    return True, False, False


class MinimalFunctionalUnit(FunctionalUnit):
    """Thesis Fig. 2.16: combinational function + one output register bank.

    Only a single data output (no second result, no flags).  With
    ``ack_forwarding=True`` (the OR/AND/NOT cloud in the figure), ``idle``
    is asserted combinationally while the pending output is acknowledged in
    the same cycle, enabling back-to-back dispatch every cycle; disabled,
    the unit accepts at best every second cycle.  The thesis recommends the
    forwarding only "for simple coprocessor designs not requiring high
    performance" because it lengthens the critical path.

    Minimal units write exactly one data result and never flags, and their
    ``write_profile`` says so — the decoder must lock precisely what the
    unit will write, or the scoreboard deadlocks (see DESIGN.md on the
    write-profile contract).
    """

    #: consulted by the functional unit table (decoder lock sets)
    write_profile = staticmethod(_data_only_profile)

    def __init__(
        self,
        name: str,
        word_bits: int,
        parent: Optional[Component] = None,
        ack_forwarding: bool = True,
    ):
        super().__init__(name, word_bits, parent)
        self.ack_forwarding = ack_forwarding
        self._data_ready = self.reg("data_ready", 1, 0)
        self._data_out = self.reg("data_out", word_bits, 0)
        self._dst_out = self.reg("dst_out", 8, 0)

        @self.comb
        def _drive() -> None:
            ready = self._data_ready.value
            self.rp.present(
                Transfer(self._dst_out.value, self._data_out.value) if ready else None
            )
            if self.ack_forwarding:
                # "idle is asserted if either no output data is pending or if
                # pending output data is acknowledged in the current cycle".
                self.dp.idle.set((not ready) or bool(self.rp.ack.value))
            else:
                self.dp.idle.set(not ready)

        @self.seq
        def _tick() -> None:
            if self.dp.dispatch.value:
                sample = self.dp.sample()
                result = self.compute(sample)
                if result.data1 is None:
                    raise ValueError(
                        f"{self.path}: minimal units must produce a data result"
                    )
                self._data_out.nxt = result.data1
                self._dst_out.nxt = sample.dst1
                self._data_ready.nxt = 1
            elif self.rp.ack.value:
                self._data_ready.nxt = 0

        # Interacting with dispatch or the arbiter is always a real edge; a
        # minimal unit with nothing pending has no horizon at all.
        self.wheel(
            lambda: 0 if (self.dp.dispatch.value or self._data_ready.value) else None,
            lambda n: None,
        )


class FuState(IntEnum):
    """States of the area-optimised protocol FSM (thesis Fig. 2.18)."""

    IDLE = 0
    EXECUTE = 1
    SEND = 2  # walking the transfer burst (Send Data 1/2 [+Flags], Send Data 2)


class AreaOptimizedFU(FunctionalUnit):
    """Thesis Fig. 2.18: one operation in flight, FSM-sequenced transfers.

    ``execute_cycles=1`` latches the result directly at the dispatch edge
    (the combinational datapath settles during the dispatch cycle), so a
    one-transfer instruction completes dispatch→send→idle in two cycles.
    Larger values insert EXECUTE states for multi-cycle datapaths.
    """

    def __init__(
        self,
        name: str,
        word_bits: int,
        parent: Optional[Component] = None,
        execute_cycles: int = 1,
    ):
        super().__init__(name, word_bits, parent)
        if execute_cycles < 1:
            raise ValueError("execute_cycles must be >= 1")
        self.execute_cycles = execute_cycles
        self.latency_cycles = execute_cycles
        self._state = self.reg("state", 2, FuState.IDLE)
        self._countdown = self.reg("countdown", 16, 0)
        self._sample = self.reg("sample", None, reset=None)
        self._pending = self.reg("pending", None, reset=())

        @self.comb
        def _drive() -> None:
            state = self._state.value
            self.dp.idle.set(1 if state == FuState.IDLE else 0)
            pending = self._pending.value
            if state == FuState.SEND and pending:
                self.rp.present(pending[0])
            else:
                self.rp.present(None)

        @self.seq
        def _tick() -> None:
            state = self._state.value
            if state == FuState.IDLE:
                if self.dp.dispatch.value:
                    sample = self.dp.sample()
                    if self.execute_cycles == 1:
                        self._finish(sample)
                    else:
                        self._sample.nxt = sample
                        self._countdown.nxt = self.execute_cycles - 1
                        self._state.nxt = FuState.EXECUTE
            elif state == FuState.EXECUTE:
                remaining = self._countdown.value - 1
                if remaining > 0:
                    self._countdown.nxt = remaining
                else:
                    self._finish(self._sample.value)
            elif state == FuState.SEND:
                if self.rp.ack.value:
                    rest = self._pending.value[1:]
                    self._pending.nxt = rest
                    if not rest:
                        self._state.nxt = FuState.IDLE

        self.wheel(self._wheel_horizon, self._wheel_skip)

    def _wheel_horizon(self) -> Optional[int]:
        state = self._state.value
        if state == FuState.EXECUTE:
            # every EXECUTE edge but the last only decrements the countdown
            d = self._countdown.value - 1
            return d if d > 0 else 0
        if state == FuState.SEND:
            return 0  # arbiter interaction: real edges
        return 0 if self.dp.dispatch.value else None

    def _wheel_skip(self, n: int) -> None:
        if self._state.value == FuState.EXECUTE:
            self._countdown.warp(self._countdown.value - n)

    def _finish(self, sample: DispatchSample) -> None:
        transfers = self.compute(sample).transfers(sample)
        if transfers:
            self._pending.nxt = transfers
            self._state.nxt = FuState.SEND
        else:
            self._state.nxt = FuState.IDLE  # Fig. 2.18 "Completion / No output"

    @property
    def state(self) -> FuState:
        return FuState(self._state.value)


class PipelinedFunctionalUnit(FunctionalUnit):
    """Thesis Fig. 2.19: fully pipelined unit with result FIFOs."""

    def __init__(
        self,
        name: str,
        word_bits: int,
        parent: Optional[Component] = None,
        pipeline_depth: int = 3,
        fifo_depth: Optional[int] = None,
    ):
        super().__init__(name, word_bits, parent)
        if pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        self.pipeline_depth = pipeline_depth
        self.latency_cycles = pipeline_depth
        # "configure the FIFO buffers to hold more data elements than there
        # are pipeline stages" (thesis §2.3.4).
        self.fifo_depth = fifo_depth if fifo_depth is not None else pipeline_depth + 2
        if self.fifo_depth <= pipeline_depth:
            raise ValueError("fifo_depth must exceed pipeline_depth")
        # In-flight entries: tuples (remaining_cycles, sample).
        self._flight = self.reg("flight", None, reset=())
        # Completed transfers awaiting the arbiter.
        self._results = self.reg("results", None, reset=())
        # Instruction slots claimed against fifo_depth (claimed at dispatch,
        # released when the burst's last transfer is acknowledged).
        self._slots = self.reg("slots", 16, 0)

        @self.comb
        def _drive() -> None:
            self.dp.idle.set(1 if self._slots.value < self.fifo_depth else 0)
            results = self._results.value
            self.rp.present(results[0] if results else None)

        @self.seq
        def _tick() -> None:
            flight = self._flight.value
            if not (flight or self._results.value or self.dp.dispatch.value
                    or self.rp.ack.value):
                return  # empty pipeline: don't rebuild (or stage) anything
            results = list(self._results.value)
            slots = self._slots.value
            # Drain toward the arbiter.
            if self.rp.ack.value and results:
                first = results.pop(0)
                if first.last:
                    slots -= 1
            # Advance the pipeline.
            advanced = []
            for remaining, sample in flight:
                if remaining <= 1:
                    transfers = self.compute(sample).transfers(sample)
                    if transfers:
                        results.extend(transfers)
                    else:
                        slots -= 1  # no-output op retires immediately
                else:
                    advanced.append((remaining - 1, sample))
            # Accept a new dispatch.
            if self.dp.dispatch.value:
                advanced.append((self.pipeline_depth, self.dp.sample()))
                slots += 1
            self._flight.nxt = tuple(advanced)
            self._results.nxt = tuple(results)
            self._slots.nxt = slots

        self.wheel(self._wheel_horizon, self._wheel_skip)

    @property
    def busy(self) -> bool:
        """Work in flight in the pipeline or result FIFO.

        Distinct from ``idle``, which is an *acceptance* signal: an II=1
        pipeline keeps ``idle`` high while operations drain through it.
        """
        return bool(self._slots.value)

    def _wheel_horizon(self) -> Optional[int]:
        if self.dp.dispatch.value or self.rp.ack.value or self._results.value:
            return 0  # dispatch/drain edges do real work
        flight = self._flight.value
        if flight:
            # pure aging until the earliest in-flight op reaches its last stage
            d = min(r for r, _ in flight) - 1
            return d if d > 0 else 0
        return None

    def _wheel_skip(self, n: int) -> None:
        flight = self._flight.value
        if flight:
            self._flight.warp(tuple((r - n, s) for r, s in flight))

    @property
    def in_flight(self) -> int:
        return len(self._flight.value)

    @property
    def results_queued(self) -> int:
        return len(self._results.value)

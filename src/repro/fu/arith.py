"""The arithmetic unit — stateless case study (thesis §3.2.2, Table 3.1).

One adder datapath steered by six variety bits implements the whole
instruction family: ADD, ADC, SUB, SBB, INC, DEC, NEG, CMP and CMPB.
Multi-word operation is supported "through an externally provided carry bit
read from the input carry flag" — chained ADC/SBB over 32-bit limbs, which
`repro.host.session` exposes and `tests/integration/test_multiword.py`
exercises against Python big-int arithmetic.

The pure function :func:`arith_datapath` is the combinational cloud; the
:class:`ArithmeticUnit` wraps it in the area-optimised skeleton (the
case-study units "are designed as simple as possible" and accept one
instruction every second cycle), and :class:`PipelinedArithmeticUnit`
offers the performance-optimised wrapper for the throughput benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.opcodes import (
    ARITH_COMPL_SECOND,
    ARITH_FIRST_ZERO,
    ARITH_FIXED_CARRY,
    ARITH_OUTPUT_DATA,
    ARITH_SECOND_ZERO,
    ARITH_USE_CARRY,
    FLAG_CARRY,
    FLAG_NEGATIVE,
    FLAG_OVERFLOW,
    FLAG_ZERO,
)
from .base import AreaOptimizedFU, FuComputation, PipelinedFunctionalUnit
from .protocol import DispatchSample


@dataclass(frozen=True)
class ArithResult:
    """Settled outputs of the adder datapath."""

    value: int
    flags: int
    writes_data: bool


def arith_datapath(variety: int, a: int, b: int, flag_in: int, width: int) -> ArithResult:
    """The Table 3.1 datapath: operand steering, one adder, flag generation.

    Parameters mirror the unit's input ports; ``width`` is the register
    word size.  Returns the sum (masked), the output flag vector (carry,
    zero, negative, signed overflow) and whether the "Output data" variety
    bit requests a register write.
    """
    mask = (1 << width) - 1
    a &= mask
    b &= mask
    if variety & ARITH_FIRST_ZERO:
        a = 0
    if variety & ARITH_SECOND_ZERO:
        b = 0
    if variety & ARITH_COMPL_SECOND:
        b = ~b & mask
    if variety & ARITH_USE_CARRY:
        carry_in = flag_in & FLAG_CARRY
    elif variety & ARITH_FIXED_CARRY:
        carry_in = 1
    else:
        carry_in = 0
    total = a + b + carry_in
    value = total & mask
    sign_bit = 1 << (width - 1)
    flags = 0
    if total >> width:
        flags |= FLAG_CARRY
    if value == 0:
        flags |= FLAG_ZERO
    if value & sign_bit:
        flags |= FLAG_NEGATIVE
    # Signed overflow: both addends share a sign the result does not.
    if (a & sign_bit) == (b & sign_bit) and (value & sign_bit) != (a & sign_bit):
        flags |= FLAG_OVERFLOW
    return ArithResult(value, flags, bool(variety & ARITH_OUTPUT_DATA))


def _compute(sample: DispatchSample, width: int) -> FuComputation:
    result = arith_datapath(sample.variety, sample.op_a, sample.op_b, sample.flag_in, width)
    return FuComputation(
        data1=result.value if result.writes_data else None,
        flags=result.flags,
    )


class ArithmeticUnit(AreaOptimizedFU):
    """Area-optimised arithmetic unit (the thesis case-study configuration)."""

    def __init__(self, name: str = "arith", word_bits: int = 32, parent=None):
        super().__init__(name, word_bits, parent, execute_cycles=1)

    def compute(self, sample: DispatchSample) -> FuComputation:
        return _compute(sample, self.word_bits)


class PipelinedArithmeticUnit(PipelinedFunctionalUnit):
    """Performance-optimised variant: same datapath behind a 2-stage pipeline."""

    def __init__(
        self,
        name: str = "arith_p",
        word_bits: int = 32,
        parent=None,
        pipeline_depth: int = 2,
        fifo_depth=None,
    ):
        super().__init__(name, word_bits, parent, pipeline_depth, fifo_depth)

    def compute(self, sample: DispatchSample) -> FuComputation:
        return _compute(sample, self.word_bits)

"""The functional-unit signal protocol.

Each functional unit connects to the framework through two port bundles
(paper Fig. 5; thesis §2.3.1/2.3.2):

* :class:`DispatchPort` — from the dispatcher: a ``dispatch`` strobe
  qualified by the unit's ``idle`` signal, the 8-bit ``variety_code``,
  operand buses read from the register file, the input flag vector, and the
  destination register numbers travelling as side-band data (so the write
  arbiter learns where results go without central bookkeeping).
* :class:`ResultPort` — toward the write arbiter: one :class:`Transfer` at
  a time under a ``ready``/``ack`` handshake.  Because the main register
  file and the flag register file are distinct memories with independent
  write paths (thesis Fig. 1.4), a single transfer may carry a data write
  *and* a flag write together; an instruction with **two** data results
  needs two transfers — hence the distinct "Send Data 1/2 (+Flags)" and
  "Send Data 2" states of the Fig. 6 / 2.18 FSM.

The module also provides :class:`ProtocolMonitor`, an assertion checker the
tests attach to any unit to verify conformance (dispatch only while idle,
payload stability while ``ready`` awaits ``ack``, no spurious acks).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional

from ..hdl import Component, Signal


class WriteSpace(IntEnum):
    """Register space a write targets (used by the lock manager)."""

    DATA = 0
    FLAG = 1


class DispatchPort:
    """Dispatcher → functional-unit signal bundle."""

    def __init__(self, comp: Component, name: str, word_bits: int, flag_bits: int = 8):
        self.word_bits = word_bits
        self.dispatch: Signal = comp.signal(f"{name}_dispatch", 1)
        self.variety: Signal = comp.signal(f"{name}_variety", 8)
        self.op_a: Signal = comp.signal(f"{name}_op_a", word_bits)
        self.op_b: Signal = comp.signal(f"{name}_op_b", word_bits)
        self.flag_in: Signal = comp.signal(f"{name}_flag_in", flag_bits)
        self.dst1: Signal = comp.signal(f"{name}_dst1", 8)
        self.dst2: Signal = comp.signal(f"{name}_dst2", 8)
        self.dst_flag: Signal = comp.signal(f"{name}_dst_flag", 8)
        #: functional unit → dispatcher: able to accept an instruction
        self.idle: Signal = comp.signal(f"{name}_idle", 1, reset=1)

    def drive_op_c(self, regfile, reg: int) -> None:
        """Drive the third operand bus from register ``reg``.

        The base bundle has no such bus, so this is a no-op — dispatchers
        call it unconditionally and the port's class decides whether a
        register-file read happens (see :class:`TernaryDispatchPort`).
        """

    def sample(self) -> "DispatchSample":
        """Capture the current settled values (used inside seq processes)."""
        return DispatchSample(
            variety=self.variety.value,
            op_a=self.op_a.value,
            op_b=self.op_b.value,
            flag_in=self.flag_in.value,
            dst1=self.dst1.value,
            dst2=self.dst2.value,
            dst_flag=self.dst_flag.value,
        )


class TernaryDispatchPort(DispatchPort):
    """Dispatch port with a third read operand bus (``op_c``).

    Used by units that read their first destination register as an
    accumulator (fused multiply-add): the dispatcher drives ``op_c`` with
    the current dst1 contents alongside the two source operands.  Units
    declare it via the ``dispatch_port_cls`` hook, so systems without such
    units elaborate exactly the same signals as before.
    """

    def __init__(self, comp: Component, name: str, word_bits: int, flag_bits: int = 8):
        super().__init__(comp, name, word_bits, flag_bits)
        self.op_c: Signal = comp.signal(f"{name}_op_c", word_bits)

    def drive_op_c(self, regfile, reg: int) -> None:
        self.op_c.set(regfile.read(reg))

    def sample(self) -> "DispatchSample":
        base = super().sample()
        return DispatchSample(
            variety=base.variety,
            op_a=base.op_a,
            op_b=base.op_b,
            flag_in=base.flag_in,
            dst1=base.dst1,
            dst2=base.dst2,
            dst_flag=base.dst_flag,
            op_c=self.op_c.value,
        )


@dataclass(frozen=True)
class DispatchSample:
    """Latched copy of a dispatch transaction."""

    variety: int
    op_a: int
    op_b: int
    flag_in: int
    dst1: int
    dst2: int
    dst_flag: int
    #: third operand (accumulator), driven only for TernaryDispatchPort units
    op_c: int = 0


@dataclass(frozen=True)
class Transfer:
    """One write-arbiter grant's worth of register writes.

    ``data_reg`` / ``flag_reg`` of ``None`` mean the respective half is
    absent.  ``last`` marks the final transfer of an instruction's burst,
    letting the arbiter release the instruction's remaining locks.
    """

    data_reg: Optional[int] = None
    data_value: int = 0
    flag_reg: Optional[int] = None
    flag_value: int = 0
    last: bool = True

    @property
    def has_data(self) -> bool:
        return self.data_reg is not None

    @property
    def has_flags(self) -> bool:
        return self.flag_reg is not None


class ResultPort:
    """Functional-unit → write-arbiter signal bundle (one transfer per grant)."""

    def __init__(self, comp: Component, name: str, word_bits: int, flag_bits: int = 8):
        self.word_bits = word_bits
        self.ready: Signal = comp.signal(f"{name}_ready", 1)
        self.data_valid: Signal = comp.signal(f"{name}_data_valid", 1)
        self.data_reg: Signal = comp.signal(f"{name}_data_reg", 8)
        self.data_value: Signal = comp.signal(f"{name}_data_value", word_bits)
        self.flag_valid: Signal = comp.signal(f"{name}_flag_valid", 1)
        self.flag_reg: Signal = comp.signal(f"{name}_flag_reg", 8)
        self.flag_value: Signal = comp.signal(f"{name}_flag_value", flag_bits)
        self.last: Signal = comp.signal(f"{name}_last", 1, reset=1)
        #: write arbiter → unit: the presented transfer commits this edge
        self.ack: Signal = comp.signal(f"{name}_ack", 1)

    def present(self, transfer: Optional[Transfer]) -> None:
        """Drive the port from a pending transfer (or deassert when None)."""
        if transfer is None:
            self.ready.set(0)
            return
        self.ready.set(1)
        self.data_valid.set(1 if transfer.has_data else 0)
        if transfer.has_data:
            self.data_reg.set(transfer.data_reg)
            self.data_value.set(transfer.data_value)
        self.flag_valid.set(1 if transfer.has_flags else 0)
        if transfer.has_flags:
            self.flag_reg.set(transfer.flag_reg)
            self.flag_value.set(transfer.flag_value)
        self.last.set(1 if transfer.last else 0)

    def take(self) -> Transfer:
        """Read the presented transfer (arbiter side, settled values)."""
        return Transfer(
            data_reg=self.data_reg.value if self.data_valid.value else None,
            data_value=self.data_value.value,
            flag_reg=self.flag_reg.value if self.flag_valid.value else None,
            flag_value=self.flag_value.value,
            last=bool(self.last.value),
        )

    def _snapshot(self) -> tuple:
        return (
            self.data_valid.value,
            self.data_reg.value,
            self.data_value.value,
            self.flag_valid.value,
            self.flag_reg.value,
            self.flag_value.value,
            self.last.value,
        )


class ProtocolViolation(AssertionError):
    """A functional unit (or the framework) broke the signal protocol."""


class ProtocolMonitor(Component):
    """Checks protocol invariants cycle by cycle (testbench instrument).

    Invariants:

    * the dispatcher never strobes ``dispatch`` while the unit is not idle;
    * while ``ready`` is high and unacknowledged, the presented transfer
      must not change;
    * ``ack`` is never asserted without ``ready``;
    * every transfer carries at least one write half.
    """

    def __init__(
        self,
        name: str,
        dispatch_port: DispatchPort,
        result_port: ResultPort,
        parent: Optional[Component] = None,
    ):
        super().__init__(name, parent)
        self.dp = dispatch_port
        self.rp = result_port
        self.dispatch_count = 0
        self.transfer_count = 0
        self._held: Optional[tuple] = None

        @self.seq
        def _check() -> None:
            dp, rp = self.dp, self.rp
            if dp.dispatch.value:
                if not dp.idle.value:
                    raise ProtocolViolation(
                        f"{self.path}: dispatch strobed while unit not idle"
                    )
                self.dispatch_count += 1
            if rp.ack.value and not rp.ready.value:
                raise ProtocolViolation(f"{self.path}: ack asserted without ready")
            if rp.ready.value:
                if not (rp.data_valid.value or rp.flag_valid.value):
                    raise ProtocolViolation(
                        f"{self.path}: transfer presented with no write halves"
                    )
                current = rp._snapshot()
                if self._held is not None and current != self._held:
                    raise ProtocolViolation(
                        f"{self.path}: pending transfer changed while awaiting ack "
                        f"({self._held} -> {current})"
                    )
                if rp.ack.value:
                    self.transfer_count += 1
                    self._held = None
                else:
                    self._held = current
            else:
                self._held = None

        # Checking is only needed on edges where the watched protocol moves:
        # a quiet port pair (no dispatch, nothing presented) has no horizon.
        self.wheel(
            lambda: 0 if (dispatch_port.dispatch.value
                          or result_port.ready.value
                          or result_port.ack.value) else None,
            lambda n: None,
        )

"""Exact-integer IEEE-754 datapaths for the floating-point units.

The FP functional units operate on raw register bit patterns, so the
datapath here works entirely in integers: unpack sign/exponent/
significand, compute the exact (unbounded-precision) result, then apply
one round-to-nearest-even step while packing.  That mirrors the hardware
structure (wide internal significand + single rounder) and sidesteps any
double-rounding question a Python-``float`` shortcut would raise —
particularly for fused multiply-add, where the product must not be
rounded before the addend joins.

Supported formats: binary32 and binary64 (selected per-operation by the
``FP_FMT64`` variety bit).  Semantics follow IEEE 754-2019
round-to-nearest-even: subnormals, signed zeros (exact cancellation
yields +0; sums of negative zeros yield -0), infinities, and quiet-NaN
results for invalid operations (0·∞, ∞−∞, any NaN input).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FpFormat:
    """One IEEE-754 binary interchange format."""

    bits: int        # total width
    exp_bits: int    # exponent field width
    prec: int        # significand precision including the hidden bit

    @property
    def frac_bits(self) -> int:
        return self.prec - 1

    @property
    def bias(self) -> int:
        return (1 << (self.exp_bits - 1)) - 1

    @property
    def emin(self) -> int:
        return 1 - self.bias

    @property
    def emax(self) -> int:
        return self.bias

    @property
    def exp_mask(self) -> int:
        return (1 << self.exp_bits) - 1

    @property
    def frac_mask(self) -> int:
        return (1 << self.frac_bits) - 1

    @property
    def qnan(self) -> int:
        """Canonical quiet NaN (sign clear, MSB of the fraction set)."""
        return (self.exp_mask << self.frac_bits) | (1 << (self.frac_bits - 1))

    def inf(self, sign: int) -> int:
        return (sign << (self.bits - 1)) | (self.exp_mask << self.frac_bits)

    def zero(self, sign: int) -> int:
        return sign << (self.bits - 1)


BIN32 = FpFormat(bits=32, exp_bits=8, prec=24)
BIN64 = FpFormat(bits=64, exp_bits=11, prec=53)


def unpack(bits: int, fmt: FpFormat):
    """``bits`` → (sign, class, exact significand, exponent).

    Class is one of ``'nan' | 'inf' | 'zero' | 'finite'``.  For finite
    non-zero values the number equals ``(-1)^sign * sig * 2^exp`` with
    ``sig`` an integer (subnormals fold into the same form).
    """
    sign = (bits >> (fmt.bits - 1)) & 1
    exp_field = (bits >> fmt.frac_bits) & fmt.exp_mask
    frac = bits & fmt.frac_mask
    if exp_field == fmt.exp_mask:
        return (sign, "nan" if frac else "inf", 0, 0)
    if exp_field == 0:
        if frac == 0:
            return (sign, "zero", 0, 0)
        return (sign, "finite", frac, fmt.emin - fmt.frac_bits)
    sig = frac | (1 << fmt.frac_bits)
    return (sign, "finite", sig, exp_field - fmt.bias - fmt.frac_bits)


def is_nan(bits: int, fmt: FpFormat) -> bool:
    exp_field = (bits >> fmt.frac_bits) & fmt.exp_mask
    return exp_field == fmt.exp_mask and bool(bits & fmt.frac_mask)


def _round_to_nearest_even(sig: int, shift: int) -> int:
    """Drop ``shift`` low bits of ``sig``, rounding to nearest, ties to even."""
    if shift <= 0:
        return sig << -shift
    kept = sig >> shift
    rem = sig & ((1 << shift) - 1)
    half = 1 << (shift - 1)
    if rem > half or (rem == half and (kept & 1)):
        kept += 1
    return kept


def pack(sign: int, sig: int, exp: int, fmt: FpFormat) -> tuple[int, bool]:
    """Round and pack an exact value ``(-1)^sign * sig * 2^exp``.

    Returns ``(bits, overflowed)`` where ``overflowed`` reports a finite
    exact value rounding to infinity.
    """
    if sig == 0:
        return fmt.zero(sign), False
    # Normalise so the significand occupies exactly `prec` bits — or as
    # many as the subnormal range allows.
    nbits = sig.bit_length()
    # Exponent of the value if renormalised to a `prec`-bit significand.
    e = exp + nbits - fmt.prec
    if e < fmt.emin - fmt.frac_bits:
        # Subnormal (or underflow to zero): align to the fixed emin grid.
        shift = (fmt.emin - fmt.frac_bits) - exp
        kept = _round_to_nearest_even(sig, shift)
        if kept == 0:
            return fmt.zero(sign), False
        if kept >> fmt.frac_bits:
            # rounded up into the smallest normal
            return (sign << (fmt.bits - 1)) | (1 << fmt.frac_bits), False
        return (sign << (fmt.bits - 1)) | kept, False
    shift = nbits - fmt.prec
    kept = _round_to_nearest_even(sig, shift)
    if kept >> fmt.prec:
        kept >>= 1
        e += 1
    exp_field = e + fmt.bias + fmt.frac_bits
    if exp_field >= fmt.exp_mask:
        return fmt.inf(sign), True
    return (
        (sign << (fmt.bits - 1))
        | (exp_field << fmt.frac_bits)
        | (kept & fmt.frac_mask)
    ), False


# ---------------------------------------------------------------------------
# Operations (bits × bits → (bits, overflowed, invalid))
# ---------------------------------------------------------------------------


def fp_add(a: int, b: int, fmt: FpFormat) -> tuple[int, bool, bool]:
    """IEEE-754 addition on raw bit patterns."""
    sa, ca, siga, expa = unpack(a, fmt)
    sb, cb, sigb, expb = unpack(b, fmt)
    if ca == "nan" or cb == "nan":
        return fmt.qnan, False, True
    if ca == "inf" and cb == "inf":
        if sa != sb:
            return fmt.qnan, False, True  # inf - inf
        return fmt.inf(sa), False, False
    if ca == "inf":
        return fmt.inf(sa), False, False
    if cb == "inf":
        return fmt.inf(sb), False, False
    if ca == "zero" and cb == "zero":
        # (+0) + (-0) = +0 under round-to-nearest; (-0) + (-0) = -0.
        return fmt.zero(sa & sb), False, False
    if ca == "zero":
        return b, False, False
    if cb == "zero":
        return a, False, False
    return _add_exact(sa, siga, expa, sb, sigb, expb, fmt)


def _add_exact(sa, siga, expa, sb, sigb, expb, fmt) -> tuple[int, bool, bool]:
    exp = min(expa, expb)
    va = siga << (expa - exp)
    vb = sigb << (expb - exp)
    if sa:
        va = -va
    if sb:
        vb = -vb
    total = va + vb
    if total == 0:
        return fmt.zero(0), False, False  # exact cancellation → +0 (RNE)
    sign = 1 if total < 0 else 0
    bits, overflowed = pack(sign, abs(total), exp, fmt)
    return bits, overflowed, False


def fp_mul(a: int, b: int, fmt: FpFormat) -> tuple[int, bool, bool]:
    """IEEE-754 multiplication on raw bit patterns."""
    sa, ca, siga, expa = unpack(a, fmt)
    sb, cb, sigb, expb = unpack(b, fmt)
    sign = sa ^ sb
    if ca == "nan" or cb == "nan":
        return fmt.qnan, False, True
    if (ca == "inf" and cb == "zero") or (ca == "zero" and cb == "inf"):
        return fmt.qnan, False, True  # 0 * inf
    if ca == "inf" or cb == "inf":
        return fmt.inf(sign), False, False
    if ca == "zero" or cb == "zero":
        return fmt.zero(sign), False, False
    bits, overflowed = pack(sign, siga * sigb, expa + expb, fmt)
    return bits, overflowed, False


def fp_fma(a: int, b: int, c: int, fmt: FpFormat, negate_product: bool = False) -> tuple[int, bool, bool]:
    """Fused multiply-add ``(±(a*b)) + c`` with a single final rounding."""
    sa, ca, siga, expa = unpack(a, fmt)
    sb, cb, sigb, expb = unpack(b, fmt)
    sc, cc, sigc, expc = unpack(c, fmt)
    if ca == "nan" or cb == "nan" or cc == "nan":
        return fmt.qnan, False, True
    sp = (sa ^ sb) ^ (1 if negate_product else 0)
    if (ca == "inf" and cb == "zero") or (ca == "zero" and cb == "inf"):
        return fmt.qnan, False, True
    if ca == "inf" or cb == "inf":
        if cc == "inf" and sc != sp:
            return fmt.qnan, False, True  # inf - inf through the addend
        return fmt.inf(sp), False, False
    if cc == "inf":
        return fmt.inf(sc), False, False
    # Finite product (possibly zero), finite addend (possibly zero).
    if ca == "zero" or cb == "zero":
        if cc == "zero":
            # exact zero sum: -0 only when both contributions are negative
            return fmt.zero(sp & sc), False, False
        return c, False, False
    if cc == "zero":
        bits, overflowed = pack(sp, siga * sigb, expa + expb, fmt)
        return bits, overflowed, False
    return _add_exact(sp, siga * sigb, expa + expb, sc, sigc, expc, fmt)

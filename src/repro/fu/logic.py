"""The logic unit — second stateless case-study unit (thesis §3.2.2, Table 3.2).

Performs "a variety of basic bitwise logic operations ... applied to the
first and second source operand in the case of two input operands and to
the first operand in the case one input operand".  The exact row set of
Table 3.2 is not legible in the published scan; we implement the canonical
one/two-input Boolean family (see :class:`repro.isa.LogicOp`).

Flags produced: zero, negative (MSB) and even parity.
"""

from __future__ import annotations

from ..isa.opcodes import FLAG_NEGATIVE, FLAG_PARITY, FLAG_ZERO, LogicOp
from .base import AreaOptimizedFU, FuComputation, PipelinedFunctionalUnit
from .protocol import DispatchSample


def logic_datapath(variety: int, a: int, b: int, width: int) -> tuple[int, int]:
    """The Table 3.2 datapath: Boolean function select + flag generation.

    Returns ``(value, flags)``.  Raises ``ValueError`` for an undefined
    variety — the unit maps that to the error flag at the framework level.
    """
    mask = (1 << width) - 1
    a &= mask
    b &= mask
    try:
        op = LogicOp(variety)
    except ValueError as exc:
        raise ValueError(f"undefined logic variety {variety:#x}") from exc
    if op is LogicOp.AND:
        value = a & b
    elif op is LogicOp.OR:
        value = a | b
    elif op is LogicOp.XOR:
        value = a ^ b
    elif op is LogicOp.NOT:
        value = ~a & mask
    elif op is LogicOp.NAND:
        value = ~(a & b) & mask
    elif op is LogicOp.NOR:
        value = ~(a | b) & mask
    elif op is LogicOp.XNOR:
        value = ~(a ^ b) & mask
    elif op is LogicOp.ANDN:
        value = a & (~b & mask)
    elif op is LogicOp.ORN:
        value = a | (~b & mask)
    elif op is LogicOp.PASS:
        value = a
    else:  # pragma: no cover - enum is exhaustive
        raise ValueError(f"unhandled logic op {op}")
    value &= mask
    flags = 0
    if value == 0:
        flags |= FLAG_ZERO
    if value & (1 << (width - 1)):
        flags |= FLAG_NEGATIVE
    if bin(value).count("1") % 2 == 0:
        flags |= FLAG_PARITY
    return value, flags


def _compute(sample: DispatchSample, width: int) -> FuComputation:
    value, flags = logic_datapath(sample.variety, sample.op_a, sample.op_b, width)
    return FuComputation(data1=value, flags=flags)


class LogicUnit(AreaOptimizedFU):
    """Area-optimised logic unit (the thesis case-study configuration)."""

    def __init__(self, name: str = "logic", word_bits: int = 32, parent=None):
        super().__init__(name, word_bits, parent, execute_cycles=1)

    def compute(self, sample: DispatchSample) -> FuComputation:
        return _compute(sample, self.word_bits)


class PipelinedLogicUnit(PipelinedFunctionalUnit):
    """Performance-optimised variant of the logic unit."""

    def __init__(
        self,
        name: str = "logic_p",
        word_bits: int = 32,
        parent=None,
        pipeline_depth: int = 2,
        fifo_depth=None,
    ):
        super().__init__(name, word_bits, parent, pipeline_depth, fifo_depth)

    def compute(self, sample: DispatchSample) -> FuComputation:
        return _compute(sample, self.word_bits)

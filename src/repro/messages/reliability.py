"""Reliable framing: sequence-numbered, checksummed frame trailers.

The paper treats the host link as a pluggable parameter — "a very slow
connection from the FPGA board" up to processor-integrated fabric (§III) —
and real deployments of that spectrum treat the link as a failure domain.
This module adds the wire-level half of the recovery story: every frame
(header + payload, as produced by :class:`repro.messages.framing.Framer`)
gains one *trailer* word::

    trailer = MAGIC[31:24] | seq[23:16] | crc16[15:0]

* ``seq`` is a per-direction 8-bit sequence number assigned at first
  transmission, so a receiver can tell a retransmitted duplicate from a
  fresh frame and detect wholesale frame loss.
* ``crc16`` (CRC-16/CCITT-FALSE over the header and payload words plus the
  trailer's own magic/seq half-word, LSByte first) detects corruption
  anywhere in the frame *including the sequence number* — an unprotected
  seq byte would let a single bit flip renumber an intact frame and forge
  Go-Back-N ordering.
* ``MAGIC`` cheaply rejects most misalignments before the CRC runs.

:class:`ReliableFramer` speaks this format on the transmit side;
:class:`ReliableDeframer` is the scanning receiver: on a bad header, bad
magic or bad CRC it drops exactly one word and re-scans, so it always
resynchronises on the next undamaged frame boundary.  It never raises —
every anomaly becomes an event the caller turns into a NACK, a counter
bump, or a retransmission (see :mod:`repro.rtm.msgbuffer` and
:mod:`repro.host.engine`).

The receiver runs in one of two orderings:

* ``strict_order=True`` (the RTM side): Go-Back-N semantics.  Only the
  next-expected sequence number is *delivered*; a frame from the future
  means earlier frames were lost (``gap`` event — the caller NACKs) and a
  frame from the past is a retransmitted ``duplicate`` (the caller decides
  whether re-execution is idempotent).
* ``strict_order=False`` (the host side): every intact frame is delivered;
  sequence gaps are only counted, because lost responses are recovered by
  request retransmission, not by NACKing the coprocessor.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .framing import (
    WORD_MASK,
    Framer,
    FramingError,
    build_message,
    validate_header,
)
from .types import Message

#: Trailer marker byte — rejects most misaligned trailer candidates cheaply.
TRAILER_MAGIC = 0xC3

#: Upper half-word marking an ExceptionReport ``info`` field as a NACK
#: ("NA"): ``info = NACK_INFO_MAGIC << 16 | flags[15:8] | expected_seq[7:0]``.
NACK_INFO_MAGIC = 0x4E41

#: Flag bit in a NACK info word: the receiver has no expected-sequence
#: baseline yet (nothing valid received since reset), so the sender should
#: retransmit its whole unacknowledged window.
NACK_NO_BASELINE = 0x100

SEQ_MASK = 0xFF


def crc16(words: Iterable[int]) -> int:
    """CRC-16/CCITT-FALSE over the 32-bit words, least-significant byte first."""
    crc = 0xFFFF
    for word in words:
        w = int(word) & WORD_MASK
        for shift in (0, 8, 16, 24):
            crc ^= ((w >> shift) & 0xFF) << 8
            for _ in range(8):
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF if crc & 0x8000 else (crc << 1) & 0xFFFF
    return crc


def trailer_crc(seq: int, frame_words: Iterable[int]) -> int:
    """CRC-16 over the frame words *and* the trailer's magic/seq half.

    The sequence number must be inside the checksum: an unprotected seq
    byte lets a single bit flip renumber an intact frame, which defeats
    Go-Back-N entirely — the receiver delivers the renumbered frame as
    in-order and later discards the genuinely-expected retransmission as
    a duplicate (a silently lost write, found by the faulty-link property
    suite).
    """
    head = (TRAILER_MAGIC << 24) | ((seq & SEQ_MASK) << 16)
    return crc16(list(frame_words) + [head])


def make_trailer(seq: int, frame_words: Iterable[int]) -> int:
    """Build the trailer word for a frame (header + payload words)."""
    return (TRAILER_MAGIC << 24) | ((seq & SEQ_MASK) << 16) | trailer_crc(seq, frame_words)


def split_trailer(word: int) -> tuple[int, int, int]:
    """Return (magic, seq, crc16) of a trailer word."""
    word = int(word) & WORD_MASK
    return (word >> 24) & 0xFF, (word >> 16) & 0xFF, word & 0xFFFF


def seq_before(a: int, b: int) -> bool:
    """True when 8-bit sequence number ``a`` is strictly before ``b``
    (modular comparison; the in-flight window is far below half the space)."""
    return ((a - b) & SEQ_MASK) >= 128


def make_nack_info(expected: Optional[int]) -> int:
    """Encode a receiver NACK as an ExceptionReport ``info`` word."""
    if expected is None:
        return (NACK_INFO_MAGIC << 16) | NACK_NO_BASELINE
    return (NACK_INFO_MAGIC << 16) | (expected & SEQ_MASK)


def parse_nack_info(info: int) -> Optional[tuple[Optional[int], bool]]:
    """Decode an ExceptionReport ``info`` word as a NACK.

    Returns ``(expected_seq, no_baseline)`` or None when the info word is
    not NACK-shaped (a legacy BAD_MESSAGE report).
    """
    if (info >> 16) & 0xFFFF != NACK_INFO_MAGIC:
        return None
    if info & NACK_NO_BASELINE:
        return None, True
    return info & SEQ_MASK, False


class ReliableFramer(Framer):
    """A :class:`Framer` that appends a sequence-numbered CRC trailer.

    Sequence numbers are assigned per *frame* at first framing time and
    exposed via :attr:`last_seq`, so a sender can keep a replay buffer
    keyed by sequence number and retransmit byte-identical frames.
    """

    def __init__(self, data_words: int = 1, start_seq: int = 0):
        super().__init__(data_words)
        self.next_seq = start_seq & SEQ_MASK
        #: sequence number of the most recently framed message
        self.last_seq: Optional[int] = None

    def frame(self, msg: Message) -> list[int]:
        words = super().frame(msg)
        seq = self.next_seq
        self.next_seq = (seq + 1) & SEQ_MASK
        self.last_seq = seq
        words.append(make_trailer(seq, words))
        return words


@dataclass
class ReliabilityStats:
    """Receiver-side integrity counters (folded into ``analysis.counters_for``)."""

    frames_ok: int = 0          # intact frames accepted (incl. duplicates)
    delivered: int = 0          # frames delivered to the consumer
    crc_failures: int = 0       # trailer magic/CRC mismatches
    header_rejects: int = 0     # words rejected as frame headers
    words_dropped: int = 0      # words discarded while resynchronising
    resyncs: int = 0            # resynchronisation scans entered
    seq_gaps: int = 0           # frames arriving ahead of the expected seq
    duplicates: int = 0         # frames arriving behind the expected seq
    forced_drops: int = 0       # head words expired by the idle-flush timer

    def as_dict(self) -> dict:
        return {
            "frames_ok": self.frames_ok,
            "delivered": self.delivered,
            "crc_failures": self.crc_failures,
            "header_rejects": self.header_rejects,
            "words_dropped": self.words_dropped,
            "resyncs": self.resyncs,
            "seq_gaps": self.seq_gaps,
            "duplicates": self.duplicates,
            "forced_drops": self.forced_drops,
        }


class ReliableDeframer:
    """Scanning receiver for trailer-framed word streams.

    Words go in through :meth:`push`; parse results come out of
    :meth:`take_events` as tuples:

    * ``("deliver", message)`` — an intact, in-order frame.
    * ``("duplicate", message)`` — intact but behind the expected sequence
      number (a retransmission of something already delivered).
    * ``("gap", expected, got)`` — an intact frame from the future arrived;
      ``strict_order`` receivers discard it (Go-Back-N) and should NACK,
      tolerant receivers deliver it as well (a separate ``deliver`` event
      follows) and merely record the loss.
    * ``("resync", expected)`` — one word was dropped hunting for a frame
      boundary after a malformed header or checksum failure.
    """

    def __init__(self, data_words: int = 1, strict_order: bool = False,
                 start_expected: Optional[int] = None):
        self.data_words = data_words
        self.strict_order = strict_order
        #: next sequence number owed by the peer.  ``None`` means "adopt the
        #: first intact frame as the baseline" — right for a tolerant
        #: observer, but a strict receiver whose protocol pins the starting
        #: sequence (both ends reset to 0) must pass ``start_expected=0``:
        #: otherwise losing the very first frame makes the receiver adopt a
        #: later one and silently discard the lost frame's retransmission
        #: as a "duplicate" it never saw.
        self.expected: Optional[int] = start_expected
        self.stats = ReliabilityStats()
        self._buf: deque[int] = deque()
        self._events: list[tuple] = []
        self._resyncing = False

    # -- feeding ------------------------------------------------------------------

    def push(self, word: int) -> None:
        """Buffer one received word and scan for completed frames."""
        self._buf.append(int(word) & WORD_MASK)
        self._scan()

    def push_all(self, words: Iterable[int]) -> None:
        for w in words:
            self.push(w)

    def take_events(self) -> list[tuple]:
        """Drain and return every event produced since the last call."""
        events, self._events = self._events, []
        return events

    def drop_head(self) -> None:
        """Discard the oldest buffered word (idle-flush recovery).

        A trailing damaged frame can leave the scanner waiting forever for
        payload words that will never come; the owner calls this on an idle
        timer so residual garbage cannot hold the receiver mid-frame.
        """
        if self._buf:
            self._buf.popleft()
            self.stats.words_dropped += 1
            self.stats.forced_drops += 1
            self._scan()

    def drop_all(self) -> None:
        """Flush the whole stuck buffer (idle-flush recovery).

        Once the link has gone quiet long enough to trigger an idle flush,
        every buffered word belongs to a burst that ended; the missing words
        are never coming, and any retransmission starts a fresh frame.  The
        rescan after each drop still salvages intact frames stuck behind a
        garbage prefix.
        """
        while self._buf:
            self.drop_head()

    @property
    def mid_frame(self) -> bool:
        """True while undelivered words are buffered."""
        return bool(self._buf)

    @property
    def buffered(self) -> int:
        return len(self._buf)

    # -- scanning -----------------------------------------------------------------

    def _drop_one(self, header_reject: bool) -> None:
        self._buf.popleft()
        self.stats.words_dropped += 1
        if header_reject:
            self.stats.header_rejects += 1
        else:
            self.stats.crc_failures += 1
        if not self._resyncing:
            self._resyncing = True
            self.stats.resyncs += 1
        self._events.append(("resync", self.expected))

    def _scan(self) -> None:
        buf = self._buf
        while buf:
            try:
                mtype, arg, length = validate_header(buf[0], self.data_words)
            except FramingError:
                self._drop_one(header_reject=True)
                continue
            need = 1 + length + 1  # header + payload + trailer
            if len(buf) < need:
                return
            frame = [buf[i] for i in range(need)]
            magic, seq, crc = split_trailer(frame[-1])
            if magic != TRAILER_MAGIC or crc != trailer_crc(seq, frame[:-1]):
                self._drop_one(header_reject=False)
                continue
            for _ in range(need):
                buf.popleft()
            self._resyncing = False
            self.stats.frames_ok += 1
            self._accept(build_message(mtype, arg, frame[1:-1]), seq)

    def _accept(self, msg: Message, seq: int) -> None:
        if self.expected is not None and seq != self.expected:
            if seq_before(seq, self.expected):
                self.stats.duplicates += 1
                self._events.append(("duplicate", msg))
                return
            # frame(s) before this one were lost in transit
            self.stats.seq_gaps += 1
            self._events.append(("gap", self.expected, seq))
            if self.strict_order:
                return  # Go-Back-N: refuse out-of-order delivery
        self.expected = (seq + 1) & SEQ_MASK
        self.stats.delivered += 1
        self._events.append(("deliver", msg))

"""repro.messages — host↔coprocessor message protocol, framing and channels.

Implements the communication side of the framework: typed messages (data
records, flag vectors, instructions), 32-bit word framing, cycle-accurate
latency/bandwidth channel models spanning the paper's "slow prototyping
link" to "tightly integrated" spectrum, and the pluggable COTS
receiver/transmitter boundary.
"""

from .channel import (
    FAST_BUS,
    INTEGRATED,
    PRESETS,
    SLOW_PROTOTYPE,
    ChannelSpec,
    DelayLine,
    Link,
)
from .faults import FaultSpec, FaultStats, FaultyLine
from .framing import (
    Deframer,
    Framer,
    FramingError,
    build_message,
    expected_length,
    make_header,
    split_header,
    validate_header,
    value_to_words,
    words_to_value,
)
from .multihost import SharedHostBus, host_tag, tag_owner
from .reliability import (
    NACK_NO_BASELINE,
    TRAILER_MAGIC,
    ReliabilityStats,
    ReliableDeframer,
    ReliableFramer,
    crc16,
    make_nack_info,
    make_trailer,
    parse_nack_info,
    seq_before,
    split_trailer,
    trailer_crc,
)
from .transceiver import HostPort, Receiver, Transmitter
from .uart import UartLink, UartRx, UartTx
from .types import (
    COP_TO_HOST,
    BadFrame,
    HOST_TO_COP,
    DataRecord,
    Exec,
    ExceptionCode,
    ExceptionReport,
    FlagVector,
    Halted,
    MachineCheck,
    Message,
    MsgType,
    Reset,
    WriteFlags,
    WriteReg,
)

__all__ = [
    "FAST_BUS",
    "INTEGRATED",
    "PRESETS",
    "SLOW_PROTOTYPE",
    "ChannelSpec",
    "DelayLine",
    "Link",
    "Deframer",
    "Framer",
    "FramingError",
    "build_message",
    "expected_length",
    "make_header",
    "split_header",
    "validate_header",
    "value_to_words",
    "words_to_value",
    "FaultSpec",
    "FaultStats",
    "FaultyLine",
    "NACK_NO_BASELINE",
    "TRAILER_MAGIC",
    "ReliabilityStats",
    "ReliableDeframer",
    "ReliableFramer",
    "crc16",
    "make_nack_info",
    "make_trailer",
    "parse_nack_info",
    "seq_before",
    "split_trailer",
    "trailer_crc",
    "SharedHostBus",
    "host_tag",
    "tag_owner",
    "HostPort",
    "Receiver",
    "Transmitter",
    "UartLink",
    "UartRx",
    "UartTx",
    "COP_TO_HOST",
    "BadFrame",
    "HOST_TO_COP",
    "DataRecord",
    "Exec",
    "ExceptionCode",
    "ExceptionReport",
    "FlagVector",
    "Halted",
    "MachineCheck",
    "Message",
    "MsgType",
    "Reset",
    "WriteFlags",
    "WriteReg",
]

"""Multi-CPU host support — paper Fig. 1.1: "CPU #1 … CPU #m ↔ Interface".

"The main purpose of the presented framework is to facilitate the
development of FPGA based coprocessors by providing a common interface to
hardware accelerators accessible by **one or more host CPUs**" (thesis
§1.2).  The coprocessor side needs no change at all: this module provides
the host-side sharing fabric —

* :class:`SharedHostBus` — m host ports multiplexed onto the single
  coprocessor channel.  Downstream, the bus arbitrates at *frame*
  granularity (once a CPU starts a frame it holds the bus until the frame
  completes, then the grant rotates), so frames from different CPUs never
  interleave.  Upstream, it deframes responses and routes each to its
  owner by the **tag namespace convention**: the top bits of the 8-bit
  GET/GETF tag carry the issuing CPU's id.  Untagged responses
  (exceptions, HALT acknowledgements) are broadcast.

Coordination of registers is software's job (as on any shared
coprocessor): each CPU works in its own register partition, which
:class:`repro.host.session.Session` supports via ``reg_range``.
"""

from __future__ import annotations

from typing import Optional

from ..hdl import Component, Stream
from .framing import Deframer, Framer, FramingError, split_header
from .transceiver import HostPort
from .types import Message, DataRecord, FlagVector

#: bits of the tag reserved for the CPU id (supports up to 4 CPUs)
TAG_HOST_BITS = 2
TAG_SEQ_BITS = 8 - TAG_HOST_BITS
TAG_SEQ_MASK = (1 << TAG_SEQ_BITS) - 1


def host_tag(host_id: int, seq: int) -> int:
    """Compose a response tag carrying the issuing CPU's identity."""
    if not 0 <= host_id < (1 << TAG_HOST_BITS):
        raise ValueError(f"host id {host_id} exceeds the tag namespace")
    return (host_id << TAG_SEQ_BITS) | (seq & TAG_SEQ_MASK)


def tag_owner(tag: int) -> int:
    """CPU id encoded in a response tag."""
    return (tag >> TAG_SEQ_BITS) & ((1 << TAG_HOST_BITS) - 1)


class SharedHostBus(Component):
    """m host ports sharing one coprocessor channel."""

    def __init__(
        self,
        name: str,
        n_hosts: int,
        data_words: int = 1,
        parent: Optional[Component] = None,
    ):
        super().__init__(name, parent)
        if not 1 <= n_hosts <= (1 << TAG_HOST_BITS):
            raise ValueError(f"n_hosts must be in [1, {1 << TAG_HOST_BITS}]")
        self.n_hosts = n_hosts
        self.hosts = [HostPort(f"cpu{i}", parent=self) for i in range(n_hosts)]
        #: words toward the coprocessor (connect to the link downstream)
        self.tx = Stream(self, "tx", 32)
        #: words from the coprocessor (connect to the link upstream)
        self.rx = Stream(self, "rx", 32)
        # downstream arbitration state
        self._granted = self.reg("granted", 8, 0)
        self._frame_left = self.reg("frame_left", 16, 0)
        self._last = self.reg("last", 8, n_hosts - 1)
        # upstream routing state
        self._deframer = Deframer(data_words)
        self._framer = Framer(data_words)
        self._route_q: list[tuple[int, int]] = []  # (host, word) pending delivery
        self.frames_forwarded = [0] * n_hosts

        @self.comb
        def _drive() -> None:
            # --- downstream: frame-granular round robin -----------------------
            left = self._frame_left.value
            if left > 0:
                src = self.hosts[self._granted.value]
            else:
                src = None
                start = (self._last.value + 1) % self.n_hosts
                for off in range(self.n_hosts):
                    cand = self.hosts[(start + off) % self.n_hosts]
                    if cand.tx.valid.value:
                        src = cand
                        break
            if src is not None:
                self.tx.valid.set(src.tx.valid.value)
                self.tx.payload.set(src.tx.payload.value)
            else:
                self.tx.valid.set(0)
            for i, host in enumerate(self.hosts):
                selected = src is self.hosts[i]
                host.tx.ready.set(1 if (selected and self.tx.ready.value) else 0)
            # --- upstream: accept words whenever they arrive -------------------
            self.rx.ready.set(1)

        @self.seq
        def _tick() -> None:
            # downstream frame tracking
            if self.tx.fires():
                left = self._frame_left.value
                src_idx = (
                    self._granted.value if left > 0 else self._current_source_index()
                )
                if left > 0:
                    self._frame_left.nxt = left - 1
                else:
                    _, _, length = split_header(self.tx.payload.value)
                    self._granted.nxt = src_idx
                    self._frame_left.nxt = length
                    self._last.nxt = src_idx
                    self.frames_forwarded[src_idx] += 1
            # upstream: deframe and route complete messages
            if self.rx.fires():
                try:
                    msg = self._deframer.push(self.rx.payload.value)
                except FramingError:
                    msg = None  # a broken response frame is dropped at the bus
                if msg is not None:
                    self._route(msg)
            # deliver queued words into host rx queues (behavioural push)
            while self._route_q:
                host_idx, word = self._route_q.pop(0)
                host = self.hosts[host_idx]
                host._rxq.nxt = host._rxq.nxt + (word,)

        self.wheel(self._wheel_horizon, lambda n: None)

        @self.on_reset
        def _clear() -> None:
            self._deframer = Deframer(data_words)
            self._route_q.clear()

    def _wheel_horizon(self) -> Optional[int]:
        """Idle bus has no horizon; any traffic (or queued routing) vetoes."""
        if self.tx.valid.value or self.rx.valid.value or self._route_q:
            return 0
        return None

    def _current_source_index(self) -> int:
        """Which host the combinational mux selected this cycle."""
        start = (self._last.value + 1) % self.n_hosts
        for off in range(self.n_hosts):
            idx = (start + off) % self.n_hosts
            if self.hosts[idx].tx.valid.value:
                return idx
        return self._granted.value

    def _route(self, msg: Message) -> None:
        words = self._framer.frame(msg)
        if isinstance(msg, (DataRecord, FlagVector)):
            owners = [tag_owner(msg.tag)]
        else:
            owners = list(range(self.n_hosts))  # broadcast
        for owner in owners:
            if owner < self.n_hosts:
                self._route_q.extend((owner, w) for w in words)

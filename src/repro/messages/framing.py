"""Framing: messages ↔ streams of 32-bit channel words.

Every message is framed as one header word followed by ``length`` payload
words::

    header = type[31:24] | arg[23:16] | length[15:0]

Multi-word values (registers wider than 32 bits — the word size generic is
a multiple of 32, §II) are carried least-significant word first.  The
framing layer is what the message buffer and message serialiser stages of
the RTM speak on their channel side.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from .types import (
    DataRecord,
    Exec,
    ExceptionReport,
    FlagVector,
    Halted,
    MachineCheck,
    Message,
    MsgType,
    Reset,
    WriteFlags,
    WriteReg,
)

WORD_MASK = 0xFFFF_FFFF


class FramingError(ValueError):
    """A message or word stream violated the framing rules."""


def expected_length(msg_type: int, data_words: int) -> int:
    """The exact payload word count a frame of ``msg_type`` must carry.

    Every protocol message has a fixed payload length for a given register
    word size, so header validation can be strict: EXEC instructions are
    always 64-bit (2 words), register transfers carry ``data_words`` words,
    flag/exception payloads are one word, RESET/HALTED are header-only.
    """
    if msg_type == MsgType.EXEC:
        return 2
    if msg_type in (MsgType.WRITE_REG, MsgType.DATA_RECORD):
        return data_words
    if msg_type in (
        MsgType.WRITE_FLAGS,
        MsgType.FLAG_VECTOR,
        MsgType.EXCEPTION,
        MsgType.MACHINE_CHECK,
    ):
        return 1
    if msg_type in (MsgType.RESET, MsgType.HALTED):
        return 0
    raise FramingError(f"unknown message type {msg_type:#x}")


def validate_header(word: int, data_words: int) -> tuple[int, int, int]:
    """Split and strictly validate a header word; returns (type, arg, length).

    Raises :class:`FramingError` with a uniform message for every malformed
    case: unknown message type, or a payload length that does not match the
    type's fixed frame layout (both truncated and over-length declarations
    are rejected here, before any payload word is consumed).
    """
    mtype, arg, length = split_header(int(word) & WORD_MASK)
    if not any(mtype == t for t in MsgType):
        raise FramingError(f"unknown message type {mtype:#x}")
    expected = expected_length(mtype, data_words)
    if length != expected:
        raise FramingError(
            f"{MsgType(mtype).name} frame length {length} invalid "
            f"(expected {expected})"
        )
    return mtype, arg, length


def build_message(mtype: int, arg: int, payload: list[int]) -> Message:
    """Assemble a parsed frame (validated header + payload words) into a
    :class:`Message`.  Shared by the plain and checksummed deframers."""
    value = words_to_value(payload)
    if mtype == MsgType.EXEC:
        return Exec(value)
    if mtype == MsgType.WRITE_REG:
        return WriteReg(arg, value)
    if mtype == MsgType.WRITE_FLAGS:
        return WriteFlags(arg, value)
    if mtype == MsgType.RESET:
        return Reset()
    if mtype == MsgType.DATA_RECORD:
        return DataRecord(arg, value)
    if mtype == MsgType.FLAG_VECTOR:
        return FlagVector(arg, value)
    if mtype == MsgType.EXCEPTION:
        return ExceptionReport(arg, value)
    if mtype == MsgType.HALTED:
        return Halted()
    if mtype == MsgType.MACHINE_CHECK:
        return MachineCheck(arg, (value >> 16) & 0xFFFF, value & 0xFFFF)
    raise FramingError(f"unknown message type {mtype:#x}")


def make_header(msg_type: int, arg: int, length: int) -> int:
    if not 0 <= arg <= 0xFF:
        raise FramingError(f"header arg {arg} out of range")
    if not 0 <= length <= 0xFFFF:
        raise FramingError(f"header length {length} out of range")
    return ((int(msg_type) & 0xFF) << 24) | (arg << 16) | length


def split_header(word: int) -> tuple[int, int, int]:
    """Return (type, arg, length) of a header word."""
    return (word >> 24) & 0xFF, (word >> 16) & 0xFF, word & 0xFFFF


def value_to_words(value: int, n_words: int) -> list[int]:
    """Split an unsigned value into ``n_words`` 32-bit words, LSW first."""
    if value < 0:
        raise FramingError("values on the wire are unsigned")
    if value >> (32 * n_words):
        raise FramingError(f"value {value:#x} does not fit in {n_words} words")
    return [(value >> (32 * i)) & WORD_MASK for i in range(n_words)]


def words_to_value(words: Iterable[int]) -> int:
    """Reassemble an LSW-first word sequence into an unsigned value."""
    value = 0
    for i, w in enumerate(words):
        value |= (int(w) & WORD_MASK) << (32 * i)
    return value


class Framer:
    """Serialises messages into channel words.

    ``data_words`` is the register word size divided by 32 — the length of
    WRITE_REG and DATA_RECORD payloads.
    """

    def __init__(self, data_words: int = 1):
        if data_words < 1:
            raise FramingError("data_words must be >= 1")
        self.data_words = data_words

    def frame(self, msg: Message) -> list[int]:
        dw = self.data_words
        if isinstance(msg, Exec):
            return [make_header(MsgType.EXEC, 0, 2), *value_to_words(msg.word, 2)]
        if isinstance(msg, WriteReg):
            return [make_header(MsgType.WRITE_REG, msg.reg, dw),
                    *value_to_words(msg.value, dw)]
        if isinstance(msg, WriteFlags):
            return [make_header(MsgType.WRITE_FLAGS, msg.flag_reg, 1),
                    msg.value & WORD_MASK]
        if isinstance(msg, Reset):
            return [make_header(MsgType.RESET, 0, 0)]
        if isinstance(msg, DataRecord):
            return [make_header(MsgType.DATA_RECORD, msg.tag, dw),
                    *value_to_words(msg.value, dw)]
        if isinstance(msg, FlagVector):
            return [make_header(MsgType.FLAG_VECTOR, msg.tag, 1), msg.value & WORD_MASK]
        if isinstance(msg, ExceptionReport):
            return [make_header(MsgType.EXCEPTION, msg.code, 1), msg.info & WORD_MASK]
        if isinstance(msg, Halted):
            return [make_header(MsgType.HALTED, 0, 0)]
        if isinstance(msg, MachineCheck):
            return [make_header(MsgType.MACHINE_CHECK, msg.element & 0xFF, 1),
                    ((msg.address & 0xFFFF) << 16) | (msg.syndrome & 0xFFFF)]
        raise FramingError(f"cannot frame message of type {type(msg).__name__}")

    def frame_all(self, msgs: Iterable[Message]) -> list[int]:
        words: list[int] = []
        for m in msgs:
            words.extend(self.frame(m))
        return words


class Deframer:
    """Incrementally parses a word stream back into messages.

    Feed words one at a time with :meth:`push`; completed messages come back
    as return values.  This mirrors the streaming behaviour of the message
    buffer stage, which "receives data from the FPGA input port ... and
    converts it to a form usable by the decoder" (§III).

    Headers are validated *eagerly*: an unknown message type or an
    implausible payload length is rejected before any payload word is
    consumed, so a corrupted header cannot swallow the channel — the stream
    resynchronises at the very next word.
    """

    def __init__(self, data_words: int = 1):
        self.data_words = data_words
        #: the longest legal frame payload for this configuration
        self.max_length = max(2, data_words)
        self._header: Optional[tuple[int, int, int]] = None
        self._payload: list[int] = []

    def push(self, word: int) -> Optional[Message]:
        word = int(word) & WORD_MASK
        if self._header is None:
            mtype, arg, length = validate_header(word, self.data_words)
            self._header = (mtype, arg, length)
            self._payload = []
            if length == 0:
                return self._finish()
            return None
        self._payload.append(word)
        if len(self._payload) >= self._header[2]:
            return self._finish()
        return None

    def _finish(self) -> Message:
        assert self._header is not None
        mtype, arg, _length = self._header
        payload = self._payload
        self._header = None
        self._payload = []
        return build_message(mtype, arg, payload)

    def push_all(self, words: Iterable[int]) -> Iterator[Message]:
        for w in words:
            msg = self.push(w)
            if msg is not None:
                yield msg

    def flush(self) -> None:
        """Assert the stream ended on a frame boundary.

        Raises :class:`FramingError` if a frame is truncated — a header was
        received whose payload never completed.  The deframer state is
        cleared either way, so the next word starts a fresh frame.
        """
        if self._header is None:
            return
        mtype, _arg, length = self._header
        got = len(self._payload)
        self._header = None
        self._payload = []
        raise FramingError(
            f"truncated {MsgType(mtype).name} frame: got {got} of "
            f"{length} payload words"
        )

    @property
    def mid_frame(self) -> bool:
        """True when a partially received frame is pending."""
        return self._header is not None

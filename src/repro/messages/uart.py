"""Bit-level UART transceiver — the paper's prototyping link, for real.

The published prototype talked to its host over "a very slow connection"
(§III) — a development-board serial line.  This module models that link at
the signal level rather than as an abstract delay: a configurable-divisor
8N1 UART with an actual 1-bit ``line`` between transmitter and receiver,
start-bit edge detection and mid-bit sampling.  Four bytes (LSB first per
byte, little-endian across bytes) carry one 32-bit channel word.

It slots in as an alternative physical layer under the same framing as the
abstract :class:`repro.messages.channel.DelayLine` — the "selecting the
appropriate transmitter and receiver modules" step of Fig. 3 exercised all
the way down to the wire.
"""

from __future__ import annotations

from typing import Optional

from ..hdl import Component, Stream

BITS_PER_FRAME = 10  # start + 8 data + stop
BYTES_PER_WORD = 4


class UartTx(Component):
    """Serialises 32-bit words onto a 1-bit line, 8N1, LSB first.

    ``divisor`` is the clocks-per-bit ratio (clock / baud).  The line idles
    high; each byte is start(0) + 8 data bits + stop(1).
    """

    def __init__(self, name: str, divisor: int = 4, parent: Optional[Component] = None):
        super().__init__(name, parent)
        if divisor < 1:
            raise ValueError("divisor must be >= 1")
        self.divisor = divisor
        self.inp = Stream(self, "in", 32)
        #: the serial line (idle high)
        self.line = self.signal("line", 1, reset=1)
        self._bits = self.reg("bits", None, reset=())   # bit queue, LSB first
        self._phase = self.reg("phase", 16, 0)

        @self.comb
        def _drive() -> None:
            bits = self._bits.value
            self.line.set(bits[0] if bits else 1)
            self.inp.ready.set(0 if bits else 1)

        @self.seq(pure=True)
        def _tick() -> None:
            bits = self._bits.value
            if bits:
                phase = self._phase.value + 1
                if phase >= self.divisor:
                    self._bits.nxt = bits[1:]
                    self._phase.nxt = 0
                else:
                    self._phase.nxt = phase
            elif self.inp.fires():
                word = self.inp.payload.value
                frame: list[int] = []
                for b in range(BYTES_PER_WORD):
                    byte = (word >> (8 * b)) & 0xFF
                    frame.append(0)                       # start bit
                    frame.extend((byte >> i) & 1 for i in range(8))
                    frame.append(1)                       # stop bit
                self._bits.nxt = tuple(frame)
                self._phase.nxt = 0

        self.wheel(self._horizon, self._skip)

    def _horizon(self) -> Optional[int]:
        bits = self._bits.value
        if bits:
            # the line only moves when the phase counter wraps; everything
            # before that edge is pure aging of _phase
            d = self.divisor - 1 - self._phase.value
            return d if d > 0 else 0
        if self.inp.valid.value and self.inp.ready.value:
            return 0  # a word is accepted next edge
        return None

    def _skip(self, n: int) -> None:
        if self._bits.value:
            self._phase.warp(self._phase.value + n)

    @property
    def busy(self) -> bool:
        return bool(self._bits.value)


class UartRx(Component):
    """Samples the line, reassembles bytes into 32-bit words.

    Detects the falling start edge, then samples each bit at its centre
    (divisor//2 clocks after the bit boundary) — the standard oversampling
    receiver, reduced to the clock-synchronous case.
    """

    IDLE, RECEIVING = 0, 1

    def __init__(self, name: str, divisor: int = 4, parent: Optional[Component] = None):
        super().__init__(name, parent)
        if divisor < 2:
            raise ValueError("receiver divisor must be >= 2 (needs a sample point)")
        self.divisor = divisor
        #: the serial line input
        self.line = self.signal("line", 1, reset=1)
        self.out = Stream(self, "out", 32)
        self._state = self.reg("state", 1, self.IDLE)
        self._phase = self.reg("phase", 16, 0)
        self._bitno = self.reg("bitno", 8, 0)
        self._shift = self.reg("shift", 8, 0)
        self._bytes = self.reg("bytes", None, reset=())
        self._word = self.reg("word", 32, 0)
        self._word_valid = self.reg("word_valid", 1, 0)
        self._idle_run = self.reg("idle_run", 24, 0)
        #: idle cycles after which a partial word is flushed (byte-slip resync)
        self.resync_idle = BITS_PER_FRAME * divisor * 2
        self.framing_errors = 0
        self.resyncs = 0

        @self.comb
        def _drive() -> None:
            self.out.valid.set(self._word_valid.value)
            self.out.payload.set(self._word.value)

        @self.seq(pure=True)
        def _tick() -> None:
            if self._word_valid.value and self.out.ready.value:
                self._word_valid.nxt = 0
            state = self._state.value
            if state == self.IDLE:
                if not self.line.value:  # start edge
                    self._state.nxt = self.RECEIVING
                    self._phase.nxt = 0
                    self._bitno.nxt = 0
                    self._shift.nxt = 0
                    self._idle_run.nxt = 0
                elif self._idle_run.value < self.resync_idle:
                    # inter-word gap resynchronisation: a long idle line means
                    # the sender is between words; drop any byte-slipped
                    # partial word so the next frame starts a clean word.
                    # The run counter saturates at the resync threshold: once
                    # the flush has had its chance nothing observable depends
                    # on the count, and a saturated counter stages nothing —
                    # so a deep-idle receiver goes fully dormant.
                    run = self._idle_run.value + 1
                    self._idle_run.nxt = run
                    if run == self.resync_idle and self._bytes.value:
                        self._bytes.nxt = ()
                        self.resyncs += 1
                return
            phase = self._phase.value + 1
            # sample at mid-bit; bit 0 is the start bit itself
            if phase == self.divisor // 2 + self._bitno.value * self.divisor:
                bit = self.line.value
                bitno = self._bitno.value
                if bitno == 0:
                    if bit:  # false start
                        self._state.nxt = self.IDLE
                        return
                elif bitno <= 8:
                    self._shift.nxt = self._shift.value | (bit << (bitno - 1))
                else:  # stop bit
                    if not bit:
                        # broken frame: count it and drop the partial word —
                        # alignment recovers at the next inter-word gap
                        self.framing_errors += 1
                        self._bytes.nxt = ()
                    else:
                        self._accept_byte(self._shift.value)
                    self._state.nxt = self.IDLE
                    self._phase.nxt = 0
                    return
                self._bitno.nxt = bitno + 1
            self._phase.nxt = phase

        self.wheel(self._horizon, self._skip)

        # Guard-coupled purity: framing_errors moves only on the stop-bit
        # path (always stages _state RECEIVING→IDLE) and resyncs only on the
        # flush path (always stages _idle_run and _bytes).
        self.lint_suppress(
            "contract.impure-pure-seq",
            "framing_errors and resyncs increment only on frame-end / flush "
            "paths, which always stage state or the byte buffer; quiet edges "
            "are mutation-free",
        )

        @self.on_reset
        def _clear() -> None:
            pass

    def _horizon(self) -> Optional[int]:
        if self._word_valid.value and self.out.ready.value:
            return 0  # handshake completes next edge
        if self._state.value == self.RECEIVING:
            # pure aging until the edge that samples the next bit centre
            target = self.divisor // 2 + self._bitno.value * self.divisor
            d = target - 1 - self._phase.value
            return d if d > 0 else 0
        if not self.line.value:
            return 0  # start edge detected next cycle
        run = self._idle_run.value
        if run >= self.resync_idle:
            return None  # saturated: nothing left to count
        if self._bytes.value:
            # the resync flush at the threshold is a real edge
            d = self.resync_idle - 1 - run
            return d if d > 0 else 0
        return None  # counting toward an unobservable saturation

    def _skip(self, n: int) -> None:
        if self._state.value == self.RECEIVING:
            self._phase.warp(self._phase.value + n)
        elif self.line.value:
            run = self._idle_run.value
            if run < self.resync_idle:
                self._idle_run.warp(min(self.resync_idle, run + n))

    def _accept_byte(self, byte: int) -> None:
        collected = self._bytes.nxt + (byte,)
        if len(collected) == BYTES_PER_WORD:
            word = 0
            for i, b in enumerate(collected):
                word |= b << (8 * i)
            self._word.nxt = word
            self._word_valid.nxt = 1
            self._bytes.nxt = ()
        else:
            self._bytes.nxt = collected


class UartLink(Component):
    """Full-duplex serial link: two UART pairs over two wires.

    The word-level ports (``downstream``/``upstream`` stream pairs) match
    the abstract :class:`Link`'s shape, so the SoC wiring is identical —
    only the physics underneath changes.
    """

    def __init__(self, name: str, divisor: int = 4, parent: Optional[Component] = None):
        super().__init__(name, parent)
        self.divisor = divisor
        self.tx_down = UartTx("tx_down", divisor, parent=self)
        self.rx_down = UartRx("rx_down", divisor, parent=self)
        self.tx_up = UartTx("tx_up", divisor, parent=self)
        self.rx_up = UartRx("rx_up", divisor, parent=self)

        @self.comb
        def _wires() -> None:
            self.rx_down.line.set(self.tx_down.line.value)
            self.rx_up.line.set(self.tx_up.line.value)

    @property
    def cycles_per_word(self) -> int:
        """Effective inverse bandwidth: 4 frames of 10 bits at divisor clocks."""
        return BYTES_PER_WORD * BITS_PER_FRAME * self.divisor

"""Physical-channel models between host and coprocessor.

The paper's prototype used "a very slow connection from the FPGA board to
the processor", while noting that tightly integrated FPGAs offer "extremely
high transfer rates" (§III) — i.e. system behaviour is parametric in the
link.  :class:`ChannelSpec` captures that parameter space (per-word latency
and inverse bandwidth in coprocessor clock cycles), :class:`DelayLine` is
the cycle-accurate simulation of one direction, and the presets span the
paper's spectrum from prototyping serial link to processor-integrated
fabric.  `analysis.LinkModel` extends the same specs with real-unit
arithmetic for the link-bound benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..hdl import Component, Stream


@dataclass(frozen=True)
class ChannelSpec:
    """Timing parameters of one link direction, in coprocessor clock cycles."""

    name: str
    latency_cycles: int       # pipeline delay from accept to deliver
    cycles_per_word: int      # minimum spacing between accepted words (1/bandwidth)

    def __post_init__(self) -> None:
        if self.latency_cycles < 1:
            raise ValueError("latency must be at least one cycle")
        if self.cycles_per_word < 1:
            raise ValueError("cycles_per_word must be at least 1")

    def transfer_cycles(self, n_words: int) -> int:
        """Cycles to move ``n_words`` through this direction (analytic)."""
        if n_words <= 0:
            return 0
        return self.latency_cycles + (n_words - 1) * self.cycles_per_word + 1


#: Direct on-chip connection — the limit case for a processor-integrated FPGA.
INTEGRATED = ChannelSpec("integrated", latency_cycles=2, cycles_per_word=1)

#: A fast external fabric (e.g. a modern host bus adapter).
FAST_BUS = ChannelSpec("fast-bus", latency_cycles=16, cycles_per_word=2)

#: The paper's development-board class link: high latency, low bandwidth.
#: (A real 115200-baud serial line at 50 MHz would be ≈17k cycles/word; we
#: default to a 64× faster stand-in to keep cycle-accurate runs tractable and
#: recover the true ratio analytically in `repro.analysis.LinkModel`.)
SLOW_PROTOTYPE = ChannelSpec("slow-prototype", latency_cycles=64, cycles_per_word=256)

PRESETS = {spec.name: spec for spec in (INTEGRATED, FAST_BUS, SLOW_PROTOTYPE)}


class DelayLine(Component):
    """One direction of a link: a rate-limited, fixed-latency word pipe.

    Accepts at most one word every ``cycles_per_word`` cycles on ``inp`` and
    presents each word on ``out`` exactly ``latency_cycles`` cycles after
    acceptance (later if downstream back-pressures).
    """

    def __init__(self, name: str, spec: ChannelSpec, parent: Optional[Component] = None):
        super().__init__(name, parent)
        self.spec = spec
        self.inp = Stream(self, "in", 32)
        self.out = Stream(self, "out", 32)
        # Timing is tracked against a hidden *local epoch* that advances only
        # while the line is active (words in flight, cooling, or accepting),
        # so an idle line holds perfectly still for the event scheduler AND
        # the epoch needs no aging when the time wheel skips idle cycles.
        # In-flight words carry absolute (deliver_at_epoch, word) deadlines —
        # O(1) per edge instead of rebuilding the tuple to age every word —
        # and skip(n) is a single addition to the epoch.
        self._epoch = 0
        #: delivery deadline of the head word has passed (1-bit, committed at
        #: the edge the head comes due, which is what keeps delivery timing
        #: exactly that of the historical per-word countdowns)
        self._head_due = self.reg("head_due", 1, 0)
        #: rate limiting: set while accepted words must be spaced out
        self._cool = self.reg("cool", 1, 0)
        self._ready_at = 0  # epoch at which _cool clears (hidden, like _epoch)
        # In-flight words as (deliver_at_epoch, word) tuples, oldest first.
        self._flight = self.reg("flight", None, reset=())

        @self.comb
        def _drive() -> None:
            flight = self._flight.value
            deliverable = bool(flight) and bool(self._head_due.value) and self._delivering()
            self.out.valid.set(1 if deliverable else 0)
            if deliverable:
                self.out.payload.set(flight[0][1])
            accepting = self._cool.value == 0 and self._accepting()
            self.inp.ready.set(1 if accepting else 0)

        @self.seq
        def _tick() -> None:
            flight = self._flight.value
            cool = self._cool.value
            firing = self.inp.fires()
            if not (flight or cool or firing):
                return  # fully idle: epoch frozen, nothing to do
            self._epoch += 1
            epoch = self._epoch
            touched = False
            if self.out.fires():
                flight = flight[1:]
                touched = True
            if firing:
                # this edge counts as the first of the latency/spacing windows
                flight = self._admit(flight, self.inp.payload.value)
                touched = True
                if self.spec.cycles_per_word > 1:
                    self._cool.nxt = 1
                    self._ready_at = epoch + self.spec.cycles_per_word - 1
            elif cool and epoch >= self._ready_at:
                self._cool.nxt = 0
            if touched:
                self._flight.nxt = flight
            due = 1 if (flight and epoch >= flight[0][0]) else 0
            if due != self._head_due.value:
                self._head_due.nxt = due

        self.wheel(self._horizon, self._skip)

        @self.on_reset
        def _rewind() -> None:
            self._epoch = 0
            self._ready_at = 0

    # -- time-wheel hooks ---------------------------------------------------------

    def _horizon(self) -> Optional[int]:
        """Cycles of guaranteed pure aging before the next observable edge."""
        if (self.inp.valid.value and self.inp.ready.value) or (
            self.out.valid.value and self.out.ready.value
        ):
            return 0  # a handshake completes next edge
        horizon = None
        flight = self._flight.value
        if flight and not self._head_due.value and self._delivering():
            d = flight[0][0] - self._epoch - 1
            if d <= 0:
                return 0  # head word comes due next edge
            horizon = d
        if self._cool.value:
            d = self._ready_at - self._epoch - 1
            if d <= 0:
                return 0  # cooldown clears next edge
            if horizon is None or d < horizon:
                horizon = d
        return horizon

    def _skip(self, n: int) -> None:
        """Batch-age ``n`` edges: the epoch advances iff the line is active."""
        if self._flight.value or self._cool.value:
            self._epoch += n

    # -- injection hooks (overridden by repro.messages.faults.FaultyLine) ---------

    def _accepting(self) -> bool:
        """Extra combinational gate on ``inp.ready`` (True on a healthy line)."""
        return True

    def _delivering(self) -> bool:
        """Extra combinational gate on ``out.valid`` (True on a healthy line)."""
        return True

    def _admit(self, flight: tuple, word: int) -> tuple:
        """Append an accepted word to the in-flight tuple (fault-free path)."""
        return flight + ((self._epoch + self.spec.latency_cycles - 1, word),)

    @property
    def in_flight(self) -> int:
        return len(self._flight.value)


class Link(Component):
    """A full-duplex host↔coprocessor link: two independent delay lines.

    ``downstream`` carries host→coprocessor words, ``upstream`` the reverse.
    By default both directions share one :class:`ChannelSpec` (a symmetric
    link); pass ``upstream_spec`` for asymmetric channels (common in real
    fabrics — e.g. a wide write path with a narrow readback path).
    """

    def __init__(
        self,
        name: str,
        spec: ChannelSpec,
        parent: Optional[Component] = None,
        upstream_spec: Optional[ChannelSpec] = None,
        downstream_faults=None,
        upstream_faults=None,
    ):
        super().__init__(name, parent)
        self.spec = spec
        self.upstream_spec = upstream_spec if upstream_spec is not None else spec

        def _line(name: str, line_spec: ChannelSpec, faults):
            if faults is None:
                return DelayLine(name, line_spec, parent=self)
            from .faults import FaultyLine  # deferred: faults imports this module

            return FaultyLine(name, line_spec, faults, parent=self)

        self.downstream = _line("downstream", spec, downstream_faults)
        self.upstream = _line("upstream", self.upstream_spec, upstream_faults)

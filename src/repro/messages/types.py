"""Typed messages exchanged between the host CPU and the coprocessor.

The paper's host "sends one or more packets of data to the controller on
the FPGA" and receives "several types of message ... including data records
and flag vectors" (§II/§III).  This module defines those message types for
both directions; :mod:`repro.messages.framing` maps them onto the 32-bit
word streams the transceivers carry.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum


class MsgType(IntEnum):
    """Message type tags (one byte on the wire)."""

    # host → coprocessor
    EXEC = 0x01         # a 64-bit RTM instruction
    WRITE_REG = 0x02    # load a value into a main register
    WRITE_FLAGS = 0x03  # load a flag vector register
    RESET = 0x04        # soft-reset the coprocessor

    # coprocessor → host
    DATA_RECORD = 0x81  # register contents requested by GET
    FLAG_VECTOR = 0x82  # flag register contents requested by GETF
    EXCEPTION = 0x83    # decode/protocol error report
    HALTED = 0x84       # the RTM executed HALT
    MACHINE_CHECK = 0x85  # uncorrectable state error (SEU) detected


class ExceptionCode(IntEnum):
    """Payload of an EXCEPTION message."""

    ILLEGAL_OPCODE = 0x01   # no functional unit registered for the opcode
    BAD_REGISTER = 0x02     # register index out of the configured range
    BAD_MESSAGE = 0x03      # malformed frame from the host
    UNIT_ERROR = 0x04       # a functional unit signalled an error
    MACHINE_CHECK = 0x05    # uncorrectable error in a protected state element


@dataclass(frozen=True)
class Message:
    """Base class for all protocol messages."""


# -- host → coprocessor ---------------------------------------------------------

@dataclass(frozen=True)
class Exec(Message):
    """Execute one RTM instruction (64-bit word)."""

    word: int


@dataclass(frozen=True)
class WriteReg(Message):
    """Write ``value`` into main register ``reg``."""

    reg: int
    value: int


@dataclass(frozen=True)
class WriteFlags(Message):
    """Write ``value`` into flag register ``flag_reg``."""

    flag_reg: int
    value: int


@dataclass(frozen=True)
class Reset(Message):
    """Soft-reset request."""


@dataclass(frozen=True)
class BadFrame(Message):
    """Synthesised by the message buffer for a malformed/unknown frame.

    Never appears on the wire itself; it travels down the pipeline so the
    decoder can report a BAD_MESSAGE exception instead of the coprocessor
    wedging on garbage input.
    """

    header: int = 0


# -- coprocessor → host ---------------------------------------------------------

@dataclass(frozen=True)
class DataRecord(Message):
    """Contents of a main register, labelled with the GET instruction's tag."""

    tag: int
    value: int


@dataclass(frozen=True)
class FlagVector(Message):
    """Contents of a flag register, labelled with the GETF instruction's tag."""

    tag: int
    value: int


@dataclass(frozen=True)
class ExceptionReport(Message):
    """An error detected inside the coprocessor."""

    code: int
    info: int = 0


@dataclass(frozen=True)
class Halted(Message):
    """Acknowledgement that the RTM reached HALT."""


@dataclass(frozen=True)
class MachineCheck(Message):
    """An uncorrectable error in a protected state element.

    ``element`` identifies the state element (the machine-check unit's
    guard code), ``address`` the slot within it (register index, cell
    index, lock space, opcode), ``syndrome`` the packed flipped-bit
    positions.  The host's recovery engine rolls back to the last good
    checkpoint on receipt; without one it fails fast.
    """

    element: int
    address: int
    syndrome: int = 0


HOST_TO_COP = (Exec, WriteReg, WriteFlags, Reset)
COP_TO_HOST = (DataRecord, FlagVector, ExceptionReport, Halted, MachineCheck)

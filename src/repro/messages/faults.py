"""Deterministic link-fault injection.

The framework is parametric in the host link (§III) — and a real link is a
failure domain, not a perfect pipe.  :class:`FaultSpec` describes a
reproducible fault schedule; :class:`FaultyLine` is a :class:`DelayLine`
that applies it: word drops, single-bit flips, word duplications and a
permanent dead-link stall, each decided by a counter-indexed PRNG so the
same spec always injects the same faults at the same points in the word
stream, regardless of cycle-level timing.

Plug a spec into one or both directions of a system::

    build_system(channel=FAST_BUS, reliable=True,
                 faults=FaultSpec(seed=7, drop_rate=0.01, flip_rate=0.01))

Without the reliability layer (``reliable=True``) the injected faults are
*undetected* — that configuration exists to demonstrate the failure modes
the checksummed framing closes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..hdl import Component
from .channel import ChannelSpec, DelayLine

#: Multiplier decorrelating per-word fate streams drawn from one seed.
_SEED_STRIDE = 1_000_003


@dataclass(frozen=True)
class FaultSpec:
    """A reproducible fault schedule for one link direction.

    Rates are per *accepted word* and mutually exclusive per word (a word is
    dropped, flipped, duplicated, or clean).  ``dead_after_words`` kills the
    line permanently once that many words have been offered: nothing is
    accepted or delivered afterwards, and words already in flight freeze —
    the board fell off the bus.

    ``schedule`` pins individual word fates for targeted tests: a tuple of
    ``(index, fate)`` or ``(index, fate, xor)`` entries, where ``fate`` is
    one of ``"ok"``, ``"drop"``, ``"flip"``, ``"dup"``.  Scheduled entries
    override the rates at those indices; each index may be pinned at most
    once — overlapping entries would silently shadow each other, so they
    are rejected outright.
    """

    seed: int = 0
    drop_rate: float = 0.0
    flip_rate: float = 0.0
    dup_rate: float = 0.0
    dead_after_words: Optional[int] = None
    schedule: tuple = ()

    _FATES = ("ok", "drop", "flip", "dup")

    def __post_init__(self) -> None:
        for name in ("drop_rate", "flip_rate", "dup_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {rate}")
        if self.drop_rate + self.flip_rate + self.dup_rate > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        if self.dead_after_words is not None and self.dead_after_words < 0:
            raise ValueError("dead_after_words must be >= 0")
        seen: set[int] = set()
        for entry in self.schedule:
            if not (isinstance(entry, tuple) and len(entry) in (2, 3)):
                raise ValueError(
                    "schedule entries are (index, fate) or (index, fate, xor) "
                    f"tuples, got {entry!r}"
                )
            index, fate = entry[0], entry[1]
            if not (isinstance(index, int) and index >= 0):
                raise ValueError(f"schedule index must be a non-negative int, got {index!r}")
            if fate not in self._FATES:
                raise ValueError(f"schedule fate must be one of {self._FATES}, got {fate!r}")
            if index in seen:
                raise ValueError(
                    f"schedule pins word {index} more than once — overlapping "
                    "entries would silently shadow each other"
                )
            seen.add(index)

    @property
    def any_faults(self) -> bool:
        return (
            self.drop_rate > 0
            or self.flip_rate > 0
            or self.dup_rate > 0
            or self.dead_after_words is not None
            or any(entry[1] != "ok" for entry in self.schedule)
        )

    def fate(self, index: int) -> tuple[str, int]:
        """The fate of the ``index``-th word: ("ok"|"drop"|"flip"|"dup", xor).

        Pure function of (seed, index) — the schedule is a property of the
        spec, not of simulation timing.
        """
        if self.dead_after_words is not None and index >= self.dead_after_words:
            return "dead", 0
        rng = random.Random(self.seed * _SEED_STRIDE + index)
        for entry in self.schedule:
            if entry[0] == index:
                fate = entry[1]
                if fate != "flip":
                    return fate, 0
                xor = entry[2] if len(entry) == 3 else 1 << rng.randrange(32)
                return "flip", xor & 0xFFFF_FFFF
        u = rng.random()
        if u < self.drop_rate:
            return "drop", 0
        if u < self.drop_rate + self.flip_rate:
            return "flip", 1 << rng.randrange(32)
        if u < self.drop_rate + self.flip_rate + self.dup_rate:
            return "dup", 0
        return "ok", 0


@dataclass
class FaultStats:
    """What a :class:`FaultyLine` actually did to the word stream."""

    words_offered: int = 0    # words the sender pushed at the line
    words_dropped: int = 0
    bits_flipped: int = 0
    words_duplicated: int = 0
    died_at_word: Optional[int] = None
    #: words the sender presented after the line died — never accepted, so
    #: invisible to words_offered; this is the sender-side loss a dead link
    #: causes beyond the in-flight words it froze
    stalled_after_death: int = 0

    def as_dict(self) -> dict:
        return {
            "words_offered": self.words_offered,
            "words_dropped": self.words_dropped,
            "bits_flipped": self.bits_flipped,
            "words_duplicated": self.words_duplicated,
            "dead": self.died_at_word is not None,
            "stalled_after_death": self.stalled_after_death,
        }

    @property
    def faults_injected(self) -> int:
        return self.words_dropped + self.bits_flipped + self.words_duplicated


class FaultyLine(DelayLine):
    """A :class:`DelayLine` with a seeded fault schedule applied at the
    acceptance point.

    Cycle timing is identical to the fault-free line for clean words (an
    all-zero-rate spec behaves exactly like ``DelayLine``), so goodput
    comparisons across fault rates measure recovery cost, not model skew.
    """

    def __init__(
        self,
        name: str,
        spec: ChannelSpec,
        faults: FaultSpec,
        parent: Optional[Component] = None,
    ):
        self.faults = faults
        self.fault_stats = FaultStats()
        super().__init__(name, spec, parent=parent)
        # Dead-link latch: a register, so the combinational ready/valid
        # gates are properly tracked by the event-driven settle scheduler.
        self._dead = self.reg("dead", 1, 0)
        # One count per word the sender presents against the dead line: the
        # latch holds while `valid` stays up (a stalled sender re-presents
        # the same word every cycle) and re-arms when valid drops, so the
        # counter is per-word, not per-cycle — and therefore invariant
        # under time-wheel fast-forward, which can only skip cycles on
        # which the latch state would not change.
        self._stall_counted = False

        @self.seq
        def _count_stalled() -> None:
            if self._dead.value and self.inp.valid.value:
                if not self._stall_counted:
                    self._stall_counted = True
                    self.fault_stats.stalled_after_death += 1
            else:
                self._stall_counted = False

        @self.on_reset
        def _clear() -> None:
            self.fault_stats = FaultStats()
            self._stall_counted = False

    # -- DelayLine injection hooks -------------------------------------------------

    def _accepting(self) -> bool:
        return not self._dead.value

    def _delivering(self) -> bool:
        return not self._dead.value

    def _admit(self, flight: tuple, word: int) -> tuple:
        stats = self.fault_stats
        index = stats.words_offered
        stats.words_offered = index + 1
        fate, xor = self.faults.fate(index)
        if fate == "dead":
            # the word that crossed the death threshold is lost with the line
            self._dead.nxt = 1
            if stats.died_at_word is None:
                stats.died_at_word = index
            return flight
        if (
            self.faults.dead_after_words is not None
            and index + 1 >= self.faults.dead_after_words
        ):
            self._dead.nxt = 1
            if stats.died_at_word is None:
                stats.died_at_word = index + 1
        if fate == "drop":
            stats.words_dropped += 1
            return flight
        entry = (self._epoch + self.spec.latency_cycles - 1, word)
        if fate == "flip":
            stats.bits_flipped += 1
            entry = (entry[0], (word ^ xor) & 0xFFFF_FFFF)
        if fate == "dup":
            stats.words_duplicated += 1
            return flight + (entry, entry)
        return flight + (entry,)

    @property
    def dead(self) -> bool:
        """True once the dead-link stall has engaged."""
        return bool(self._dead.value)

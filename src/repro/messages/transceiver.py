"""Transceiver modules: the pluggable boundary to the physical channel.

"The register transfer machine communicates with the host processor using a
transceiver circuit ... In some cases a predefined transceiver interface
module may be available ... Depending on the system, it may be necessary to
create a new transceiver circuit" (§II).  We model that plug point:

* :class:`Receiver` / :class:`Transmitter` — word-stream adapters with a
  small elastic FIFO, the shape of a COTS UART/bus endpoint.
* :class:`HostPort` — the *host end* of the link: a behavioural component
  the host driver uses to push and pop words from Python.

New physical interfaces are added by subclassing Receiver/Transmitter (see
``tests/messages/test_transceiver.py`` for a custom example), leaving the
RTM untouched — the portability claim of the paper.
"""

from __future__ import annotations

from typing import Optional

from ..hdl import Component, Stream, SyncFifo


class Receiver(Component):
    """Channel → framework word stream, with an elastic buffer.

    The FIFO decouples channel timing from message-buffer timing, standing
    in for the clock-domain/rate adaptation a real COTS receiver performs.
    """

    def __init__(self, name: str, parent: Optional[Component] = None, depth: int = 8):
        super().__init__(name, parent)
        self.fifo = SyncFifo("fifo", depth=depth, parent=self, width=32)
        #: channel-facing input
        self.chan = self.fifo.inp
        #: framework-facing output
        self.out = self.fifo.out

    @property
    def buffered(self) -> int:
        return self.fifo.occupancy


class Transmitter(Component):
    """Framework word stream → channel, with an elastic buffer."""

    def __init__(self, name: str, parent: Optional[Component] = None, depth: int = 8):
        super().__init__(name, parent)
        self.fifo = SyncFifo("fifo", depth=depth, parent=self, width=32)
        #: framework-facing input
        self.inp = self.fifo.inp
        #: channel-facing output
        self.chan = self.fifo.out

    @property
    def buffered(self) -> int:
        return self.fifo.occupancy


class HostPort(Component):
    """The host computer's end of the link (behavioural).

    The host driver calls :meth:`send_word` to enqueue words toward the
    coprocessor and :meth:`recv_word` to drain arrived words; the component
    presents/accepts them on streams with correct cycle timing.
    """

    def __init__(self, name: str, parent: Optional[Component] = None):
        super().__init__(name, parent)
        #: words travelling host → coprocessor
        self.tx = Stream(self, "tx", 32)
        #: words travelling coprocessor → host
        self.rx = Stream(self, "rx", 32)
        self._txq = self.reg("txq", None, reset=())
        self._rxq = self.reg("rxq", None, reset=())

        @self.comb
        def _drive() -> None:
            txq = self._txq.value
            self.tx.valid.set(1 if txq else 0)
            if txq:
                self.tx.payload.set(txq[0])
            self.rx.ready.set(1)  # the host always drains

        @self.seq(pure=True)
        def _tick() -> None:
            if self.tx.fires():
                self._txq.nxt = self._txq.value[1:]
            if self.rx.fires():
                self._rxq.nxt = self._rxq.value + (self.rx.payload.value,)

    # -- driver-side API ---------------------------------------------------------

    def send_word(self, word: int) -> None:
        """Queue one 32-bit word for transmission (takes effect next settle)."""
        self._txq.force(self._txq.value + (word & 0xFFFF_FFFF,))

    def send_words(self, words) -> None:
        self._txq.force(self._txq.value + tuple(w & 0xFFFF_FFFF for w in words))

    def recv_word(self) -> Optional[int]:
        """Pop the oldest received word, or None when nothing has arrived."""
        rxq = self._rxq.value
        if not rxq:
            return None
        self._rxq.force(rxq[1:])
        return rxq[0]

    @property
    def tx_pending(self) -> int:
        return len(self._txq.value)

    @property
    def rx_available(self) -> int:
        return len(self._rxq.value)

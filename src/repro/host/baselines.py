"""Software baselines: the operations the coprocessor accelerates, in software.

The paper's comparisons are between a specialised circuit and "a general
purpose circuit (i.e. processor) running a program" (§I).  These functions
are the processor-side implementations, instrumented with an explicit
*operation counter* so the benchmarks can compare costs in
architecture-neutral units (CPU operations vs coprocessor cycles) and then
apply the clock model of :mod:`repro.analysis` for wall-clock shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OpCounter:
    """Counts primitive CPU operations executed by a software baseline."""

    ops: int = 0
    breakdown: dict[str, int] = field(default_factory=dict)

    def count(self, kind: str, n: int = 1) -> None:
        self.ops += n
        self.breakdown[kind] = self.breakdown.get(kind, 0) + n


def multiword_add(
    a: list[int], b: list[int], width: int, counter: OpCounter | None = None
) -> tuple[list[int], int]:
    """Limb-by-limb addition with carry propagation, LS limb first.

    Mirrors what a C program does for multi-precision addition with 32/64-bit
    limbs; returns (limbs, carry_out).
    """
    if len(a) != len(b):
        raise ValueError("operand limb counts differ")
    mask = (1 << width) - 1
    carry = 0
    out: list[int] = []
    for x, y in zip(a, b):
        total = (x & mask) + (y & mask) + carry
        out.append(total & mask)
        carry = total >> width
        if counter is not None:
            counter.count("add", 1)
            counter.count("carry", 1)
    return out, carry


def multiword_sub(
    a: list[int], b: list[int], width: int, counter: OpCounter | None = None
) -> tuple[list[int], int]:
    """Limb-by-limb subtraction; returns (limbs, carry) with carry=1 ⇔ no borrow."""
    if len(a) != len(b):
        raise ValueError("operand limb counts differ")
    mask = (1 << width) - 1
    carry = 1
    out: list[int] = []
    for x, y in zip(a, b):
        total = (x & mask) + ((~y) & mask) + carry
        out.append(total & mask)
        carry = total >> width
        if counter is not None:
            counter.count("sub", 1)
            counter.count("carry", 1)
    return out, carry


def limbs_of(value: int, n: int, width: int) -> list[int]:
    """Split a non-negative integer into ``n`` limbs, LS first."""
    mask = (1 << width) - 1
    return [(value >> (width * i)) & mask for i in range(n)]


def value_of(limbs: list[int], width: int) -> int:
    """Reassemble limbs (LS first) into an integer."""
    value = 0
    for i, limb in enumerate(limbs):
        value |= limb << (width * i)
    return value

"""Host-side driver: the software component that talks to the coprocessor.

"The entire system is controlled by the host computer.  To perform an
accelerated operation, the host sends one or more packets of data to the
controller on the FPGA ... and [the controller] returns the final results
to the processor" (§II).  The driver frames messages onto the simulated
channel, advances the simulation (standing in for wall-clock time passing
on the host), and deframes responses.

Since the engine refactor the driver is a thin synchronous facade over
:class:`repro.host.engine.HostEngine`: every blocking call is a tracked
submission followed by ``Future.result()``, and the asynchronous variants
(``read_reg_async``/``read_flags_async``/``halt_async``) expose the
futures directly.  Responses are correlated to requests by the GET/GETF
tag through the engine's completion router, so interleaved responses of
other types stay queued in ``inbox`` instead of being dropped or raising
spuriously.

Every driver call accounts its cost in *coprocessor clock cycles* via the
underlying simulator — the currency all benchmarks report.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..hdl.errors import SimulationError
from ..isa.encoding import Instruction, encode
from ..messages.types import (
    DataRecord,
    Exec,
    FlagVector,
    Halted,
    Message,
    Reset,
    WriteFlags,
    WriteReg,
)
from ..system.builder import BuiltSystem
from .engine import DEFAULT_WINDOW, CoprocessorError, HostEngine, HostFuture
from .errors import HostTimeoutError, LinkDownError

__all__ = [
    "CoprocessorDriver",
    "CoprocessorError",
    "HostTimeoutError",
    "LinkDownError",
]

#: Extra idle cycles `run_until_quiet` demands beyond the channel latency
#: before declaring the system quiet.  The `busy` probe unions per-stage
#: occupancy registers that update at clock edges, so a word handed off at
#: edge N can be invisible for the one settle in which the producer has
#: already dropped it and the consumer has not yet committed it; two spare
#: cycles cover that handoff blind spot on both directions.
QUIET_HANDOFF_MARGIN = 2


def quiet_hysteresis(link) -> int:
    """Idle-streak bound for quiescence detection, derived from the link.

    A word is out of the `busy` probe's sight for at most the channel's
    pipeline latency (the delay line holds it visibly, but the downstream
    consumer's occupancy only registers ``latency_cycles`` after
    acceptance on the slowest direction), plus the one-cycle register
    handoff margin at each end.  Pumping that many consecutive idle cycles
    therefore guarantees nothing is silently in flight.

    Abstract links expose that latency as a :class:`ChannelSpec`; physical
    link models (e.g. the UART pair) expose an effective word time instead,
    which bounds how long one word can sit inside the shift registers.
    """
    spec = getattr(link, "spec", None)
    if spec is not None:
        upstream = getattr(link, "upstream_spec", spec)
        latency = max(spec.latency_cycles, upstream.latency_cycles)
    else:
        latency = getattr(link, "cycles_per_word", 1)
    return latency + QUIET_HANDOFF_MARGIN


class CoprocessorDriver:
    """Message-level interface to a built system."""

    def __init__(
        self,
        system: BuiltSystem,
        raise_on_exception: bool = True,
        host_port=None,
        window: Optional[int] = None,
        tags: Optional[Iterable[int]] = None,
    ):
        self.system = system
        self.soc = system.soc
        self.sim = system.sim
        self.raise_on_exception = raise_on_exception
        #: the HostPort this driver speaks through (multi-CPU systems have
        #: several, one per CPU — paper Fig. 1.1)
        self.host = host_port if host_port is not None else system.soc.host
        if window is None:
            window = getattr(system, "engine_window", None) or DEFAULT_WINDOW
        self.engine = HostEngine(
            system,
            self.host,
            window=window,
            tags=tags,
            raise_on_exception=raise_on_exception,
        )
        #: responses that matched no pending request, oldest first
        self.inbox = self.engine.inbox
        self.exceptions = self.engine.exceptions
        self._quiet_streak = quiet_hysteresis(system.soc.link)

    # -- low level ---------------------------------------------------------------

    @property
    def cycles(self) -> int:
        """Elapsed coprocessor clock cycles."""
        return self.sim.now

    def send(self, msg: Message) -> None:
        """Frame and enqueue one message toward the coprocessor."""
        self.engine.submit_send((msg,))

    def send_all(self, msgs: Iterable[Message]) -> None:
        """Queue several messages; they serialise as one framing batch."""
        self.engine.submit_send(msgs)

    def pump(self, cycles: int = 1) -> None:
        """Advance the simulation, draining any arrived response words."""
        self.engine.pump(cycles)

    def run_until_quiet(self, max_cycles: int = 1_000_000,
                        deadline_cycles: Optional[int] = None) -> int:
        """Pump until the whole system is drained; returns cycles consumed.

        ``deadline_cycles`` bounds how long the system may go with no
        observable progress (words moving, instructions retiring,
        completions) before a descriptive :class:`HostTimeoutError` — or
        :class:`LinkDownError`, if the reliable layer has declared the link
        dead — is raised instead of idling out the full ``max_cycles``
        budget.  None → a link-derived default; ≤0 → disabled.
        """
        start = self.sim.now
        idle_streak = 0
        deadline = self.engine.resolve_deadline(deadline_cycles)
        signature = self.engine.progress_signature()
        last_progress = start
        while idle_streak < self._quiet_streak:
            now = self.sim.now
            if now - start >= max_cycles:
                raise SimulationError(
                    f"system did not go quiet within {max_cycles} cycles"
                )
            if deadline is not None and now - last_progress >= deadline:
                raise self.engine.timeout_error(
                    f"system stayed busy with no progress for {deadline} "
                    f"cycles ({self.engine.in_flight} in flight, "
                    f"{self.engine.queued} queued)"
                )
            # Chunked pumping.  A chunk only exceeds one cycle when the
            # kernel certifies pure aging for its whole span, so the `busy`
            # probe and the progress signature are frozen across its
            # interior: every interior cycle observes `pre_busy`, and only
            # the chunk's final (real-edge) cycle can observe something new.
            # Bounding by the timeout slacks and — once idle — by the
            # remaining quiet streak makes this loop exit or raise at
            # exactly the cycle the one-cycle-at-a-time loop would.
            bound = start + max_cycles - now
            if deadline is not None:
                bound = min(bound, last_progress + deadline - now)
            pre_busy = self.soc.busy or not self.engine.idle
            if not pre_busy:
                bound = min(bound, self._quiet_streak - idle_streak)
            n = self.engine._pump_chunk(max(1, bound))
            self.engine.flush()
            busy = self.soc.busy or not self.engine.idle
            if busy:
                idle_streak = 0
            elif pre_busy:
                idle_streak = 1  # only the final chunk cycle observed idle
            else:
                idle_streak += n
            current = self.engine.progress_signature()
            if current != signature:
                signature = current
                last_progress = self.sim.now
        return self.sim.now - start

    def wait_for(self, count: int = 1, max_cycles: int = 1_000_000,
                 deadline_cycles: Optional[int] = None) -> list[Message]:
        """Pump until ``count`` responses are available; pops and returns them.

        Operates on the unmatched-response ``inbox`` — the home of replies
        to requests issued through the raw ``execute`` path.  Raises
        :class:`HostTimeoutError` (or :class:`LinkDownError`) once
        ``deadline_cycles`` pass without observable progress, so a dead
        link fails fast; None → a link-derived default, ≤0 → disabled.
        """
        start = self.sim.now
        deadline = self.engine.resolve_deadline(deadline_cycles)
        signature = self.engine.progress_signature()
        last_progress = start
        while len(self.inbox) < count:
            now = self.sim.now
            if now - start >= max_cycles:
                raise SimulationError(
                    f"expected {count} responses, got {len(self.inbox)} after "
                    f"{max_cycles} cycles"
                )
            if deadline is not None and now - last_progress >= deadline:
                raise self.engine.timeout_error(
                    f"expected {count} responses, got {len(self.inbox)} after "
                    f"{deadline} cycles without progress"
                )
            # The inbox only grows when words arrive, and a multi-cycle
            # chunk certifies none do before its final cycle — so bounding
            # by the two timeout slacks preserves the exact exit cycle.
            bound = start + max_cycles - now
            if deadline is not None:
                bound = min(bound, last_progress + deadline - now)
            self.engine._pump_chunk(max(1, bound))
            self.engine.flush()
            current = self.engine.progress_signature()
            if current != signature:
                signature = current
                last_progress = self.sim.now
        out, self.inbox[:] = self.inbox[:count], self.inbox[count:]
        return out

    # -- message-level convenience ----------------------------------------------

    def execute(self, instr: Instruction) -> None:
        """Send one instruction for execution (no waiting, no tracking)."""
        self.send(Exec(encode(instr)))

    def execute_all(self, instrs: Iterable[Instruction]) -> None:
        self.send_all(Exec(encode(i)) for i in instrs)

    def write_reg(self, reg: int, value: int) -> None:
        self.send(WriteReg(reg, value & self.system.config.word_mask))

    def write_flags(self, flag_reg: int, value: int) -> None:
        self.send(WriteFlags(flag_reg, value))

    def reset_message(self) -> None:
        self.send(Reset())

    # -- asynchronous submission --------------------------------------------------

    def read_reg_async(self, reg: int, tag: Optional[int] = None) -> HostFuture:
        """GET a register; the future resolves to its integer value."""
        from ..isa import instructions as ins

        return self.engine.submit_tracked(
            lambda t: (Exec(encode(ins.get(reg, t))),),
            DataRecord,
            tag=tag,
            transform=lambda msg: msg.value,
        )

    def read_flags_async(self, flag_reg: int, tag: Optional[int] = None) -> HostFuture:
        """GETF a flag register; the future resolves to the flag vector."""
        from ..isa import instructions as ins

        return self.engine.submit_tracked(
            lambda t: (Exec(encode(ins.getf(flag_reg, t))),),
            FlagVector,
            tag=tag,
            transform=lambda msg: msg.value,
        )

    def halt_async(self) -> HostFuture:
        """Send HALT; the future resolves on the acknowledgement."""
        from ..isa import instructions as ins

        halt = Exec(encode(ins.halt()))
        return self.engine.submit_tracked(
            lambda _t: (halt,), Halted, needs_tag=False
        )

    # -- synchronous convenience (futures resolved inline) -----------------------

    def read_reg(self, reg: int, tag: Optional[int] = None,
                 max_cycles: int = 1_000_000) -> int:
        """GET a register and wait for its data record."""
        return self.read_reg_async(reg, tag).result(max_cycles)

    def read_flags(self, flag_reg: int, tag: Optional[int] = None,
                   max_cycles: int = 1_000_000) -> int:
        """GETF a flag register and wait for its flag vector."""
        return self.read_flags_async(flag_reg, tag).result(max_cycles)

    def halt_and_wait(self, max_cycles: int = 1_000_000) -> None:
        """Send HALT and wait for the acknowledgement."""
        self.halt_async().result(max_cycles)

    def _expect(self, msg_type: type, max_cycles: int) -> Message:
        """Pop the oldest inbox message of ``msg_type``, pumping until one
        arrives.  Responses of other types stay queued (and tag-tracked
        requests are routed by the engine before ever reaching the inbox),
        so an interleaved stream cannot be dropped or raise spuriously."""
        start = self.sim.now
        while True:
            for i, msg in enumerate(self.inbox):
                if isinstance(msg, msg_type):
                    del self.inbox[i]
                    return msg
            if self.sim.now - start >= max_cycles:
                others = [type(m).__name__ for m in self.inbox]
                raise SimulationError(
                    f"expected {msg_type.__name__} within {max_cycles} cycles; "
                    f"inbox holds {others or 'nothing'}"
                )
            self.engine._pump_chunk(max(1, start + max_cycles - self.sim.now))
            self.engine.flush()

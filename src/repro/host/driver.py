"""Host-side driver: the software component that talks to the coprocessor.

"The entire system is controlled by the host computer.  To perform an
accelerated operation, the host sends one or more packets of data to the
controller on the FPGA ... and [the controller] returns the final results
to the processor" (§II).  The driver frames messages onto the simulated
channel, advances the simulation (standing in for wall-clock time passing
on the host), and deframes responses.

Every driver call accounts its cost in *coprocessor clock cycles* via the
underlying simulator — the currency all benchmarks report.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..hdl.errors import SimulationError
from ..isa.encoding import Instruction, encode
from ..messages.framing import Deframer, Framer
from ..messages.types import (
    DataRecord,
    Exec,
    ExceptionReport,
    FlagVector,
    Halted,
    Message,
    Reset,
    WriteFlags,
    WriteReg,
)
from ..system.builder import BuiltSystem


class CoprocessorError(RuntimeError):
    """The coprocessor reported an exception message."""

    def __init__(self, report: ExceptionReport):
        self.report = report
        super().__init__(f"coprocessor exception: code={report.code} info={report.info}")


class CoprocessorDriver:
    """Message-level interface to a built system."""

    def __init__(
        self,
        system: BuiltSystem,
        raise_on_exception: bool = True,
        host_port=None,
    ):
        self.system = system
        self.soc = system.soc
        self.sim = system.sim
        self.raise_on_exception = raise_on_exception
        #: the HostPort this driver speaks through (multi-CPU systems have
        #: several, one per CPU — paper Fig. 1.1)
        self.host = host_port if host_port is not None else system.soc.host
        cfg = system.config
        self._framer = Framer(cfg.data_words)
        self._deframer = Deframer(cfg.data_words)
        #: responses received from the coprocessor, oldest first
        self.inbox: list[Message] = []
        self.exceptions: list[ExceptionReport] = []

    # -- low level ---------------------------------------------------------------

    @property
    def cycles(self) -> int:
        """Elapsed coprocessor clock cycles."""
        return self.sim.now

    def send(self, msg: Message) -> None:
        """Frame and enqueue one message toward the coprocessor."""
        self.host.send_words(self._framer.frame(msg))

    def send_all(self, msgs: Iterable[Message]) -> None:
        for m in msgs:
            self.send(m)

    def pump(self, cycles: int = 1) -> None:
        """Advance the simulation, draining any arrived response words."""
        for _ in range(cycles):
            self.sim.step()
            self._drain()

    def _drain(self) -> None:
        while True:
            word = self.host.recv_word()
            if word is None:
                return
            msg = self._deframer.push(word)
            if msg is not None:
                if isinstance(msg, ExceptionReport):
                    self.exceptions.append(msg)
                    if self.raise_on_exception:
                        raise CoprocessorError(msg)
                self.inbox.append(msg)

    def run_until_quiet(self, max_cycles: int = 1_000_000) -> int:
        """Pump until the whole system is drained; returns cycles consumed."""
        start = self.sim.now
        idle_streak = 0
        while idle_streak < 4:  # a few cycles of hysteresis for edge cases
            if self.sim.now - start >= max_cycles:
                raise SimulationError(
                    f"system did not go quiet within {max_cycles} cycles"
                )
            self.pump()
            idle_streak = idle_streak + 1 if not self.soc.busy else 0
        return self.sim.now - start

    def wait_for(self, count: int = 1, max_cycles: int = 1_000_000) -> list[Message]:
        """Pump until ``count`` responses are available; pops and returns them."""
        start = self.sim.now
        while len(self.inbox) < count:
            if self.sim.now - start >= max_cycles:
                raise SimulationError(
                    f"expected {count} responses, got {len(self.inbox)} after "
                    f"{max_cycles} cycles"
                )
            self.pump()
        out, self.inbox = self.inbox[:count], self.inbox[count:]
        return out

    # -- message-level convenience ----------------------------------------------

    def execute(self, instr: Instruction) -> None:
        """Send one instruction for execution (no waiting)."""
        self.send(Exec(encode(instr)))

    def execute_all(self, instrs: Iterable[Instruction]) -> None:
        for i in instrs:
            self.execute(i)

    def write_reg(self, reg: int, value: int) -> None:
        self.send(WriteReg(reg, value & self.system.config.word_mask))

    def write_flags(self, flag_reg: int, value: int) -> None:
        self.send(WriteFlags(flag_reg, value))

    def reset_message(self) -> None:
        self.send(Reset())

    def read_reg(self, reg: int, tag: int = 0, max_cycles: int = 1_000_000) -> int:
        """GET a register and wait for its data record."""
        from ..isa import instructions as ins

        self.execute(ins.get(reg, tag))
        msg = self._expect(DataRecord, max_cycles)
        if msg.tag != tag:
            raise SimulationError(f"data record tag mismatch: sent {tag}, got {msg.tag}")
        return msg.value

    def read_flags(self, flag_reg: int, tag: int = 0, max_cycles: int = 1_000_000) -> int:
        """GETF a flag register and wait for its flag vector."""
        from ..isa import instructions as ins

        self.execute(ins.getf(flag_reg, tag))
        msg = self._expect(FlagVector, max_cycles)
        if msg.tag != tag:
            raise SimulationError(f"flag vector tag mismatch: sent {tag}, got {msg.tag}")
        return msg.value

    def halt_and_wait(self, max_cycles: int = 1_000_000) -> None:
        """Send HALT and wait for the acknowledgement."""
        from ..isa import instructions as ins

        self.execute(ins.halt())
        self._expect(Halted, max_cycles)

    def _expect(self, msg_type: type, max_cycles: int) -> Message:
        (msg,) = self.wait_for(1, max_cycles)
        if not isinstance(msg, msg_type):
            raise SimulationError(
                f"expected {msg_type.__name__}, received {type(msg).__name__}: {msg!r}"
            )
        return msg

"""High-level host API: register allocation and typed coprocessor calls.

This is the layer an application programmer uses — the software half of
the paper's partitioning ("the main program is written in C or any other
programming language", Fig. 1 caption).  It wraps the driver with:

* a register allocator over the configured register file,
* typed operation helpers for the case-study units,
* multi-word (arbitrary precision) arithmetic built from ADC/SBB carry
  chains — the "multi-word operation ... through an externally provided
  carry bit" of thesis §3.2.2.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

from ..isa import instructions as ins
from ..isa.opcodes import FLAG_CARRY, ArithOp, LogicOp, Opcode
from ..system.builder import BuiltSystem, build_system
from .driver import CoprocessorDriver
from .engine import HostFuture


class OutOfRegisters(RuntimeError):
    """The register allocator has no free register left."""


class Session:
    """An open connection to a coprocessor with managed registers."""

    def __init__(
        self,
        system: Optional[BuiltSystem] = None,
        reg_range: Optional[range] = None,
        flag_range: Optional[range] = None,
        driver: Optional[CoprocessorDriver] = None,
        **build_kwargs,
    ):
        """Open a session, optionally confined to a register partition.

        ``reg_range``/``flag_range`` restrict the allocator to a sub-range
        of the register files — the software convention that lets several
        CPUs (or several libraries on one CPU) share a coprocessor without
        trampling each other (paper Fig. 1.1).
        """
        self.system = system if system is not None else build_system(**build_kwargs)
        self.driver = driver if driver is not None else CoprocessorDriver(self.system)
        cfg = self.system.config
        regs = reg_range if reg_range is not None else range(cfg.n_regs)
        flags = flag_range if flag_range is not None else range(1, cfg.n_flag_regs)
        if regs and not (0 <= regs[0] and regs[-1] < cfg.n_regs):
            raise ValueError(f"reg_range {regs} outside the register file")
        if flags and not (0 <= flags[0] and flags[-1] < cfg.n_flag_regs):
            raise ValueError(f"flag_range {flags} outside the flag file")
        self._free = list(reversed(regs))
        self._free_flags = list(reversed(flags))  # f0 kept as scratch by default

    # -- register management -------------------------------------------------------

    def alloc(self) -> int:
        """Claim a free main register."""
        if not self._free:
            raise OutOfRegisters("no free data register")
        return self._free.pop()

    def alloc_many(self, n: int) -> list[int]:
        return [self.alloc() for _ in range(n)]

    def alloc_flag(self) -> int:
        if not self._free_flags:
            raise OutOfRegisters("no free flag register")
        return self._free_flags.pop()

    def free(self, *regs: int) -> None:
        for r in regs:
            self._free.append(r)

    def free_flag(self, *regs: int) -> None:
        for r in regs:
            self._free_flags.append(r)

    @contextmanager
    def scratch(self, n: int = 1) -> Iterator[list[int]]:
        """Temporarily claim ``n`` registers."""
        regs = self.alloc_many(n)
        try:
            yield regs
        finally:
            self.free(*regs)

    # -- scalar operations -----------------------------------------------------------

    def write(self, reg: int, value: int) -> None:
        self.driver.write_reg(reg, value)

    def read(self, reg: int) -> int:
        return self.driver.read_reg(reg)

    def put(self, value: int) -> int:
        """Allocate a register and load a value into it."""
        reg = self.alloc()
        self.write(reg, value)
        return reg

    def arith(
        self,
        op: ArithOp,
        a: int,
        b: int = 0,
        dst: Optional[int] = None,
        flag_out: int = 0,
        flag_in: int = 0,
    ) -> int:
        """Issue one arithmetic-unit instruction; returns the dst register."""
        if dst is None:
            dst = self.alloc()
        instr = ins.dispatch(
            Opcode.ARITH, int(op), dst1=dst, src1=a, src2=b,
            dst_flag=flag_out, src_flag=flag_in,
        )
        self.driver.execute(instr)
        return dst

    def logic(self, op: LogicOp, a: int, b: int = 0, dst: Optional[int] = None,
              flag_out: int = 0) -> int:
        """Issue one logic-unit instruction; returns the dst register."""
        if dst is None:
            dst = self.alloc()
        instr = ins.dispatch(Opcode.LOGIC, int(op), dst1=dst, src1=a, src2=b,
                             dst_flag=flag_out)
        self.driver.execute(instr)
        return dst

    def compute(self, op: ArithOp | LogicOp, x: int, y: int = 0) -> int:
        """Round-trip helper: load operands, run one op, fetch the result."""
        ra = self.put(x)
        rb = self.put(y)
        if isinstance(op, ArithOp):
            rd = self.arith(op, ra, rb)
        else:
            rd = self.logic(op, ra, rb)
        value = self.read(rd)
        self.free(ra, rb, rd)
        return value

    def read_carry(self, flag_reg: int) -> int:
        return self.driver.read_flags(flag_reg) & FLAG_CARRY

    # -- asynchronous operations (the host engine's futures) --------------------------

    def read_async(self, reg: int) -> HostFuture:
        """GET a register without blocking; resolves to its integer value."""
        return self.driver.read_reg_async(reg)

    def _alloc_async(self) -> int:
        """Claim a register, throttling on in-flight async work.

        Each in-flight ``compute_async`` parks three registers until its
        result streams back, so the register file is a windowed resource
        just like tags: when it runs dry, pump the engine until a
        completion callback frees one instead of raising.  Raises only
        when nothing is in flight — a genuinely over-committed file.
        """
        engine = self.driver.engine
        while True:
            try:
                return self.alloc()
            except OutOfRegisters:
                if engine.idle:
                    raise
                self.driver.pump()

    def compute_async(self, op: ArithOp | LogicOp, x: int, y: int = 0) -> HostFuture:
        """`compute` without the wait: operands load, the op issues, and the
        result GET is tracked by the engine.  The operand/result registers
        are freed automatically when the future completes, so a windowed
        batch recycles registers as results stream back; a batch larger
        than the register file self-throttles instead of raising."""
        ra = self._alloc_async()
        self.write(ra, x)
        rb = self._alloc_async()
        self.write(rb, y)
        rd = self._alloc_async()
        if isinstance(op, ArithOp):
            self.arith(op, ra, rb, dst=rd)
        else:
            self.logic(op, ra, rb, dst=rd)
        future = self.driver.read_reg_async(rd)
        future.add_done_callback(lambda _f: self.free(ra, rb, rd))
        return future

    @contextmanager
    def pipeline(self) -> Iterator["Pipeline"]:
        """Batch scope that defers every wait until exit.

        Inside the block, ``p.compute``/``p.read`` mirror the synchronous
        calls but return futures immediately; requests overlap on the link
        up to the engine's in-flight window.  On clean exit all issued
        futures are waited (so every ``.result()`` afterwards is instant);
        if the block raises, nothing is waited.
        """
        p = Pipeline(self)
        yield p
        p.wait()

    # -- multi-word arithmetic (thesis §3.2.2 carry chains) ---------------------------

    def write_wide(self, value: int, limbs: int) -> list[int]:
        """Load an arbitrary-precision value into ``limbs`` registers, LS first."""
        mask = self.system.config.word_mask
        width = self.system.config.word_bits
        regs = self.alloc_many(limbs)
        for i, reg in enumerate(regs):
            self.write(reg, (value >> (width * i)) & mask)
        return regs

    def read_wide(self, regs: Sequence[int]) -> int:
        width = self.system.config.word_bits
        value = 0
        for i, reg in enumerate(regs):
            value |= self.read(reg) << (width * i)
        return value

    def add_wide(self, a: Sequence[int], b: Sequence[int]) -> tuple[list[int], int]:
        """Multi-word addition via an ADD/ADC carry chain.

        Returns (result registers LS-first, final carry flag register).
        """
        if len(a) != len(b):
            raise ValueError("operand limb counts differ")
        carry_flag = self.alloc_flag()
        out: list[int] = []
        for i, (ra, rb) in enumerate(zip(a, b)):
            rd = self.alloc()
            if i == 0:
                self.arith(ArithOp.ADD, ra, rb, dst=rd, flag_out=carry_flag)
            else:
                self.arith(ArithOp.ADC, ra, rb, dst=rd,
                           flag_out=carry_flag, flag_in=carry_flag)
            out.append(rd)
        return out, carry_flag

    def sub_wide(self, a: Sequence[int], b: Sequence[int]) -> tuple[list[int], int]:
        """Multi-word subtraction via a SUB/SBB borrow chain."""
        if len(a) != len(b):
            raise ValueError("operand limb counts differ")
        carry_flag = self.alloc_flag()
        out: list[int] = []
        for i, (ra, rb) in enumerate(zip(a, b)):
            rd = self.alloc()
            if i == 0:
                self.arith(ArithOp.SUB, ra, rb, dst=rd, flag_out=carry_flag)
            else:
                self.arith(ArithOp.SBB, ra, rb, dst=rd,
                           flag_out=carry_flag, flag_in=carry_flag)
            out.append(rd)
        return out, carry_flag

    # -- lifecycle ------------------------------------------------------------------

    def drain(self, max_cycles: int = 1_000_000) -> int:
        """Wait for all in-flight work to finish; returns cycles consumed."""
        return self.driver.run_until_quiet(max_cycles)

    def close(self) -> None:
        self.driver.halt_and_wait()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()


class Pipeline:
    """A deferred-wait batch over one session (see :meth:`Session.pipeline`).

    Tracks every future issued through it so the context manager can wait
    them all at exit; futures remain usable outside the block (they are
    resolved by then).
    """

    def __init__(self, session: Session):
        self.session = session
        self.futures: list[HostFuture] = []

    def _track(self, future: HostFuture) -> HostFuture:
        self.futures.append(future)
        return future

    def compute(self, op: ArithOp | LogicOp, x: int, y: int = 0) -> HostFuture:
        """Non-blocking :meth:`Session.compute`; resolves to the result value."""
        return self._track(self.session.compute_async(op, x, y))

    def read(self, reg: int) -> HostFuture:
        """Non-blocking :meth:`Session.read`."""
        return self._track(self.session.read_async(reg))

    def read_flags(self, flag_reg: int) -> HostFuture:
        """Non-blocking flag-vector readback."""
        return self._track(self.session.driver.read_flags_async(flag_reg))

    def wait(self, max_cycles: int = 1_000_000) -> None:
        """Pump until every tracked future has completed."""
        for future in self.futures:
            future.wait(max_cycles)
        for future in self.futures:
            if future.exception() is not None:
                raise future.exception()

    def results(self, max_cycles: int = 1_000_000) -> list:
        """Results of every tracked future, in issue order."""
        return [f.result(max_cycles) for f in self.futures]

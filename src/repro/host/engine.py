"""Asynchronous host engine: futures, tag routing, in-flight windowing.

The paper's host "sends one or more packets of data to the controller on
the FPGA ... and [the controller] returns the final results" (§II) — the
RTM pipeline and lock manager are explicitly built so that *many*
instructions can be in flight while the result stream stays in order.
This module gives the host software the matching shape:

* :class:`HostFuture` — a handle for one outstanding request.  ``result()``
  pumps the simulation (the stand-in for host wall-clock time) until the
  coprocessor's response arrives.
* :class:`TagAllocator` — a round-robin allocator over the GET/GETF tag
  field.  A tag stays owned while its request is in flight, so responses
  are always attributable; released tags go to the back of the queue, so
  the whole tag space is cycled before any value repeats.
* :class:`HostEngine` — the submission queue, in-flight window and
  completion router.  Tracked submissions (GET/GETF/HALT) past the window
  queue *host-side* instead of overrunning the coprocessor's message
  buffer; queued messages are framed in one batch per pump, not one
  channel push per message.

The synchronous driver API (:class:`repro.host.driver.CoprocessorDriver`)
is re-expressed as ``submit(...).result()`` on top of this engine, and the
session layer adds ``compute_async``/``read_async`` and ``pipeline()``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from ..hdl.errors import SimulationError
from ..messages.framing import Deframer, Framer
from ..messages.types import (
    DataRecord,
    ExceptionReport,
    FlagVector,
    Halted,
    Message,
)

#: Default in-flight window: tracked requests the engine keeps outstanding
#: before queueing further submissions host-side.  Deep enough to cover the
#: round-trip latency of every link preset at typical request sizes, small
#: enough that a runaway submitter cannot flood the message buffer.
DEFAULT_WINDOW = 8

#: The GET/GETF tag travels in the instruction's 8-bit variety field, so a
#: single-host driver has 256 distinct tag values to juggle.
TAG_SPACE = range(256)


class CoprocessorError(RuntimeError):
    """The coprocessor reported an exception message."""

    def __init__(self, report: ExceptionReport):
        self.report = report
        super().__init__(f"coprocessor exception: code={report.code} info={report.info}")


class HostFuture:
    """One outstanding request's completion handle.

    Futures are resolved by the engine's completion router when the
    correlated response message arrives; ``result()``/``wait()`` advance
    the simulation until then.  An untracked submission (a write, a plain
    EXEC) resolves as soon as its words are framed onto the channel.
    """

    __slots__ = ("_engine", "_done", "_value", "_error", "_transform",
                 "_callbacks", "tag", "_owns_tag")

    def __init__(self, engine: "HostEngine",
                 transform: Optional[Callable[[Message], object]] = None):
        self._engine = engine
        self._done = False
        self._value: object = None
        self._error: Optional[BaseException] = None
        self._transform = transform
        self._callbacks: list[Callable[["HostFuture"], None]] = []
        #: the response tag this future is registered under (None when the
        #: request is untracked or carries no tag, e.g. HALT)
        self.tag: Optional[int] = None
        self._owns_tag = False

    # -- inspection ---------------------------------------------------------------

    def done(self) -> bool:
        return self._done

    def exception(self) -> Optional[BaseException]:
        """The failure, if the future completed with one (non-blocking)."""
        return self._error

    # -- blocking access ----------------------------------------------------------

    def wait(self, max_cycles: int = 1_000_000) -> "HostFuture":
        """Pump the simulation until this future completes; returns self."""
        self._engine.wait(self, max_cycles)
        return self

    def result(self, max_cycles: int = 1_000_000):
        """Wait for completion and return the response (or raise its error)."""
        self.wait(max_cycles)
        if self._error is not None:
            raise self._error
        return self._value

    # -- completion ---------------------------------------------------------------

    def add_done_callback(self, fn: Callable[["HostFuture"], None]) -> None:
        """Run ``fn(future)`` on completion (immediately if already done)."""
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _resolve(self, msg: Optional[Message]) -> None:
        self._value = self._transform(msg) if self._transform is not None else msg
        self._finish()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._finish()

    def _finish(self) -> None:
        self._done = True
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class TagAllocator:
    """Round-robin allocator over a fixed set of response-tag values.

    ``acquire`` hands out the least-recently-released free tag and
    ``release`` appends to the back of the free queue, so the allocator
    walks the whole tag space before reusing any value — maximising the
    distance between two in-flight uses of the same tag.  ``acquire``
    returns ``None`` on exhaustion; the engine treats that as backpressure
    (the submission stays queued host-side), never as an error.
    """

    def __init__(self, tags: Iterable[int] = TAG_SPACE):
        ordered = list(dict.fromkeys(tags))
        if not ordered:
            raise ValueError("tag space must not be empty")
        self.capacity = len(ordered)
        self._free: deque[int] = deque(ordered)
        self._in_use: set[int] = set()

    def acquire(self) -> Optional[int]:
        if not self._free:
            return None
        tag = self._free.popleft()
        self._in_use.add(tag)
        return tag

    def release(self, tag: int) -> None:
        if tag in self._in_use:
            self._in_use.remove(tag)
            self._free.append(tag)

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def in_use(self) -> frozenset:
        return frozenset(self._in_use)


@dataclass
class EngineStats:
    """Host-engine observability counters (``repro.analysis`` folds these in)."""

    submitted: int = 0            # total submissions accepted
    completed: int = 0            # tracked futures resolved with a response
    failed: int = 0               # tracked futures failed (exception report)
    messages_framed: int = 0      # messages serialised onto the channel
    words_sent: int = 0           # channel words pushed to the host port
    batches: int = 0              # send_words calls (framing batches)
    window_stalls: int = 0        # submissions that waited on the window
    tag_stalls: int = 0           # submissions that waited on tag exhaustion
    unmatched_to_inbox: int = 0   # responses with no pending future
    in_flight_highwater: int = 0  # max tracked requests outstanding at once
    queue_highwater: int = 0      # max host-side submission-queue depth

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "messages_framed": self.messages_framed,
            "words_sent": self.words_sent,
            "batches": self.batches,
            "window_stalls": self.window_stalls,
            "tag_stalls": self.tag_stalls,
            "unmatched_to_inbox": self.unmatched_to_inbox,
            "in_flight_highwater": self.in_flight_highwater,
            "queue_highwater": self.queue_highwater,
        }


@dataclass
class _Submission:
    """One queued request: messages to frame plus optional completion tracking."""

    #: builds the messages to frame; receives the allocated tag (None for
    #: untracked or tag-less requests)
    build: Callable[[Optional[int]], Sequence[Message]]
    future: HostFuture
    #: response type to route back (DataRecord/FlagVector/Halted); None for
    #: fire-and-forget submissions, which complete at framing time
    route_key: Optional[type] = None
    #: caller-chosen tag; None with needs_tag means allocate at flush time
    tag: Optional[int] = None
    needs_tag: bool = False
    stall_counted: bool = False


class HostEngine:
    """Submission queue → tag allocator → completion router for one host port.

    The engine serialises queued messages in batches (one channel push per
    flush, not per message), keeps at most ``window`` tracked requests in
    flight, and correlates every inbound ``DataRecord``/``FlagVector`` to
    its future by tag — out-of-order consumers on top of an in-order wire.
    Responses nobody registered for (flood GETs issued through the raw
    ``execute`` path, broadcast HALT acks on a shared bus) fall through to
    ``inbox``, preserving the classic ``wait_for`` flows.
    """

    def __init__(
        self,
        system,
        host_port,
        *,
        window: int = DEFAULT_WINDOW,
        tags: Optional[Iterable[int]] = None,
        raise_on_exception: bool = True,
    ):
        if window < 1:
            raise ValueError("in-flight window must be at least 1")
        self.system = system
        self.sim = system.sim
        self.soc = system.soc
        self.host = host_port
        self.window = window
        self.raise_on_exception = raise_on_exception
        cfg = system.config
        self.framer = Framer(cfg.data_words)
        self.deframer = Deframer(cfg.data_words)
        self.tags = TagAllocator(tags if tags is not None else TAG_SPACE)
        self.stats = EngineStats()
        #: responses that matched no pending future, oldest first
        self.inbox: list[Message] = []
        #: every exception report received, in arrival order
        self.exceptions: list[ExceptionReport] = []
        self._queue: deque[_Submission] = deque()
        #: (response type, tag) → futures awaiting it, oldest first
        self._pending: dict[tuple[type, Optional[int]], deque[HostFuture]] = {}
        self._in_flight = 0

    # -- submission ---------------------------------------------------------------

    def submit_send(self, msgs: Iterable[Message]) -> HostFuture:
        """Queue fire-and-forget messages; the future resolves once framed."""
        batch = tuple(msgs)
        future = HostFuture(self)
        self._enqueue(_Submission(build=lambda _tag: batch, future=future))
        return future

    def submit_tracked(
        self,
        build: Callable[[Optional[int]], Sequence[Message]],
        route_key: type,
        tag: Optional[int] = None,
        needs_tag: bool = True,
        transform: Optional[Callable[[Message], object]] = None,
    ) -> HostFuture:
        """Queue a response-expecting request.

        ``build(tag)`` produces the outbound messages once the request is
        actually released to the channel — tag allocation is deferred to
        that moment, so tag exhaustion stalls the queue instead of failing
        the submission.
        """
        future = HostFuture(self, transform=transform)
        self._enqueue(_Submission(
            build=build, future=future, route_key=route_key,
            tag=tag, needs_tag=needs_tag and tag is None,
        ))
        return future

    def _enqueue(self, sub: _Submission) -> None:
        self._queue.append(sub)
        self.stats.submitted += 1
        self.stats.queue_highwater = max(self.stats.queue_highwater, len(self._queue))
        self.flush()

    # -- framing / windowing ------------------------------------------------------

    def flush(self) -> int:
        """Release queued submissions up to the window; returns words sent.

        All releasable messages are framed into one word batch and pushed
        with a single ``send_words`` call — the channel still paces words
        at link rate, but the host pays one queue update per flush instead
        of one per message.
        """
        if not self._queue:
            return 0
        words: list[int] = []
        framed = 0
        while self._queue:
            sub = self._queue[0]
            tag = sub.tag
            if sub.route_key is not None:
                if self._in_flight >= self.window:
                    if not sub.stall_counted:
                        self.stats.window_stalls += 1
                        sub.stall_counted = True
                    break
                if sub.needs_tag:
                    tag = self.tags.acquire()
                    if tag is None:
                        if not sub.stall_counted:
                            self.stats.tag_stalls += 1
                            sub.stall_counted = True
                        break
            for msg in sub.build(tag):
                words.extend(self.framer.frame(msg))
                framed += 1
            self._queue.popleft()
            if sub.route_key is not None:
                self._register(sub.future, sub.route_key, tag, sub.needs_tag)
            else:
                sub.future._resolve(None)
        if words:
            self.host.send_words(words)
            self.stats.batches += 1
            self.stats.messages_framed += framed
            self.stats.words_sent += len(words)
        return len(words)

    def _register(self, future: HostFuture, route_key: type,
                  tag: Optional[int], owns_tag: bool) -> None:
        future.tag = tag
        future._owns_tag = owns_tag
        key = (route_key, tag if route_key is not Halted else None)
        self._pending.setdefault(key, deque()).append(future)
        self._in_flight += 1
        self.stats.in_flight_highwater = max(
            self.stats.in_flight_highwater, self._in_flight
        )

    # -- completion routing -------------------------------------------------------

    def _complete(self, key: tuple[type, Optional[int]], future: HostFuture) -> None:
        q = self._pending[key]
        q.popleft()
        if not q:
            del self._pending[key]
        self._in_flight -= 1
        if future._owns_tag and future.tag is not None:
            self.tags.release(future.tag)

    def route(self, msg: Message) -> None:
        """Deliver one inbound message to its future, or to the inbox."""
        if isinstance(msg, ExceptionReport):
            self._route_exception(msg)
            return
        if isinstance(msg, (DataRecord, FlagVector)):
            key: tuple[type, Optional[int]] = (type(msg), msg.tag)
        elif isinstance(msg, Halted):
            key = (Halted, None)
        else:
            key = (type(msg), None)
        q = self._pending.get(key)
        if q:
            future = q[0]
            self._complete(key, future)
            self.stats.completed += 1
            future._resolve(msg)
        else:
            self.inbox.append(msg)
            self.stats.unmatched_to_inbox += 1

    def _route_exception(self, report: ExceptionReport) -> None:
        """Exception reports carry no tag, so they cannot be attributed to
        one request: every future already released to the wire is failed
        (their responses may never come), while still-queued submissions
        stay queued — they have not reached the coprocessor yet, so the
        engine remains usable after the error."""
        self.exceptions.append(report)
        error = CoprocessorError(report)
        pending, self._pending = self._pending, {}
        self._in_flight = 0
        for q in pending.values():
            for future in q:
                if future._owns_tag and future.tag is not None:
                    self.tags.release(future.tag)
                self.stats.failed += 1
                future._fail(error)
        if self.raise_on_exception:
            raise error
        self.inbox.append(report)

    # -- simulation pumping -------------------------------------------------------

    def pump(self, cycles: int = 1) -> None:
        """Advance the simulation, draining responses and refilling the window."""
        for _ in range(cycles):
            self.flush()
            self.sim.step()
            self.drain_words()
        self.flush()  # completions may have opened the window

    def drain_words(self) -> None:
        """Deframe every word the host port has received and route it."""
        while True:
            word = self.host.recv_word()
            if word is None:
                return
            msg = self.deframer.push(word)
            if msg is not None:
                self.route(msg)

    def wait(self, future: HostFuture, max_cycles: int = 1_000_000) -> None:
        """Pump until ``future`` completes (raises SimulationError on timeout)."""
        if future.done():
            return
        self.flush()
        start = self.sim.now
        while not future.done():
            if self.sim.now - start >= max_cycles:
                raise SimulationError(
                    f"request did not complete within {max_cycles} cycles "
                    f"({self._in_flight} in flight, {len(self._queue)} queued)"
                )
            self.pump()

    def wait_all(self, futures: Iterable[HostFuture],
                 max_cycles: int = 1_000_000) -> list:
        """Wait for every future; returns their results in order."""
        return [f.result(max_cycles) for f in futures]

    # -- state --------------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Tracked requests released to the wire and not yet completed."""
        return self._in_flight

    @property
    def queued(self) -> int:
        """Submissions still waiting host-side (window or tag backpressure)."""
        return len(self._queue)

    @property
    def idle(self) -> bool:
        """True when nothing is queued host-side and nothing is in flight."""
        return not self._queue and self._in_flight == 0

"""Asynchronous host engine: futures, tag routing, in-flight windowing.

The paper's host "sends one or more packets of data to the controller on
the FPGA ... and [the controller] returns the final results" (§II) — the
RTM pipeline and lock manager are explicitly built so that *many*
instructions can be in flight while the result stream stays in order.
This module gives the host software the matching shape:

* :class:`HostFuture` — a handle for one outstanding request.  ``result()``
  pumps the simulation (the stand-in for host wall-clock time) until the
  coprocessor's response arrives.
* :class:`TagAllocator` — a round-robin allocator over the GET/GETF tag
  field.  A tag stays owned while its request is in flight, so responses
  are always attributable; released tags go to the back of the queue, so
  the whole tag space is cycled before any value repeats.
* :class:`HostEngine` — the submission queue, in-flight window and
  completion router.  Tracked submissions (GET/GETF/HALT) past the window
  queue *host-side* instead of overrunning the coprocessor's message
  buffer; queued messages are framed in one batch per pump, not one
  channel push per message.

The synchronous driver API (:class:`repro.host.driver.CoprocessorDriver`)
is re-expressed as ``submit(...).result()`` on top of this engine, and the
session layer adds ``compute_async``/``read_async`` and ``pipeline()``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from ..faults.checkpoint import Checkpoint, restore_state, snapshot_state
from ..hdl.errors import SimulationError
from ..messages.framing import Deframer, Framer
from ..messages.reliability import (
    SEQ_MASK,
    ReliableDeframer,
    ReliableFramer,
    parse_nack_info,
    seq_before,
)
from ..messages.types import (
    DataRecord,
    ExceptionReport,
    FlagVector,
    Halted,
    MachineCheck,
    Message,
)
from .errors import HostTimeoutError, LinkDownError, MachineCheckError

#: Default in-flight window: tracked requests the engine keeps outstanding
#: before queueing further submissions host-side.  Deep enough to cover the
#: round-trip latency of every link preset at typical request sizes, small
#: enough that a runaway submitter cannot flood the message buffer.
DEFAULT_WINDOW = 8

#: The GET/GETF tag travels in the instruction's 8-bit variety field, so a
#: single-host driver has 256 distinct tag values to juggle.
TAG_SPACE = range(256)

#: Retransmission budget before the reliable layer declares the link dead.
DEFAULT_MAX_RETRIES = 4

#: Consecutive request deadline expiries before the engine degrades the
#: in-flight window to stop-and-wait, and clean (no-retransmit) completions
#: required to restore the configured window.
DEGRADE_AFTER = 2
RESTORE_AFTER = 8

#: Replay-buffer cap, in frames.  Exceeding it drops the oldest frame from
#: the retransmission record (counted in ``stats.replay_truncated``) —
#: recovery of those frames is no longer possible, so workloads should
#: interleave tracked reads with long write bursts.
DEFAULT_REPLAY_LIMIT = 4096


def default_deadline_cycles(link, data_words: int = 1, window: int = DEFAULT_WINDOW) -> int:
    """Per-request retransmission deadline derived from the link timing.

    Covers two full round trips plus draining ``window`` maximum-size
    frames in both directions at the slower direction's word rate, plus a
    fixed processing allowance — generous enough that a healthy link never
    triggers a spurious retransmission, tight enough that a dead link is
    declared down in simulated milliseconds, not seconds.
    """
    spec = getattr(link, "spec", None)
    if spec is None:
        return 50_000
    up = getattr(link, "upstream_spec", spec)
    rtt = 2 * (spec.latency_cycles + up.latency_cycles)
    words_per_frame = 2 + data_words  # header + payload + trailer
    cpw = max(spec.cycles_per_word, up.cycles_per_word)
    return rtt + 4 * window * words_per_frame * cpw + 1024


class CoprocessorError(RuntimeError):
    """The coprocessor reported an exception message."""

    def __init__(self, report: ExceptionReport):
        self.report = report
        super().__init__(f"coprocessor exception: code={report.code} info={report.info}")


class HostFuture:
    """One outstanding request's completion handle.

    Futures are resolved by the engine's completion router when the
    correlated response message arrives; ``result()``/``wait()`` advance
    the simulation until then.  An untracked submission (a write, a plain
    EXEC) resolves as soon as its words are framed onto the channel.
    """

    __slots__ = ("_engine", "_done", "_value", "_error", "_transform",
                 "_callbacks", "tag", "_owns_tag")

    def __init__(self, engine: "HostEngine",
                 transform: Optional[Callable[[Message], object]] = None):
        self._engine = engine
        self._done = False
        self._value: object = None
        self._error: Optional[BaseException] = None
        self._transform = transform
        self._callbacks: list[Callable[["HostFuture"], None]] = []
        #: the response tag this future is registered under (None when the
        #: request is untracked or carries no tag, e.g. HALT)
        self.tag: Optional[int] = None
        self._owns_tag = False

    # -- inspection ---------------------------------------------------------------

    def done(self) -> bool:
        return self._done

    def exception(self) -> Optional[BaseException]:
        """The failure, if the future completed with one (non-blocking)."""
        return self._error

    # -- blocking access ----------------------------------------------------------

    def wait(self, max_cycles: int = 1_000_000,
             deadline_cycles: Optional[int] = None) -> "HostFuture":
        """Pump the simulation until this future completes; returns self."""
        self._engine.wait(self, max_cycles, deadline_cycles)
        return self

    def result(self, max_cycles: int = 1_000_000,
               deadline_cycles: Optional[int] = None):
        """Wait for completion and return the response (or raise its error)."""
        self.wait(max_cycles, deadline_cycles)
        if self._error is not None:
            raise self._error
        return self._value

    # -- completion ---------------------------------------------------------------

    def add_done_callback(self, fn: Callable[["HostFuture"], None]) -> None:
        """Run ``fn(future)`` on completion (immediately if already done)."""
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _resolve(self, msg: Optional[Message]) -> None:
        self._value = self._transform(msg) if self._transform is not None else msg
        self._finish()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._finish()

    def _finish(self) -> None:
        self._done = True
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class TagAllocator:
    """Round-robin allocator over a fixed set of response-tag values.

    ``acquire`` hands out the least-recently-released free tag and
    ``release`` appends to the back of the free queue, so the allocator
    walks the whole tag space before reusing any value — maximising the
    distance between two in-flight uses of the same tag.  ``acquire``
    returns ``None`` on exhaustion; the engine treats that as backpressure
    (the submission stays queued host-side), never as an error.
    """

    def __init__(self, tags: Iterable[int] = TAG_SPACE):
        ordered = list(dict.fromkeys(tags))
        if not ordered:
            raise ValueError("tag space must not be empty")
        self.capacity = len(ordered)
        self._free: deque[int] = deque(ordered)
        self._in_use: set[int] = set()

    def acquire(self) -> Optional[int]:
        if not self._free:
            return None
        tag = self._free.popleft()
        self._in_use.add(tag)
        return tag

    def release(self, tag: int) -> None:
        if tag in self._in_use:
            self._in_use.remove(tag)
            self._free.append(tag)

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def in_use(self) -> frozenset:
        return frozenset(self._in_use)


@dataclass
class EngineStats:
    """Host-engine observability counters (``repro.analysis`` folds these in)."""

    submitted: int = 0            # total submissions accepted
    completed: int = 0            # tracked futures resolved with a response
    failed: int = 0               # tracked futures failed (exception report)
    messages_framed: int = 0      # messages serialised onto the channel
    words_sent: int = 0           # channel words pushed to the host port
    batches: int = 0              # send_words calls (framing batches)
    window_stalls: int = 0        # submissions that waited on the window
    tag_stalls: int = 0           # submissions that waited on tag exhaustion
    unmatched_to_inbox: int = 0   # responses with no pending future
    in_flight_highwater: int = 0  # max tracked requests outstanding at once
    queue_highwater: int = 0      # max host-side submission-queue depth
    # -- reliable-mode recovery counters (all zero when reliability is off) --
    retransmits: int = 0          # replay-buffer retransmissions issued
    retransmitted_words: int = 0  # channel words re-sent across them
    nacks: int = 0                # NACK reports received from the coprocessor
    deadline_expiries: int = 0    # per-request deadlines that lapsed
    link_down_failures: int = 0   # futures failed by a LinkDownError
    stale_responses: int = 0      # expected duplicate responses discarded
    response_gaps: int = 0        # upstream frames lost (sequence gaps)
    rx_resyncs: int = 0           # host-side deframer resynchronisations
    degrade_entries: int = 0      # times the window degraded to stop-and-wait
    replay_truncated: int = 0     # frames evicted from a full replay buffer
    # -- state-fault recovery counters (zero without state protection) --
    machine_checks: int = 0       # MachineCheck reports received
    rollbacks: int = 0            # checkpoint restores performed
    replayed: int = 0             # journaled submissions re-sent after rollback
    checkpoints: int = 0          # quiescent-point snapshots taken

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "messages_framed": self.messages_framed,
            "words_sent": self.words_sent,
            "batches": self.batches,
            "window_stalls": self.window_stalls,
            "tag_stalls": self.tag_stalls,
            "unmatched_to_inbox": self.unmatched_to_inbox,
            "in_flight_highwater": self.in_flight_highwater,
            "queue_highwater": self.queue_highwater,
            "retransmits": self.retransmits,
            "retransmitted_words": self.retransmitted_words,
            "nacks": self.nacks,
            "deadline_expiries": self.deadline_expiries,
            "link_down_failures": self.link_down_failures,
            "stale_responses": self.stale_responses,
            "response_gaps": self.response_gaps,
            "rx_resyncs": self.rx_resyncs,
            "degrade_entries": self.degrade_entries,
            "replay_truncated": self.replay_truncated,
            "machine_checks": self.machine_checks,
            "rollbacks": self.rollbacks,
            "replayed": self.replayed,
            "checkpoints": self.checkpoints,
        }


@dataclass
class _Record:
    """Reliable-mode delivery tracking for one in-flight tracked request."""

    key: tuple
    #: sequence number of the request's last frame; its response implicitly
    #: acknowledges every frame up to and including this one (in-order wire)
    last_seq: int
    deadline_at: int
    #: deadline-driven retransmission rounds — the retry *budget*.  Only
    #: silent expiries count; NACK-driven retransmissions prove the link is
    #: alive and do not burn budget.
    attempts: int = 0
    #: times this record's frames were re-sent for any reason (bounds the
    #: stale duplicate responses to expect after completion)
    resends: int = 0


@dataclass
class _Submission:
    """One queued request: messages to frame plus optional completion tracking."""

    #: builds the messages to frame; receives the allocated tag (None for
    #: untracked or tag-less requests)
    build: Callable[[Optional[int]], Sequence[Message]]
    future: HostFuture
    #: response type to route back (DataRecord/FlagVector/Halted); None for
    #: fire-and-forget submissions, which complete at framing time
    route_key: Optional[type] = None
    #: caller-chosen tag; None with needs_tag means allocate at flush time
    tag: Optional[int] = None
    needs_tag: bool = False
    stall_counted: bool = False


class HostEngine:
    """Submission queue → tag allocator → completion router for one host port.

    The engine serialises queued messages in batches (one channel push per
    flush, not per message), keeps at most ``window`` tracked requests in
    flight, and correlates every inbound ``DataRecord``/``FlagVector`` to
    its future by tag — out-of-order consumers on top of an in-order wire.
    Responses nobody registered for (flood GETs issued through the raw
    ``execute`` path, broadcast HALT acks on a shared bus) fall through to
    ``inbox``, preserving the classic ``wait_for`` flows.
    """

    def __init__(
        self,
        system,
        host_port,
        *,
        window: int = DEFAULT_WINDOW,
        tags: Optional[Iterable[int]] = None,
        raise_on_exception: bool = True,
        deadline_cycles: Optional[int] = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        replay_limit: int = DEFAULT_REPLAY_LIMIT,
    ):
        if window < 1:
            raise ValueError("in-flight window must be at least 1")
        self.system = system
        self.sim = system.sim
        self.soc = system.soc
        self.host = host_port
        self.window = window
        self.raise_on_exception = raise_on_exception
        cfg = system.config
        self.reliable = cfg.reliable_framing
        if self.reliable:
            self.framer: Framer = ReliableFramer(cfg.data_words)
            self.deframer = ReliableDeframer(cfg.data_words, strict_order=False)
        else:
            self.framer = Framer(cfg.data_words)
            self.deframer = Deframer(cfg.data_words)
        self.tags = TagAllocator(tags if tags is not None else TAG_SPACE)
        self.stats = EngineStats()
        #: responses that matched no pending future, oldest first
        self.inbox: list[Message] = []
        #: every exception report received, in arrival order
        self.exceptions: list[ExceptionReport] = []
        self._queue: deque[_Submission] = deque()
        #: (response type, tag) → futures awaiting it, oldest first
        self._pending: dict[tuple[type, Optional[int]], deque[HostFuture]] = {}
        self._in_flight = 0
        # -- reliable-mode recovery state --
        link = getattr(self.soc, "link", None)
        if deadline_cycles is None:
            deadline_cycles = default_deadline_cycles(link, cfg.data_words, window)
        #: base per-request deadline before the first retransmission
        self.deadline_cycles = deadline_cycles
        self.max_retries = max_retries
        self.replay_limit = replay_limit
        #: True once the retransmission budget has been exhausted
        self.link_down = False
        #: True while the engine runs stop-and-wait (window of 1)
        self.degraded = False
        spec = getattr(link, "spec", None)
        up = getattr(link, "upstream_spec", spec)
        self._cpw = max(
            getattr(spec, "cycles_per_word", 1), getattr(up, "cycles_per_word", 1)
        )
        self._resync_flush_cycles = cfg.resync_flush_cycles
        #: unacknowledged frames, oldest first, as (seq, words) pairs
        self._replay: deque[tuple[int, tuple[int, ...]]] = deque()
        self._records: dict[HostFuture, _Record] = {}
        #: (type, tag) → count of stale duplicate responses still expected
        self._dup_guard: dict[tuple, int] = {}
        self._words_received = 0
        self._last_rx_at = 0
        self._last_nack: Optional[tuple] = None
        self._last_nack_at = -1
        self._consec_timeouts = 0
        self._clean_completions = 0
        #: default no-progress deadline for wait()/run_until_quiet (cycles)
        hysteresis = getattr(spec, "latency_cycles", 1) + self._cpw
        self.default_progress_deadline = max(50_000, 64 * hysteresis)
        # -- state-fault recovery (active only on protected systems) --
        self._protected = getattr(self.soc, "state_domain", None) is not None
        #: set once a machine check proved unrecoverable; poisons submissions
        self.fatal_error: Optional[BaseException] = None
        #: last quiescent-point snapshot (None until the first one is taken)
        self._ckpt: Optional[Checkpoint] = None
        #: submissions released to the wire since the last checkpoint, in
        #: order: (messages, route_key, tag, future) — the rollback replay
        self._journal: list[tuple] = []
        #: a rollback happened since the last checkpoint: a second machine
        #: check before re-quiescing is treated as unrecoverable
        self._recovered_since_ckpt = False
        #: bumped by every rollback so in-progress rx-event loops abandon
        #: events deframed before the coprocessor was reset
        self._rx_epoch = 0
        if self._protected:
            self._maybe_checkpoint()

    # -- submission ---------------------------------------------------------------

    def submit_send(self, msgs: Iterable[Message]) -> HostFuture:
        """Queue fire-and-forget messages; the future resolves once framed."""
        batch = tuple(msgs)
        future = HostFuture(self)
        self._enqueue(_Submission(build=lambda _tag: batch, future=future))
        return future

    def submit_tracked(
        self,
        build: Callable[[Optional[int]], Sequence[Message]],
        route_key: type,
        tag: Optional[int] = None,
        needs_tag: bool = True,
        transform: Optional[Callable[[Message], object]] = None,
    ) -> HostFuture:
        """Queue a response-expecting request.

        ``build(tag)`` produces the outbound messages once the request is
        actually released to the channel — tag allocation is deferred to
        that moment, so tag exhaustion stalls the queue instead of failing
        the submission.
        """
        future = HostFuture(self, transform=transform)
        self._enqueue(_Submission(
            build=build, future=future, route_key=route_key,
            tag=tag, needs_tag=needs_tag and tag is None,
        ))
        return future

    def _enqueue(self, sub: _Submission) -> None:
        self.stats.submitted += 1
        if self.fatal_error is not None:
            # an unrecoverable machine check poisoned the coprocessor state
            sub.future._fail(self.fatal_error)
            return
        if self.link_down:
            # the link was declared dead; nothing new can be delivered
            self.stats.link_down_failures += 1
            sub.future._fail(LinkDownError(
                "link is down (retransmission budget exhausted); "
                "submission rejected"
            ))
            return
        self._queue.append(sub)
        self.stats.queue_highwater = max(self.stats.queue_highwater, len(self._queue))
        self.flush()

    # -- framing / windowing ------------------------------------------------------

    def flush(self) -> int:
        """Release queued submissions up to the window; returns words sent.

        All releasable messages are framed into one word batch and pushed
        with a single ``send_words`` call — the channel still paces words
        at link rate, but the host pays one queue update per flush instead
        of one per message.
        """
        if not self._queue:
            return 0
        words: list[int] = []
        framed = 0
        while self._queue:
            sub = self._queue[0]
            tag = sub.tag
            if sub.route_key is not None:
                if self._in_flight >= self.effective_window:
                    if not sub.stall_counted:
                        self.stats.window_stalls += 1
                        sub.stall_counted = True
                    break
                if sub.needs_tag:
                    tag = self.tags.acquire()
                    if tag is None:
                        if not sub.stall_counted:
                            self.stats.tag_stalls += 1
                            sub.stall_counted = True
                        break
            built = tuple(sub.build(tag))
            for msg in built:
                frame = self.framer.frame(msg)
                if self.reliable:
                    self._log_frame(self.framer.last_seq, frame)
                words.extend(frame)
                framed += 1
            self._queue.popleft()
            if self._protected:
                # rollback-replay journal: every released submission since
                # the last quiescent checkpoint, tracked or not
                self._journal.append((built, sub.route_key, tag, sub.future))
            if sub.route_key is not None:
                key = self._register(sub.future, sub.route_key, tag, sub.needs_tag)
                if self.reliable:
                    self._records[sub.future] = _Record(
                        key=key,
                        last_seq=self.framer.last_seq,
                        deadline_at=self.sim.now + self.deadline_cycles,
                    )
            else:
                sub.future._resolve(None)
        if words:
            self.host.send_words(words)
            self.stats.batches += 1
            self.stats.messages_framed += framed
            self.stats.words_sent += len(words)
        return len(words)

    def _register(self, future: HostFuture, route_key: type,
                  tag: Optional[int], owns_tag: bool) -> tuple:
        future.tag = tag
        future._owns_tag = owns_tag
        key = (route_key, tag if route_key is not Halted else None)
        # A fresh request reclaims its routing key from any stale-duplicate
        # guard so new responses route to it, not to the discard count.
        self._dup_guard.pop(key, None)
        self._pending.setdefault(key, deque()).append(future)
        self._in_flight += 1
        self.stats.in_flight_highwater = max(
            self.stats.in_flight_highwater, self._in_flight
        )
        return key

    # -- completion routing -------------------------------------------------------

    def _complete(self, key: tuple[type, Optional[int]], future: HostFuture) -> None:
        q = self._pending[key]
        q.popleft()
        if not q:
            del self._pending[key]
        self._in_flight -= 1
        if future._owns_tag and future.tag is not None:
            self.tags.release(future.tag)
        record = self._records.pop(future, None)
        if record is not None:
            # The response implicitly acknowledges every frame up to the
            # request's last one (the wire delivers in order).
            self._prune_replay_before((record.last_seq + 1) & SEQ_MASK)
            if record.resends:
                # retransmitted requests may produce extra (re-executed)
                # responses; arm the guard so they are discarded silently
                guard = self._dup_guard.get(key, 0)
                self._dup_guard[key] = guard + record.resends
            else:
                self._note_clean_completion()
            self._consec_timeouts = 0  # any completion proves liveness

    def route(self, msg: Message) -> None:
        """Deliver one inbound message to its future, or to the inbox."""
        if isinstance(msg, MachineCheck):
            self._route_machine_check(msg)
            return
        if isinstance(msg, ExceptionReport):
            self._route_exception(msg)
            return
        if isinstance(msg, (DataRecord, FlagVector)):
            key: tuple[type, Optional[int]] = (type(msg), msg.tag)
        elif isinstance(msg, Halted):
            key = (Halted, None)
        else:
            key = (type(msg), None)
        guard = self._dup_guard.get(key, 0)
        if guard:
            # a re-executed duplicate response for an already-resolved
            # request — consume it instead of polluting the inbox
            if guard > 1:
                self._dup_guard[key] = guard - 1
            else:
                del self._dup_guard[key]
            self.stats.stale_responses += 1
            return
        q = self._pending.get(key)
        if q:
            future = q[0]
            self._complete(key, future)
            self.stats.completed += 1
            future._resolve(msg)
        else:
            self.inbox.append(msg)
            self.stats.unmatched_to_inbox += 1

    def _route_exception(self, report: ExceptionReport) -> None:
        """Exception reports carry no tag, so they cannot be attributed to
        one request: every future already released to the wire is failed
        (their responses may never come), while still-queued submissions
        stay queued — they have not reached the coprocessor yet, so the
        engine remains usable after the error.

        In reliable mode, BAD_MESSAGE reports with NACK-shaped info are the
        coprocessor's retransmission requests — protocol traffic, not
        application errors — and never fail futures or raise."""
        if self.reliable:
            nack = parse_nack_info(report.info)
            if nack is not None:
                self._handle_nack(*nack)
                return
        self.exceptions.append(report)
        error = CoprocessorError(report)
        pending, self._pending = self._pending, {}
        self._in_flight = 0
        self._records.clear()
        for q in pending.values():
            for future in q:
                if future._owns_tag and future.tag is not None:
                    self.tags.release(future.tag)
                self.stats.failed += 1
                future._fail(error)
        if self.raise_on_exception:
            raise error
        self.inbox.append(report)

    # -- state-fault recovery (checkpoint / rollback / replay) --------------------

    def _route_machine_check(self, msg: MachineCheck) -> None:
        """An uncorrectable state upset: roll back and replay, or fail fast.

        Recoverable when a clean checkpoint exists and no earlier rollback
        is still replaying toward its next quiescent point; otherwise the
        state cannot be trusted and every outstanding request fails with
        :class:`MachineCheckError` — never a silently wrong result.
        """
        self.stats.machine_checks += 1
        if self._ckpt is None or self._recovered_since_ckpt:
            self._fail_unrecoverable(msg)
            return
        self._rollback(msg)

    def _fail_unrecoverable(self, msg: MachineCheck) -> None:
        element = getattr(self.soc, "mcu", None)
        name = element.element_id(msg.element) if element is not None else str(msg.element)
        error = MachineCheckError(
            f"unrecoverable machine check from {name} "
            f"(address={msg.address:#x}, syndrome={msg.syndrome:#06x}): "
            + ("a second upset hit before the rollback re-quiesced"
               if self._ckpt is not None else "no clean checkpoint to roll back to"),
            element=msg.element, address=msg.address, syndrome=msg.syndrome,
        )
        self.fatal_error = error
        pending, self._pending = self._pending, {}
        queue, self._queue = self._queue, deque()
        self._in_flight = 0
        self._records.clear()
        self._replay.clear()
        self._journal.clear()
        for q in pending.values():
            for future in q:
                if future._owns_tag and future.tag is not None:
                    self.tags.release(future.tag)
                self.stats.failed += 1
                future._fail(error)
        for sub in queue:
            sub.future._fail(error)
        if self.raise_on_exception:
            raise error
        self.inbox.append(msg)

    def _rollback(self, msg: MachineCheck) -> None:
        """Restore the last checkpoint and replay the journal after it.

        The coprocessor is hard-reset (pipelines, channel and guard shadows
        clear; injection counters inside the guards persist, so the replay
        draws fresh fates instead of re-tripping the same upset), the
        architectural state reloads from the snapshot, both framing domains
        restart, and every journaled submission is re-sent in order.
        Already-completed tracked requests arm the duplicate guard so their
        re-executed responses are swallowed.
        """
        self.stats.rollbacks += 1
        self._recovered_since_ckpt = True
        self._rx_epoch += 1
        self.sim.reset()
        restore_state(self.soc, self._ckpt)
        cfg = self.system.config
        if self.reliable:
            self.framer = ReliableFramer(cfg.data_words)
            self.deframer = ReliableDeframer(cfg.data_words, strict_order=False)
        else:
            self.framer = Framer(cfg.data_words)
            self.deframer = Deframer(cfg.data_words)
        self._replay.clear()
        self._dup_guard.clear()
        self._records.clear()
        self._last_nack = None
        self._last_nack_at = -1
        self._last_rx_at = self.sim.now
        words: list[int] = []
        framed = 0
        now = self.sim.now
        for built, route_key, tag, future in self._journal:
            for m in built:
                frame = self.framer.frame(m)
                if self.reliable:
                    self._log_frame(self.framer.last_seq, frame)
                words.extend(frame)
                framed += 1
            if route_key is not None:
                key = (route_key, tag if route_key is not Halted else None)
                if future.done():
                    self._dup_guard[key] = self._dup_guard.get(key, 0) + 1
                elif self.reliable:
                    self._records[future] = _Record(
                        key=key,
                        last_seq=self.framer.last_seq,
                        deadline_at=now + self.deadline_cycles,
                    )
            self.stats.replayed += 1
        if words:
            self.host.send_words(words)
            self.stats.batches += 1
            self.stats.messages_framed += framed
            self.stats.words_sent += len(words)

    def _maybe_checkpoint(self) -> None:
        """Snapshot at a quiescent point: engine idle, coprocessor drained,
        no latent taint, no pending check — locks free and pipelines empty,
        so the architectural state alone captures the machine."""
        if not self._protected or self.fatal_error is not None:
            return
        if not self.idle or self._ckpt is not None and not self._journal:
            return
        domain = self.soc.state_domain
        mcu = self.soc.mcu
        if mcu.pending or domain.tainted or self.soc.busy:
            return
        self._ckpt = snapshot_state(self.soc, cycle=self.sim.now)
        self._journal.clear()
        self._recovered_since_ckpt = False
        self.stats.checkpoints += 1

    # -- reliable-mode recovery ---------------------------------------------------

    def _log_frame(self, seq: int, frame: Sequence[int]) -> None:
        self._replay.append((seq, tuple(frame)))
        while len(self._replay) > self.replay_limit:
            self._replay.popleft()
            self.stats.replay_truncated += 1

    def _prune_replay_before(self, expected: int) -> None:
        """Drop replay frames with sequence numbers before ``expected``
        (they are acknowledged — implicitly or by a NACK's cursor)."""
        replay = self._replay
        while replay and seq_before(replay[0][0], expected):
            replay.popleft()

    def _handle_nack(self, expected: Optional[int], no_baseline: bool) -> None:
        self.stats.nacks += 1
        if self.link_down:
            return
        if expected is not None and not no_baseline:
            # everything before the receiver's cursor was delivered
            self._prune_replay_before(expected)
        # Rate limit: in-flight words at NACK time can trigger several
        # identical NACKs before the first retransmission lands; one
        # retransmission per (cursor, round-trip window) is enough.
        now = self.sim.now
        marker = (expected, no_baseline)
        if (
            marker == self._last_nack
            and now - self._last_nack_at < self._retransmit_drain_cycles()
        ):
            return
        self._last_nack = marker
        self._last_nack_at = now
        self._retransmit()

    def _retransmit_drain_cycles(self) -> int:
        return max(1, sum(len(f) for _s, f in self._replay) * self._cpw)

    def _retransmit(self) -> None:
        words: list[int] = []
        for _seq, frame in self._replay:
            words.extend(frame)
        drain = max(1, len(words)) * self._cpw
        now = self.sim.now
        for record in self._records.values():
            record.resends += 1
            # exponential backoff in the deadline-round count, plus time to
            # drain the replayed words through the slower direction
            backoff = self.deadline_cycles * (1 << record.attempts)
            record.deadline_at = now + drain + backoff
        if not words:
            return
        self.host.send_words(words)
        self.stats.retransmits += 1
        self.stats.retransmitted_words += len(words)
        self.stats.words_sent += len(words)

    def _check_deadlines(self) -> None:
        if not self.reliable or self.link_down or not self._records:
            return
        now = self.sim.now
        due = [r for r in self._records.values() if now >= r.deadline_at]
        if not due:
            return
        if any(r.attempts >= self.max_retries for r in due):
            self._declare_link_down()
            return
        for record in due:
            record.attempts += 1
        self.stats.deadline_expiries += len(due)
        self._note_timeout()
        self._retransmit()

    def _declare_link_down(self) -> None:
        self.link_down = True
        outstanding = self._in_flight + len(self._queue)
        error = LinkDownError(
            f"link declared down: no response after {self.max_retries} "
            f"retransmissions ({outstanding} requests outstanding, "
            f"{self.stats.retransmits} retransmits, "
            f"{self.stats.nacks} NACKs seen)"
        )
        pending, self._pending = self._pending, {}
        queue, self._queue = self._queue, deque()
        self._in_flight = 0
        self._records.clear()
        self._replay.clear()
        for q in pending.values():
            for future in q:
                if future._owns_tag and future.tag is not None:
                    self.tags.release(future.tag)
                self.stats.failed += 1
                self.stats.link_down_failures += 1
                future._fail(error)
        for sub in queue:
            self.stats.link_down_failures += 1
            sub.future._fail(error)

    def _note_timeout(self) -> None:
        self._consec_timeouts += 1
        self._clean_completions = 0
        if not self.degraded and self._consec_timeouts >= DEGRADE_AFTER:
            # the link is lossy enough that pipelining multiplies the
            # damage; fall back to stop-and-wait until it proves healthy
            self.degraded = True
            self.stats.degrade_entries += 1

    def _note_clean_completion(self) -> None:
        self._consec_timeouts = 0
        if self.degraded:
            self._clean_completions += 1
            if self._clean_completions >= RESTORE_AFTER:
                self.degraded = False
                self._clean_completions = 0

    # -- simulation pumping -------------------------------------------------------

    def _timer_slack(self) -> int:
        """Cycles until the earliest *host-side* timer can possibly fire.

        The cycle-skipping fast path must not jump past a retransmission
        deadline or the host deframer's resync flush: both compare against
        ``sim.now`` and must trigger on exactly the cycle they would have
        in a cycle-by-cycle pump.
        """
        slack: Optional[int] = None
        now = self.sim.now
        if self.reliable:
            for record in self._records.values():
                d = record.deadline_at - now
                if slack is None or d < slack:
                    slack = d
            if self.deframer.mid_frame:
                d = self._resync_flush_cycles - (now - self._last_rx_at)
                if slack is None or d < slack:
                    slack = d
        if slack is None:
            return 1 << 60
        return max(1, slack)

    def _pump_chunk(self, bound: int) -> int:
        """One pump iteration covering up to ``bound`` cycles; returns cycles run.

        When the simulator certifies (via :meth:`Simulator.fast_forward_limit`)
        that the next ``limit`` edges are pure aging, the whole stretch is
        stepped in one call and the wheel compresses it — the host-side
        drain/deadline work happens once at the end, which is equivalent
        because nothing observable can move mid-stretch.  With the wheel off
        (or anything active) this degenerates to the classic one-cycle pump.
        """
        self.flush()
        n = 1
        if bound > 1:
            limit = self.sim.fast_forward_limit(bound)
            if limit > 1:
                n = max(1, min(bound, limit, self._timer_slack()))
        self.sim.step(n)
        self.drain_words()
        self._check_deadlines()
        if self._protected:
            self._maybe_checkpoint()
        return n

    def pump(self, cycles: int = 1) -> None:
        """Advance the simulation, draining responses and refilling the window."""
        remaining = cycles
        while remaining > 0:
            remaining -= self._pump_chunk(remaining)
        self.flush()  # completions may have opened the window

    def drain_words(self) -> None:
        """Deframe every word the host port has received and route it."""
        if not self.reliable:
            while True:
                word = self.host.recv_word()
                if word is None:
                    return
                msg = self.deframer.push(word)
                if msg is not None:
                    self.route(msg)
        received = False
        while True:
            word = self.host.recv_word()
            if word is None:
                break
            received = True
            self._words_received += 1
            self.deframer.push(word)
        if received:
            self._last_rx_at = self.sim.now
        elif (
            self.deframer.mid_frame
            and self.sim.now - self._last_rx_at >= self._resync_flush_cycles
        ):
            # residual garbage from a damaged trailing frame: the burst is
            # over, so nothing buffered can ever complete — flush it all
            # (the rescan still salvages intact frames behind the garbage)
            self.deframer.drop_all()
            self._last_rx_at = self.sim.now
        self._process_rx_events()

    def _process_rx_events(self) -> None:
        epoch = self._rx_epoch
        for event in self.deframer.take_events():
            if self._rx_epoch != epoch:
                # a rollback replaced the deframer mid-loop; the remaining
                # events were deframed against pre-reset state
                return
            kind = event[0]
            if kind in ("deliver", "duplicate"):
                self.route(event[1])
            elif kind == "gap":
                # lost responses are recovered by request retransmission
                # (the matching record's deadline), not by NACKing back
                self.stats.response_gaps += 1
            else:  # "resync"
                self.stats.rx_resyncs += 1

    def progress_signature(self) -> tuple:
        """A cheap tuple that changes whenever the system observably moves.

        Used by the no-progress deadlines in :meth:`wait` and the driver's
        ``run_until_quiet``/``wait_for``: words moving in either direction,
        completions, failures, retransmissions or retired instructions all
        count as progress; a dead or wedged system holds the tuple still.
        """
        stats = self.stats
        execution = getattr(getattr(self.soc, "rtm", None), "execution", None)
        return (
            stats.words_sent,
            self._words_received,
            self.host.tx_pending,
            stats.completed,
            stats.failed,
            stats.retransmits,
            getattr(execution, "retired", 0),
        )

    def timeout_error(self, message: str) -> HostTimeoutError:
        """Timeout error of the right flavour for the engine's link state."""
        if self.link_down:
            return LinkDownError(f"{message} (link is down)")
        return HostTimeoutError(message)

    def resolve_deadline(self, deadline_cycles: Optional[int]) -> Optional[int]:
        """Normalise a ``deadline_cycles`` argument (None → default, ≤0 → off)."""
        if deadline_cycles is None:
            return self.default_progress_deadline
        if deadline_cycles <= 0:
            return None
        return deadline_cycles

    def wait(self, future: HostFuture, max_cycles: int = 1_000_000,
             deadline_cycles: Optional[int] = None) -> None:
        """Pump until ``future`` completes.

        Raises :class:`SimulationError` after ``max_cycles`` total, and the
        more descriptive :class:`HostTimeoutError` (or
        :class:`LinkDownError`) once ``deadline_cycles`` pass with no
        observable progress anywhere in the system — so a dead link fails
        fast instead of idling out the full budget.  ``deadline_cycles``:
        None → a link-derived default, ≤0 → disabled.
        """
        if future.done():
            return
        self.flush()
        start = self.sim.now
        deadline = self.resolve_deadline(deadline_cycles)
        signature = self.progress_signature()
        last_progress = start
        while not future.done():
            now = self.sim.now
            if now - start >= max_cycles:
                raise SimulationError(
                    f"request did not complete within {max_cycles} cycles "
                    f"({self._in_flight} in flight, {len(self._queue)} queued)"
                )
            if deadline is not None and now - last_progress >= deadline:
                raise self.timeout_error(
                    f"request made no progress for {deadline} cycles "
                    f"({self._in_flight} in flight, {len(self._queue)} queued, "
                    f"{self.stats.retransmits} retransmits)"
                )
            # Chunked pump: never jump past the budget or no-progress trigger
            # points, so both raise at exactly the cycle the one-cycle loop
            # would have raised at.
            bound = start + max_cycles - now
            if deadline is not None:
                bound = min(bound, last_progress + deadline - now)
            self._pump_chunk(max(1, bound))
            self.flush()
            current = self.progress_signature()
            if current != signature:
                signature = current
                last_progress = self.sim.now

    def wait_all(self, futures: Iterable[HostFuture],
                 max_cycles: int = 1_000_000) -> list:
        """Wait for every future; returns their results in order."""
        return [f.result(max_cycles) for f in futures]

    # -- state --------------------------------------------------------------------

    @property
    def effective_window(self) -> int:
        """The in-flight window currently honoured: the configured window,
        or 1 (stop-and-wait) while the engine is degraded by a lossy link."""
        return 1 if self.degraded else self.window

    @property
    def in_flight(self) -> int:
        """Tracked requests released to the wire and not yet completed."""
        return self._in_flight

    @property
    def queued(self) -> int:
        """Submissions still waiting host-side (window or tag backpressure)."""
        return len(self._queue)

    @property
    def idle(self) -> bool:
        """True when nothing is queued host-side and nothing is in flight."""
        return not self._queue and self._in_flight == 0

"""Per-CPU driver for a shared coprocessor (paper Fig. 1.1).

Each CPU gets its own :class:`HostCpuDriver`, which is a normal
:class:`CoprocessorDriver` speaking through that CPU's port of the shared
bus, with the bus's tag namespace applied automatically so responses are
routed back to the issuing CPU.

Register-file partitioning between CPUs is a software convention, exactly
as it would be on a real shared coprocessor; use disjoint register ranges
(the tests partition by halves).
"""

from __future__ import annotations

from ..messages.multihost import TAG_SEQ_MASK, host_tag
from ..system.multihost import BuiltMultiHostSystem
from .driver import CoprocessorDriver


class HostCpuDriver(CoprocessorDriver):
    """Driver bound to one CPU of a multi-host system."""

    def __init__(
        self,
        system: BuiltMultiHostSystem,
        host_id: int,
        raise_on_exception: bool = True,
    ):
        if not 0 <= host_id < system.soc.bus.n_hosts:
            raise ValueError(f"host id {host_id} out of range")
        super().__init__(
            system,
            raise_on_exception=raise_on_exception,
            host_port=system.soc.bus.hosts[host_id],
        )
        self.host_id = host_id
        self._seq = 0

    def _next_tag(self) -> int:
        self._seq = (self._seq + 1) & TAG_SEQ_MASK
        return host_tag(self.host_id, self._seq)

    def read_reg(self, reg: int, tag: int | None = None,
                 max_cycles: int = 1_000_000) -> int:
        if tag is None:
            tag = self._next_tag()
        return super().read_reg(reg, tag, max_cycles)

    def read_flags(self, flag_reg: int, tag: int | None = None,
                   max_cycles: int = 1_000_000) -> int:
        if tag is None:
            tag = self._next_tag()
        return super().read_flags(flag_reg, tag, max_cycles)


def drivers_for(system: BuiltMultiHostSystem, raise_on_exception: bool = True):
    """One driver per CPU of the shared system."""
    return [
        HostCpuDriver(system, i, raise_on_exception)
        for i in range(system.soc.bus.n_hosts)
    ]

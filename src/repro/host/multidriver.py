"""Per-CPU driver for a shared coprocessor (paper Fig. 1.1).

Each CPU gets its own :class:`HostCpuDriver`, which is a normal
:class:`CoprocessorDriver` speaking through that CPU's port of the shared
bus.  The bus routes responses back to the issuing CPU by the top bits of
the GET/GETF tag, so each driver's engine is confined to its CPU's slice
of the tag namespace: the tag allocator can only ever hand out tags the
bus will route home.

Register-file partitioning between CPUs is a software convention, exactly
as it would be on a real shared coprocessor; use disjoint register ranges
(the tests partition by halves).
"""

from __future__ import annotations

from typing import Optional

from ..messages.multihost import TAG_SEQ_MASK, host_tag
from ..system.multihost import BuiltMultiHostSystem
from .driver import CoprocessorDriver


class HostCpuDriver(CoprocessorDriver):
    """Driver bound to one CPU of a multi-host system."""

    def __init__(
        self,
        system: BuiltMultiHostSystem,
        host_id: int,
        raise_on_exception: bool = True,
        window: Optional[int] = None,
    ):
        if not 0 <= host_id < system.soc.bus.n_hosts:
            raise ValueError(f"host id {host_id} out of range")
        super().__init__(
            system,
            raise_on_exception=raise_on_exception,
            host_port=system.soc.bus.hosts[host_id],
            window=window,
            tags=[host_tag(host_id, seq) for seq in range(TAG_SEQ_MASK + 1)],
        )
        self.host_id = host_id


def drivers_for(system: BuiltMultiHostSystem, raise_on_exception: bool = True):
    """One driver per CPU of the shared system."""
    return [
        HostCpuDriver(system, i, raise_on_exception)
        for i in range(system.soc.bus.n_hosts)
    ]

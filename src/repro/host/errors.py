"""Host-side timeout and link-failure errors.

Both derive from :class:`repro.hdl.errors.SimulationError`, so existing
callers that guard pump loops with ``except SimulationError`` keep working;
new code can catch the narrower types to distinguish "the coprocessor is
slow or wedged" (:class:`HostTimeoutError`) from "the link retry budget is
exhausted — the board fell off the bus" (:class:`LinkDownError`).
"""

from __future__ import annotations

from ..hdl.errors import SimulationError


class HostTimeoutError(SimulationError):
    """A host-side deadline elapsed with no observable progress."""


class LinkDownError(HostTimeoutError):
    """The reliable link layer exhausted its retransmission budget.

    Raised (or used to fail outstanding futures) once a request has been
    retransmitted ``max_retries`` times without any acknowledging response —
    the protocol's declaration that the physical link is dead.
    """

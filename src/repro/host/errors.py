"""Host-side timeout and link-failure errors.

Both derive from :class:`repro.hdl.errors.SimulationError`, so existing
callers that guard pump loops with ``except SimulationError`` keep working;
new code can catch the narrower types to distinguish "the coprocessor is
slow or wedged" (:class:`HostTimeoutError`) from "the link retry budget is
exhausted — the board fell off the bus" (:class:`LinkDownError`).
"""

from __future__ import annotations

from ..hdl.errors import SimulationError


class HostTimeoutError(SimulationError):
    """A host-side deadline elapsed with no observable progress."""


class LinkDownError(HostTimeoutError):
    """The reliable link layer exhausted its retransmission budget.

    Raised (or used to fail outstanding futures) once a request has been
    retransmitted ``max_retries`` times without any acknowledging response —
    the protocol's declaration that the physical link is dead.
    """


class MachineCheckError(SimulationError):
    """An uncorrectable state upset could not be recovered by rollback.

    The coprocessor reported a machine check (a double-bit upset in
    architectural state) and the host engine either had no clean
    checkpoint to roll back to, or took a second check before reaching a
    new quiescent point — replaying further would risk committing results
    computed from corrupt state, so the engine fails fast instead.
    """

    def __init__(self, message: str, element: int = 0, address: int = 0,
                 syndrome: int = 0):
        super().__init__(message)
        self.element = element
        self.address = address
        self.syndrome = syndrome

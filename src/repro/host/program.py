"""Batch program execution: assembler text → coprocessor → responses.

Glue between :mod:`repro.isa.assembler` and the driver, used by the
examples and the pipeline benchmarks: assemble a whole program, stream it
to the coprocessor, and collect every response message.
"""

from __future__ import annotations

from ..isa.assembler import assemble
from ..messages.types import DataRecord, FlagVector, Message
from .driver import CoprocessorDriver


def run_program(
    driver: CoprocessorDriver, source: str, max_cycles: int = 1_000_000
) -> list[Message]:
    """Assemble and execute ``source``; returns all responses in order.

    The program's GET/GETF instructions determine how many responses come
    back; the function counts them from the assembled instruction stream so
    callers need not.
    """
    program = assemble(source)
    from ..isa.opcodes import Opcode

    expected = sum(
        1 for i in program if i.opcode in (Opcode.GET, Opcode.GETF, Opcode.HALT)
    )
    driver.execute_all(program)
    if expected == 0:
        driver.run_until_quiet(max_cycles)
        out, driver.inbox = driver.inbox[:], []
        return out
    return driver.wait_for(expected, max_cycles)


def collect_values(messages: list[Message]) -> list[int]:
    """Extract the numeric payloads of data records / flag vectors, in order."""
    return [m.value for m in messages if isinstance(m, (DataRecord, FlagVector))]

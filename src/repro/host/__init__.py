"""repro.host — the host-computer software stack.

The driver (message-level), the session API (register allocation, typed
operations, multi-word arithmetic), batch program execution, and the
software baselines the benchmarks compare against.
"""

from .baselines import OpCounter, limbs_of, multiword_add, multiword_sub, value_of
from .driver import CoprocessorDriver, CoprocessorError
from .engine import (
    DEFAULT_WINDOW,
    EngineStats,
    HostEngine,
    HostFuture,
    TagAllocator,
    default_deadline_cycles,
)
from .errors import HostTimeoutError, LinkDownError, MachineCheckError
from .multidriver import HostCpuDriver, drivers_for
from .program import collect_values, run_program
from .session import OutOfRegisters, Pipeline, Session

__all__ = [
    "OpCounter",
    "limbs_of",
    "multiword_add",
    "multiword_sub",
    "value_of",
    "CoprocessorDriver",
    "CoprocessorError",
    "DEFAULT_WINDOW",
    "EngineStats",
    "HostEngine",
    "HostFuture",
    "HostTimeoutError",
    "LinkDownError",
    "MachineCheckError",
    "TagAllocator",
    "default_deadline_cycles",
    "HostCpuDriver",
    "drivers_for",
    "collect_values",
    "run_program",
    "OutOfRegisters",
    "Pipeline",
    "Session",
]

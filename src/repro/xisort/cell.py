"""The SIMD cell — one word of χ-sort smart memory (paper Fig. 9 / thesis Fig. 3.12).

"A cell corresponds to a word of memory, but it contains a small amount of
computational hardware as well as storage."  Each cell holds a data element,
its index interval ⟨lower, upper⟩, a selection flag and a saved flag, plus
the comparator/mux cloud that executes one broadcast command per cycle.

Three implementations share the same semantics:

* :func:`cell_step` — the pure transition function (the oracle used by
  property tests);
* :class:`Cell` — a structural component with the figure's register set,
  riding the smart-memory kit's :class:`repro.smem.array.SmartCell`;
* :class:`repro.xisort.cellarray.VectorCellArray` — the vectorised NumPy
  model used at scale (the HPC-Python hot path).

Empty cells are reset to the *sentinel* interval ⟨0xFFFF, 0xFFFF⟩: a
precise interval beyond any valid index, so unoccupied cells are never
selected as pivots and never collide with a sorted element during readout.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import IntEnum
from typing import Optional

from ..hdl import Component
from ..smem.array import SmartCell

#: Width of an index-interval bound; also sets the sentinel.
INTERVAL_BITS = 16
INTERVAL_MASK = (1 << INTERVAL_BITS) - 1
#: "Empty cell" bound value — a precise interval past every usable index.
SENTINEL = INTERVAL_MASK


class CellCmd(IntEnum):
    """Command lines of the SIMD cell (thesis Fig. 3.12 ``cmd_*`` inputs)."""

    NOP = 0
    LOAD = 1                  # shift array up; cell 0 ← load buses
    CLEAR = 2                 # return to the empty (sentinel) state
    SELECT_ALL = 3            # sel := 1
    SELECT_IMPRECISE = 4      # sel &= (lower != upper)
    MATCH_DATA_LT = 5         # sel &= (data <  broadcast)
    MATCH_DATA_EQ = 6         # sel &= (data == broadcast)
    MATCH_DATA_GT = 7         # sel &= (data >  broadcast)
    MATCH_LOWER_BOUND = 8     # sel &= (lower == broadcast)
    MATCH_UPPER_BOUND = 9     # sel &= (upper == broadcast)
    MATCH_LOWER_BOUND_I = 10  # sel &= (lower <= broadcast)   (interval contains)
    MATCH_UPPER_BOUND_I = 11  # sel &= (upper >= broadcast)
    SET_LOWER_BOUND = 12      # if sel: lower := broadcast
    SET_UPPER_BOUND = 13      # if sel: upper := broadcast
    SET_BOUNDS = 14           # if sel: lower := upper := broadcast
    LOAD_SELECTED = 15        # if sel: data := broadcast
    SAVE = 16                 # saved := sel
    RESTORE = 17              # sel := saved


@dataclass(frozen=True)
class CellState:
    """The persistent state of one cell."""

    data: int = 0
    lower: int = SENTINEL
    upper: int = SENTINEL
    selected: bool = False
    saved: bool = False

    @property
    def imprecise(self) -> bool:
        return self.lower != self.upper


def cell_step(
    state: CellState,
    cmd: CellCmd,
    broadcast: int = 0,
    shift_in: Optional[CellState] = None,
    load_data: int = 0,
    load_lower: int = 0,
    load_upper: int = 0,
    is_first: bool = False,
) -> CellState:
    """Pure transition function: one command applied to one cell.

    For ``LOAD``, ``shift_in`` is the neighbouring (lower-index) cell's
    previous state; the first cell takes the load buses instead.
    """
    if cmd == CellCmd.NOP:
        return state
    if cmd == CellCmd.LOAD:
        if is_first:
            return CellState(
                data=load_data,
                lower=load_lower & INTERVAL_MASK,
                upper=load_upper & INTERVAL_MASK,
                selected=False,
                saved=False,
            )
        assert shift_in is not None
        return replace(
            shift_in, selected=False, saved=False
        )
    if cmd == CellCmd.CLEAR:
        return CellState()
    if cmd == CellCmd.SELECT_ALL:
        return replace(state, selected=True)
    if cmd == CellCmd.SELECT_IMPRECISE:
        return replace(state, selected=state.selected and state.imprecise)
    if cmd == CellCmd.MATCH_DATA_LT:
        return replace(state, selected=state.selected and state.data < broadcast)
    if cmd == CellCmd.MATCH_DATA_EQ:
        return replace(state, selected=state.selected and state.data == broadcast)
    if cmd == CellCmd.MATCH_DATA_GT:
        return replace(state, selected=state.selected and state.data > broadcast)
    b = broadcast & INTERVAL_MASK
    if cmd == CellCmd.MATCH_LOWER_BOUND:
        return replace(state, selected=state.selected and state.lower == b)
    if cmd == CellCmd.MATCH_UPPER_BOUND:
        return replace(state, selected=state.selected and state.upper == b)
    if cmd == CellCmd.MATCH_LOWER_BOUND_I:
        return replace(state, selected=state.selected and state.lower <= b)
    if cmd == CellCmd.MATCH_UPPER_BOUND_I:
        return replace(state, selected=state.selected and state.upper >= b)
    if cmd == CellCmd.SET_LOWER_BOUND:
        return replace(state, lower=b) if state.selected else state
    if cmd == CellCmd.SET_UPPER_BOUND:
        return replace(state, upper=b) if state.selected else state
    if cmd == CellCmd.SET_BOUNDS:
        return replace(state, lower=b, upper=b) if state.selected else state
    if cmd == CellCmd.LOAD_SELECTED:
        return replace(state, data=broadcast) if state.selected else state
    if cmd == CellCmd.SAVE:
        return replace(state, saved=state.selected)
    if cmd == CellCmd.RESTORE:
        return replace(state, selected=state.saved)
    raise ValueError(f"unknown cell command {cmd!r}")


class Cell(SmartCell):
    """Structural single cell: the Fig. 3.12 register set behind `cell_step`.

    Command/broadcast signals are shared across the array (SIMD); each cell
    owns only its state registers.  Used by
    :class:`repro.xisort.cellarray.StructuralCellArray` for the
    structural-vs-vectorised equivalence tests.
    """

    def __init__(self, name: str, word_bits: int, parent: Optional[Component] = None):
        super().__init__(name, word_bits, parent)
        # Inputs are wired (assigned) by the owning array.
        self.cmd = None
        self.broadcast = None
        self.load_data = None
        self.load_lower = None
        self.load_upper = None

    def _reset_state(self) -> CellState:
        return CellState()

    def _next_state(self) -> CellState:
        cmd = CellCmd(self.cmd.value)
        shift_in = self.prev_cell._state.value if self.prev_cell is not None else None
        return cell_step(
            self._state.value,
            cmd,
            broadcast=self.broadcast.value,
            shift_in=shift_in,
            load_data=self.load_data.value,
            load_lower=self.load_lower.value,
            load_upper=self.load_upper.value,
            is_first=self.is_first,
        )

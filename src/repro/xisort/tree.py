"""Compatibility shim — the fold tree now lives in the smart-memory kit.

The tree network (paper Fig. 8 / thesis Fig. 3.9) was always generic over
what the cells hold; it moved to :mod:`repro.smem.tree` when the kit was
carved out of ξ-sort.  This module keeps the historical import surface.
"""

from __future__ import annotations

from ..smem.tree import (
    NodeValue,
    TreeNetwork,
    fold_reduce,
    tree_depth,
    tree_node_count,
)

__all__ = [
    "NodeValue",
    "TreeNetwork",
    "fold_reduce",
    "tree_depth",
    "tree_node_count",
]

"""Software baselines for χ-sort (the paper's CPU-side comparison).

"With a CPU each operation requires an iteration that takes time
proportional to the number of data elements" (§IV.B).
:class:`SoftwareXiSort` executes the *same* index-interval algorithm the
hardware runs, element by element, instrumented with an operation counter —
the per-step cost is Θ(n), while the hardware's is constant.  Classic
quicksort/quickselect baselines are included for an honest best-known-
software comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..host.baselines import OpCounter


@dataclass
class SwCell:
    """The software mirror of one smart-memory cell."""

    data: int
    lower: int
    upper: int

    @property
    def imprecise(self) -> bool:
        return self.lower != self.upper


class SoftwareXiSort:
    """The interval-refinement algorithm executed sequentially."""

    def __init__(self, values: Sequence[int], counter: Optional[OpCounter] = None):
        n = len(values)
        self.cells = [SwCell(v, 0, n - 1) for v in values]
        self.counter = counter if counter is not None else OpCounter()
        self.split_steps = 0

    # -- the Θ(n)-per-step primitives (each is one fixed-cycle op in hardware) -----

    def find_pivot(self) -> Optional[SwCell]:
        """Leftmost imprecise cell — a full scan on a CPU."""
        for cell in self.cells:
            self.counter.count("scan")
            if cell.imprecise:
                return cell
        return None

    def find_pivot_at(self, k: int) -> Optional[SwCell]:
        for cell in self.cells:
            self.counter.count("scan")
            if cell.imprecise and cell.lower <= k <= cell.upper:
                return cell
        return None

    def split(self, pivot: SwCell) -> int:
        """One refinement step: every element of the segment is touched."""
        p, q, v = pivot.lower, pivot.upper, pivot.data
        segment = []
        for cell in self.cells:
            self.counter.count("match")
            if cell.lower == p and cell.upper == q:
                segment.append(cell)
        k = 0
        for cell in segment:
            self.counter.count("compare")
            if cell.data < v:
                k += 1
        for cell in segment:
            self.counter.count("update")
            if cell.data < v:
                cell.upper = p + k - 1
            elif cell.data > v:
                cell.lower = p + k + 1
            else:
                cell.lower = cell.upper = p + k
        self.split_steps += 1
        return k

    def read_at(self, index: int) -> Optional[int]:
        for cell in self.cells:
            self.counter.count("scan")
            if cell.lower == index and cell.upper == index:
                return cell.data
        return None

    # -- full algorithms ------------------------------------------------------------

    def sort(self) -> list[int]:
        while True:
            pivot = self.find_pivot()
            if pivot is None:
                break
            self.split(pivot)
        return [c.data for c in sorted(self.cells, key=lambda c: c.lower)]

    def select(self, k: int) -> int:
        while True:
            v = self.read_at(k)
            if v is not None:
                return v
            pivot = self.find_pivot_at(k)
            if pivot is None:
                raise RuntimeError("no interval contains k")
            self.split(pivot)


def quicksort_counted(values: Sequence[int], counter: Optional[OpCounter] = None) -> list[int]:
    """Plain quicksort with comparison counting (best-software baseline)."""
    counter = counter if counter is not None else OpCounter()

    def qs(arr: list[int]) -> list[int]:
        if len(arr) <= 1:
            return arr
        pivot = arr[0]
        lt, eq, gt = [], [], []
        for x in arr:
            counter.count("compare")
            if x < pivot:
                lt.append(x)
            elif x > pivot:
                gt.append(x)
            else:
                eq.append(x)
        return qs(lt) + eq + qs(gt)

    return qs(list(values))


def quickselect_counted(
    values: Sequence[int], k: int, counter: Optional[OpCounter] = None
) -> int:
    """Plain quickselect with comparison counting."""
    counter = counter if counter is not None else OpCounter()
    arr = list(values)
    lo_rank = 0
    while True:
        if len(arr) == 1:
            return arr[0]
        pivot = arr[0]
        lt, eq, gt = [], [], []
        for x in arr:
            counter.count("compare")
            if x < pivot:
                lt.append(x)
            elif x > pivot:
                gt.append(x)
            else:
                eq.append(x)
        if k < lo_rank + len(lt):
            arr = lt
        elif k < lo_rank + len(lt) + len(eq):
            return pivot
        else:
            lo_rank += len(lt) + len(eq)
            arr = gt

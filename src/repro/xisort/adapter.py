"""The functional-unit adapter for the ξ-sort core (thesis Figs. 3.13/3.14).

"The functional unit connected to the coprocessor components is realised
using a functional unit adapter component.  This adapter module connects
the actual ξ-sort core to the dispatcher and the write arbiter ... The idea
behind the design is to separate the ξ-sort controller logic from the
interface logic required by the framework."

The interface logic itself — the Fig. 3.14 FSM, the output buffering, the
write-profile-shaped transfers — is machine-independent and lives in the
smart-memory kit's :class:`~repro.smem.adapter.SmartMemoryUnit`;
:class:`XiSortUnit` is that adapter bound to the ξ-sort core and write
profile.
"""

from __future__ import annotations

from ..smem.adapter import AdapterState, SmartMemoryUnit
from .core import ArrayKind, XiSortCore
from .microcode import write_profile as xi_write_profile

__all__ = ["AdapterState", "XiSortUnit", "xisort_factory"]


class XiSortUnit(SmartMemoryUnit):
    """ξ-sort core wrapped in the framework's unit protocol."""

    core_class = XiSortCore
    #: consulted by the functional unit table (decoder lock sets)
    write_profile = staticmethod(xi_write_profile)


def xisort_factory(n_cells: int = 64, array_kind: ArrayKind = "vector"):
    """Unit-registry factory for a ξ-sort unit of a given size."""

    def make(name: str, word_bits: int, parent=None) -> XiSortUnit:
        return XiSortUnit(name, word_bits, parent, n_cells=n_cells, array_kind=array_kind)

    return make

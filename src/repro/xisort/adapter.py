"""The functional-unit adapter for the ξ-sort core (thesis Figs. 3.13/3.14).

"The functional unit connected to the coprocessor components is realised
using a functional unit adapter component.  This adapter module connects
the actual ξ-sort core to the dispatcher and the write arbiter ... The idea
behind the design is to separate the ξ-sort controller logic from the
interface logic required by the framework."

The adapter's FSM (Fig. 3.14): Idle → dispatch forwarded to the core →
wait for the core's completion strobe → one buffering cycle to capture the
core outputs ("the adapter module buffers the output of the ξ-sort core") →
send the result transfers to the write arbiter → Idle.  The adapter also
carries the unit's *write profile* so the decoder can lock exactly the
destinations a given variety writes.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Optional

from ..fu.base import FunctionalUnit
from ..fu.protocol import Transfer
from ..hdl import Component
from .core import ArrayKind, XiSortCore
from .microcode import write_profile as xi_write_profile


class AdapterState(IntEnum):
    IDLE = 0
    RUN = 1
    COLLECT = 2   # capture the core's freshly latched outputs
    SEND = 3


class XiSortUnit(FunctionalUnit):
    """ξ-sort core wrapped in the framework's unit protocol."""

    #: consulted by the functional unit table (decoder lock sets)
    write_profile = staticmethod(xi_write_profile)

    def __init__(
        self,
        name: str,
        word_bits: int,
        parent: Optional[Component] = None,
        n_cells: int = 64,
        array_kind: ArrayKind = "vector",
    ):
        super().__init__(name, word_bits, parent)
        self.core = XiSortCore("core", n_cells, word_bits, array_kind=array_kind, parent=self)
        self._state = self.reg("state", 2, AdapterState.IDLE)
        self._sample = self.reg("sample", None, reset=None)
        self._pending = self.reg("pending", None, reset=())
        self.operations = 0

        @self.comb
        def _drive() -> None:
            state = self._state.value
            self.dp.idle.set(1 if state == AdapterState.IDLE else 0)
            # forward a dispatch straight into the core's start interface
            dispatching = bool(self.dp.dispatch.value and state == AdapterState.IDLE)
            self.core.start.set(1 if dispatching else 0)
            if dispatching:
                self.core.variety.set(self.dp.variety.value)
                self.core.op_a.set(self.dp.op_a.value)
                self.core.op_b.set(self.dp.op_b.value)
            pending = self._pending.value
            if state == AdapterState.SEND and pending:
                self.rp.present(pending[0])
            else:
                self.rp.present(None)

        @self.seq
        def _tick() -> None:
            state = self._state.value
            if state == AdapterState.IDLE:
                if self.dp.dispatch.value:
                    self._sample.nxt = self.dp.sample()
                    self._state.nxt = AdapterState.RUN
                    self.operations += 1
            elif state == AdapterState.RUN:
                if self.core.completed.value:
                    self._state.nxt = AdapterState.COLLECT
            elif state == AdapterState.COLLECT:
                # The core latched its outputs at the completion edge; they
                # are stable .value reads now.
                transfers = self._build_transfers()
                if transfers:
                    self._pending.nxt = transfers
                    self._state.nxt = AdapterState.SEND
                else:
                    self._state.nxt = AdapterState.IDLE
            elif state == AdapterState.SEND:
                if self.rp.ack.value:
                    rest = self._pending.value[1:]
                    self._pending.nxt = rest
                    if not rest:
                        self._state.nxt = AdapterState.IDLE

        # Any non-idle adapter state does real work every edge (the core's
        # own processes track the sort); only a truly idle unit has no horizon.
        self.wheel(
            lambda: None if (self._state.value == AdapterState.IDLE
                             and not self.dp.dispatch.value) else 0,
            lambda n: None,
        )

    def _build_transfers(self) -> tuple[Transfer, ...]:
        """Map the buffered core outputs onto write-arbiter transfers.

        Mirrors :func:`repro.xisort.microcode.write_profile`, which is also
        what the decoder locked for this instruction.
        """
        sample = self._sample.value
        ctrl = self.core.controller
        w1, w2, wf = xi_write_profile(sample.variety)
        transfers: list[Transfer] = []
        flag_reg = sample.dst_flag if wf else None
        flag_value = ctrl.out_flags.value if wf else 0
        if w1:
            transfers.append(
                Transfer(sample.dst1, ctrl.out_data1.value, flag_reg, flag_value,
                         last=not w2)
            )
        elif wf:
            transfers.append(Transfer(None, 0, flag_reg, flag_value, last=not w2))
        if w2:
            transfers.append(Transfer(sample.dst2, ctrl.out_data2.value, None, 0, last=True))
        return tuple(transfers)


def xisort_factory(n_cells: int = 64, array_kind: ArrayKind = "vector"):
    """Unit-registry factory for a ξ-sort unit of a given size."""

    def make(name: str, word_bits: int, parent=None) -> XiSortUnit:
        return XiSortUnit(name, word_bits, parent, n_cells=n_cells, array_kind=array_kind)

    return make

"""Host-side χ-sort: driving the stateful unit through the full framework.

This is the paper's §IV.B in executable form: "The χ-sort algorithm
executes in the Register Transfer Machine, which issues microinstructions
to a stateful functional unit."  The host issues RTM instructions (unit
dispatches, GETs) over the message channel; the scoreboard guarantees that
a SPLIT dispatched right after FIND_PIVOT reads the pivot registers only
once the unit has written them — out-of-order completion with in-order
results, with no host-side synchronisation beyond the protocol itself.

Keys must be distinct (a property of χ-sort's index-interval scheme; see
DESIGN.md).  :meth:`XiSortAccelerator.sort` can enforce this transparently
by packing each value with its original position.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..isa import instructions as ins
from ..isa.opcodes import Opcode
from ..host.session import Session
from .cell import INTERVAL_BITS
from .microcode import (
    XI_FIND_PIVOT,
    XI_WRITE_AT,
    XI_RANK,
    XI_COUNT_EQ,
    XI_FIND_PIVOT_AT,
    XI_FLAG_FOUND,
    XI_LOAD,
    XI_READ_AT,
    XI_RESET,
    XI_SPLIT,
    XI_STATUS,
)


class XiSortAccelerator:
    """χ-sort operations over an open :class:`Session`.

    The session's system must include a ξ-sort unit (see
    :func:`repro.xisort.adapter.xisort_factory` and the system builder).
    """

    def __init__(self, session: Session, unit_code: int = Opcode.XISORT):
        self.session = session
        self.unit_code = unit_code
        d = session.driver
        # dedicated registers for the pivot protocol
        self.r_val = session.alloc()      # operand A staging
        self.r_aux = session.alloc()      # operand B staging
        self.r_pivot = session.alloc()    # FIND_PIVOT → pivot datum
        self.r_interval = session.alloc() # FIND_PIVOT → packed interval
        self.r_out = session.alloc()      # READ_AT / SPLIT results
        self.f_status = session.alloc_flag()

    # -- raw unit dispatches ---------------------------------------------------------

    def _dispatch(self, variety: int, src1: int = 0, src2: int = 0,
                  dst1: int = 0, dst2: int = 0, dst_flag: int = 0) -> None:
        self.session.driver.execute(
            ins.dispatch(self.unit_code, variety, dst1=dst1, dst2=dst2,
                         src1=src1, src2=src2, dst_flag=dst_flag)
        )

    def reset(self) -> None:
        self._dispatch(XI_RESET)

    def load(self, values: Sequence[int]) -> None:
        """Stream the values into the smart memory (one LOAD dispatch each)."""
        s = self.session
        n = len(values)
        s.write(self.r_aux, n - 1)
        for v in values:
            s.write(self.r_val, v)
            self._dispatch(XI_LOAD, src1=self.r_val, src2=self.r_aux)

    def find_pivot(self) -> bool:
        """Dispatch FIND_PIVOT; returns the found flag (one GETF round trip).

        The pivot datum/interval stay on the coprocessor in ``r_pivot`` /
        ``r_interval`` — the host never needs their values, it only chains
        them into SPLIT (the scoreboard orders the two dispatches).
        """
        self._dispatch(
            XI_FIND_PIVOT,
            dst1=self.r_pivot, dst2=self.r_interval, dst_flag=self.f_status,
        )
        flags = self.session.driver.read_flags(self.f_status)
        return bool(flags & XI_FLAG_FOUND)

    def find_pivot_at(self, k: int) -> bool:
        """FIND_PIVOT_AT k — pivot of the segment containing index k."""
        self.session.write(self.r_val, k)
        self._dispatch(
            XI_FIND_PIVOT_AT, src1=self.r_val,
            dst1=self.r_pivot, dst2=self.r_interval, dst_flag=self.f_status,
        )
        flags = self.session.driver.read_flags(self.f_status)
        return bool(flags & XI_FLAG_FOUND)

    def split(self) -> None:
        """SPLIT on the pivot registers produced by the last FIND_PIVOT*."""
        self._dispatch(XI_SPLIT, src1=self.r_pivot, src2=self.r_interval,
                       dst1=self.r_out)

    def read_at(self, index: int) -> Optional[int]:
        s = self.session
        s.write(self.r_val, index)
        self._dispatch(XI_READ_AT, src1=self.r_val, dst1=self.r_out,
                       dst_flag=self.f_status)
        flags = s.driver.read_flags(self.f_status)
        if not flags & XI_FLAG_FOUND:
            return None
        return s.read(self.r_out)

    def imprecise_count(self) -> int:
        self._dispatch(XI_STATUS, dst1=self.r_out)
        return self.session.read(self.r_out)

    def rank(self, value: int) -> int:
        """Constant-time order statistic: elements strictly below value."""
        s = self.session
        s.write(self.r_val, value)
        self._dispatch(XI_RANK, src1=self.r_val, dst1=self.r_out)
        return s.read(self.r_out)

    def count_eq(self, value: int) -> int:
        """Constant-time multiplicity / membership test."""
        s = self.session
        s.write(self.r_val, value)
        self._dispatch(XI_COUNT_EQ, src1=self.r_val, dst1=self.r_out)
        return s.read(self.r_out)

    def write_at(self, index: int, value: int) -> bool:
        """Overwrite the datum at a precise index (smart-memory update)."""
        s = self.session
        s.write(self.r_val, index)
        s.write(self.r_aux, value)
        self._dispatch(XI_WRITE_AT, src1=self.r_val, src2=self.r_aux,
                       dst_flag=self.f_status)
        return bool(s.driver.read_flags(self.f_status) & XI_FLAG_FOUND)

    # -- high-level algorithms ----------------------------------------------------------

    def sort(self, values: Sequence[int], ensure_distinct: bool = True) -> list[int]:
        """Full χ-sort; returns the values in ascending order.

        With ``ensure_distinct``, each value is packed with its original
        index before loading (stable order among duplicates) and unpacked
        on readout, lifting the distinct-keys requirement.
        """
        n = len(values)
        if n == 0:
            return []
        idx_bits = max(1, (n - 1).bit_length()) if ensure_distinct else 0
        if ensure_distinct:
            loaded = [(v << idx_bits) | i for i, v in enumerate(values)]
        else:
            loaded = list(values)
        self.reset()
        self.load(loaded)
        while self.find_pivot():
            self.split()
        out = []
        for i in range(n):
            v = self.read_at(i)
            if v is None:
                raise RuntimeError(f"no element settled at index {i}")
            out.append(v >> idx_bits if ensure_distinct else v)
        return out

    def select(self, values: Sequence[int], k: int, ensure_distinct: bool = True) -> int:
        """k-th smallest (0-based), refining only the path containing k."""
        n = len(values)
        if not 0 <= k < n:
            raise IndexError(f"k={k} out of range for {n} values")
        idx_bits = max(1, (n - 1).bit_length()) if ensure_distinct else 0
        if ensure_distinct:
            loaded = [(v << idx_bits) | i for i, v in enumerate(values)]
        else:
            loaded = list(values)
        self.reset()
        self.load(loaded)
        while True:
            v = self.read_at(k)
            if v is not None:
                return v >> idx_bits if ensure_distinct else v
            if not self.find_pivot_at(k):
                raise RuntimeError("no imprecise interval contains k; bad state")
            self.split()

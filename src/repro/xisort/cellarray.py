"""Cell arrays: vectorised (NumPy) and structural implementations.

The vectorised array is the production model — one sequential process
updates all n cells as NumPy arrays per cycle, following the domain
guidance to vectorise the hot loop.  The structural array instantiates one
:class:`repro.xisort.cell.Cell` component per element and is the
equivalence oracle (and the faithful picture of the synthesised design) for
small n.

Both expose the same port set:

* command inputs: ``cmd``, ``broadcast``, ``load_data``, ``load_lower``,
  ``load_upper`` (driven by the ξ-sort controller);
* tree outputs (paper Fig. 8): ``count``, ``leftmost_found``,
  ``leftmost_data``, ``leftmost_lower``, ``leftmost_upper``,
  ``selected_value``, ``selected_unique``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..hdl import Component
from .cell import INTERVAL_BITS, SENTINEL, Cell, CellCmd, CellState
from .tree import TreeNetwork


class CellArrayPorts:
    """Shared port declaration for both array implementations."""

    def _make_ports(self, comp: Component, word_bits: int) -> None:
        # command side (driven by the controller)
        self.cmd = comp.signal("cmd", 8, CellCmd.NOP)
        self.broadcast = comp.signal("broadcast", word_bits, 0)
        self.load_data = comp.signal("load_data", word_bits, 0)
        self.load_lower = comp.signal("load_lower", INTERVAL_BITS, 0)
        self.load_upper = comp.signal("load_upper", INTERVAL_BITS, 0)
        # tree outputs
        self.count = comp.signal("count", 32, 0)
        self.leftmost_found = comp.signal("leftmost_found", 1, 0)
        self.leftmost_data = comp.signal("leftmost_data", word_bits, 0)
        self.leftmost_lower = comp.signal("leftmost_lower", INTERVAL_BITS, 0)
        self.leftmost_upper = comp.signal("leftmost_upper", INTERVAL_BITS, 0)
        self.selected_value = comp.signal("selected_value", word_bits, 0)
        self.selected_unique = comp.signal("selected_unique", 1, 0)


class VectorCellArray(Component, CellArrayPorts):
    """All n cells as NumPy arrays; one seq process applies the command."""

    def __init__(self, name: str, n_cells: int, word_bits: int = 32,
                 parent: Optional[Component] = None):
        super().__init__(name, parent)
        if n_cells < 1:
            raise ValueError("cell array needs at least one cell")
        if n_cells - 1 >= SENTINEL:
            raise ValueError(f"n_cells must stay below the sentinel index {SENTINEL:#x}")
        self.n_cells = n_cells
        self.word_bits = word_bits
        self.tree = TreeNetwork(n_cells)
        self._make_ports(self, word_bits)
        self._init_state()

        # always=True: this process reads the NumPy cell-state arrays, which
        # the scheduler's Signal read-tracking cannot see; it must re-run on
        # every settle iteration (the arrays change at each applied command).
        @self.comb(always=True)
        def _tree_outputs() -> None:
            sel = self.sel
            count = self.tree.count(sel)
            self.count.set(count)
            left = self.tree.leftmost(sel)
            self.leftmost_found.set(1 if left is not None else 0)
            if left is not None:
                self.leftmost_data.set(int(self.data[left]))
                self.leftmost_lower.set(int(self.lower[left]))
                self.leftmost_upper.set(int(self.upper[left]))
            self.selected_unique.set(1 if count == 1 else 0)
            self.selected_value.set(self.tree.selected_value(sel, self.data))

        @self.seq
        def _apply() -> None:
            self._step(CellCmd(self.cmd.value))

        # A NOP edge leaves the NumPy state untouched, so idle cycles are
        # freely skippable; any real command vetoes.  This hook also keeps
        # the always=True tree fold covered on the fast-forward path: the
        # arrays cannot change while every skipped edge is a NOP.
        self.wheel(
            lambda: 0 if self.cmd.value != CellCmd.NOP else None,
            lambda n: None,
        )

        @self.on_reset
        def _reset() -> None:
            self._init_state()

    def _init_state(self) -> None:
        n = self.n_cells
        self.data = np.zeros(n, dtype=np.uint64)
        self.lower = np.full(n, SENTINEL, dtype=np.uint32)
        self.upper = np.full(n, SENTINEL, dtype=np.uint32)
        self.sel = np.zeros(n, dtype=bool)
        self.saved = np.zeros(n, dtype=bool)

    # -- the SIMD step (vectorised cell_step) -------------------------------------

    def _step(self, cmd: CellCmd) -> None:
        if cmd == CellCmd.NOP:
            return
        b = self.broadcast.value
        bi = b & ((1 << INTERVAL_BITS) - 1)
        if cmd == CellCmd.LOAD:
            self.data = np.roll(self.data, 1)
            self.lower = np.roll(self.lower, 1)
            self.upper = np.roll(self.upper, 1)
            self.data[0] = self.load_data.value
            self.lower[0] = self.load_lower.value
            self.upper[0] = self.load_upper.value
            self.sel = np.zeros(self.n_cells, dtype=bool)
            self.saved = np.zeros(self.n_cells, dtype=bool)
        elif cmd == CellCmd.CLEAR:
            self._init_state()
        elif cmd == CellCmd.SELECT_ALL:
            self.sel = np.ones(self.n_cells, dtype=bool)
        elif cmd == CellCmd.SELECT_IMPRECISE:
            self.sel = self.sel & (self.lower != self.upper)
        elif cmd == CellCmd.MATCH_DATA_LT:
            self.sel = self.sel & (self.data < np.uint64(b))
        elif cmd == CellCmd.MATCH_DATA_EQ:
            self.sel = self.sel & (self.data == np.uint64(b))
        elif cmd == CellCmd.MATCH_DATA_GT:
            self.sel = self.sel & (self.data > np.uint64(b))
        elif cmd == CellCmd.MATCH_LOWER_BOUND:
            self.sel = self.sel & (self.lower == bi)
        elif cmd == CellCmd.MATCH_UPPER_BOUND:
            self.sel = self.sel & (self.upper == bi)
        elif cmd == CellCmd.MATCH_LOWER_BOUND_I:
            self.sel = self.sel & (self.lower <= bi)
        elif cmd == CellCmd.MATCH_UPPER_BOUND_I:
            self.sel = self.sel & (self.upper >= bi)
        elif cmd == CellCmd.SET_LOWER_BOUND:
            self.lower = np.where(self.sel, np.uint32(bi), self.lower)
        elif cmd == CellCmd.SET_UPPER_BOUND:
            self.upper = np.where(self.sel, np.uint32(bi), self.upper)
        elif cmd == CellCmd.SET_BOUNDS:
            self.lower = np.where(self.sel, np.uint32(bi), self.lower)
            self.upper = np.where(self.sel, np.uint32(bi), self.upper)
        elif cmd == CellCmd.LOAD_SELECTED:
            self.data = np.where(self.sel, np.uint64(b), self.data)
        elif cmd == CellCmd.SAVE:
            self.saved = self.sel.copy()
        elif cmd == CellCmd.RESTORE:
            self.sel = self.saved.copy()
        else:  # pragma: no cover - enum exhaustive
            raise ValueError(f"unknown cell command {cmd!r}")

    # -- inspection ---------------------------------------------------------------

    def states(self) -> list[CellState]:
        """Snapshot as CellState objects (equivalence tests)."""
        return [
            CellState(
                data=int(self.data[i]),
                lower=int(self.lower[i]),
                upper=int(self.upper[i]),
                selected=bool(self.sel[i]),
                saved=bool(self.saved[i]),
            )
            for i in range(self.n_cells)
        ]


class StructuralCellArray(Component, CellArrayPorts):
    """One :class:`Cell` component per element plus a structural tree fold.

    Cycle-for-cycle equivalent to :class:`VectorCellArray`; used as the
    oracle in property tests and for small faithful simulations.
    """

    def __init__(self, name: str, n_cells: int, word_bits: int = 32,
                 parent: Optional[Component] = None):
        super().__init__(name, parent)
        if n_cells < 1:
            raise ValueError("cell array needs at least one cell")
        self.n_cells = n_cells
        self.word_bits = word_bits
        self.tree = TreeNetwork(n_cells)
        self._make_ports(self, word_bits)
        self.cells: list[Cell] = []
        prev: Optional[Cell] = None
        for i in range(n_cells):
            cell = Cell(f"cell{i}", word_bits, parent=self)
            cell.cmd = self.cmd
            cell.broadcast = self.broadcast
            cell.load_data = self.load_data
            cell.load_lower = self.load_lower
            cell.load_upper = self.load_upper
            cell.prev_cell = prev
            cell.is_first = i == 0
            self.cells.append(cell)
            prev = cell

        @self.comb
        def _tree_outputs() -> None:
            from .tree import fold_reduce

            states = [c.state for c in self.cells]
            folded = fold_reduce([s.selected for s in states], [s.data for s in states])
            self.count.set(folded.count)
            self.leftmost_found.set(1 if folded.leftmost is not None else 0)
            if folded.leftmost is not None:
                s = states[folded.leftmost]
                self.leftmost_data.set(s.data)
                self.leftmost_lower.set(s.lower)
                self.leftmost_upper.set(s.upper)
            self.selected_unique.set(1 if folded.count == 1 else 0)
            self.selected_value.set(folded.any_value)

    def states(self) -> list[CellState]:
        return [c.state for c in self.cells]

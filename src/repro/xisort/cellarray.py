"""ξ-sort cell arrays: vectorised (NumPy) and structural implementations.

Both ride the smart-memory kit (:mod:`repro.smem.array`): the kit carries
the SIMD column machinery — the one-process vector model, the per-cell
structural oracle, the NOP wheel hook and the compiled-backend
``__compile_vector__`` executor — while this module contributes what is
ξ-sort-specific: the five state vectors, the command transition, the fold
outputs and the port set.

Both arrays expose the same port set:

* command inputs: ``cmd``, ``broadcast``, ``load_data``, ``load_lower``,
  ``load_upper`` (driven by the ξ-sort controller);
* tree outputs (paper Fig. 8): ``count``, ``leftmost_found``,
  ``leftmost_data``, ``leftmost_lower``, ``leftmost_upper``,
  ``selected_value``, ``selected_unique``.

The SIMD state and per-command transition live in :class:`CellVectors` /
:func:`apply_vector_command`, shared by three drivers: the interpreted
``VectorCellArray`` process, and — under the compiled backend
(:mod:`repro.hdl.compile`) — the :class:`CellArrayExecutor` published by
*both* array implementations through ``__compile_vector__``.  For the
structural array this replaces n per-cell interpreted processes with one
array operation per cycle, which is what lets 10k+-cell structural arrays
run at vector speed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..hdl import Component
from ..smem.array import (
    SmartArrayExecutor,
    StructuralSmartArray,
    VectorSmartArray,
    lane_dtype,
)
from ..smem.tree import TreeNetwork, fold_reduce
from .cell import INTERVAL_BITS, SENTINEL, Cell, CellCmd, CellState


class CellVectors:
    """The five parallel state arrays of an n-cell SIMD column."""

    __slots__ = ("n", "dtype", "data", "lower", "upper", "sel", "saved")

    def __init__(self, n: int, word_bits: int = 64):
        self.n = n
        self.dtype = lane_dtype(word_bits)
        self.clear()

    def clear(self) -> None:
        """Every cell back to the empty (sentinel-interval) state."""
        n = self.n
        self.data = np.zeros(n, dtype=self.dtype)
        self.lower = np.full(n, SENTINEL, dtype=np.uint32)
        self.upper = np.full(n, SENTINEL, dtype=np.uint32)
        self.sel = np.zeros(n, dtype=bool)
        self.saved = np.zeros(n, dtype=bool)

    def state_of(self, i: int) -> CellState:
        return CellState(
            data=int(self.data[i]),
            lower=int(self.lower[i]),
            upper=int(self.upper[i]),
            selected=bool(self.sel[i]),
            saved=bool(self.saved[i]),
        )

    def states(self) -> list[CellState]:
        return [self.state_of(i) for i in range(self.n)]


def apply_vector_command(
    vec: CellVectors,
    cmd: CellCmd,
    broadcast: int,
    load_data: int,
    load_lower: int,
    load_upper: int,
) -> None:
    """One broadcast command applied to all cells (vectorised ``cell_step``)."""
    if cmd == CellCmd.NOP:
        return
    b = broadcast
    bi = b & ((1 << INTERVAL_BITS) - 1)
    if cmd == CellCmd.LOAD:
        vec.data = np.roll(vec.data, 1)
        vec.lower = np.roll(vec.lower, 1)
        vec.upper = np.roll(vec.upper, 1)
        vec.data[0] = load_data
        vec.lower[0] = load_lower
        vec.upper[0] = load_upper
        vec.sel = np.zeros(vec.n, dtype=bool)
        vec.saved = np.zeros(vec.n, dtype=bool)
    elif cmd == CellCmd.CLEAR:
        vec.clear()
    elif cmd == CellCmd.SELECT_ALL:
        vec.sel = np.ones(vec.n, dtype=bool)
    elif cmd == CellCmd.SELECT_IMPRECISE:
        vec.sel = vec.sel & (vec.lower != vec.upper)
    elif cmd == CellCmd.MATCH_DATA_LT:
        vec.sel = vec.sel & (vec.data < b)
    elif cmd == CellCmd.MATCH_DATA_EQ:
        vec.sel = vec.sel & (vec.data == b)
    elif cmd == CellCmd.MATCH_DATA_GT:
        vec.sel = vec.sel & (vec.data > b)
    elif cmd == CellCmd.MATCH_LOWER_BOUND:
        vec.sel = vec.sel & (vec.lower == bi)
    elif cmd == CellCmd.MATCH_UPPER_BOUND:
        vec.sel = vec.sel & (vec.upper == bi)
    elif cmd == CellCmd.MATCH_LOWER_BOUND_I:
        vec.sel = vec.sel & (vec.lower <= bi)
    elif cmd == CellCmd.MATCH_UPPER_BOUND_I:
        vec.sel = vec.sel & (vec.upper >= bi)
    elif cmd == CellCmd.SET_LOWER_BOUND:
        vec.lower = np.where(vec.sel, np.uint32(bi), vec.lower)
    elif cmd == CellCmd.SET_UPPER_BOUND:
        vec.upper = np.where(vec.sel, np.uint32(bi), vec.upper)
    elif cmd == CellCmd.SET_BOUNDS:
        vec.lower = np.where(vec.sel, np.uint32(bi), vec.lower)
        vec.upper = np.where(vec.sel, np.uint32(bi), vec.upper)
    elif cmd == CellCmd.LOAD_SELECTED:
        vec.data = np.where(vec.sel, b, vec.data)
    elif cmd == CellCmd.SAVE:
        vec.saved = vec.sel.copy()
    elif cmd == CellCmd.RESTORE:
        vec.sel = vec.saved.copy()
    else:  # pragma: no cover - enum exhaustive
        raise ValueError(f"unknown cell command {cmd!r}")


def fold_tree_outputs(vec: CellVectors, tree: TreeNetwork, ports) -> None:
    """Drive the tree-output ports from the vector state (paper Fig. 8)."""
    sel = vec.sel
    count = tree.count(sel)
    ports.count.set(count)
    left = tree.leftmost(sel)
    ports.leftmost_found.set(1 if left is not None else 0)
    if left is not None:
        ports.leftmost_data.set(int(vec.data[left]))
        ports.leftmost_lower.set(int(vec.lower[left]))
        ports.leftmost_upper.set(int(vec.upper[left]))
    ports.selected_unique.set(1 if count == 1 else 0)
    ports.selected_value.set(tree.selected_value(sel, vec.data))


class CellArrayPorts:
    """Shared port declaration for both array implementations."""

    def _make_ports(self, comp: Component, word_bits: int) -> None:
        # command side (driven by the controller)
        self.cmd = comp.signal("cmd", 8, CellCmd.NOP)
        self.broadcast = comp.signal("broadcast", word_bits, 0)
        self.load_data = comp.signal("load_data", word_bits, 0)
        self.load_lower = comp.signal("load_lower", INTERVAL_BITS, 0)
        self.load_upper = comp.signal("load_upper", INTERVAL_BITS, 0)
        # tree outputs
        self.count = comp.signal("count", 32, 0)
        self.leftmost_found = comp.signal("leftmost_found", 1, 0)
        self.leftmost_data = comp.signal("leftmost_data", word_bits, 0)
        self.leftmost_lower = comp.signal("leftmost_lower", INTERVAL_BITS, 0)
        self.leftmost_upper = comp.signal("leftmost_upper", INTERVAL_BITS, 0)
        self.selected_value = comp.signal("selected_value", word_bits, 0)
        self.selected_unique = comp.signal("selected_unique", 1, 0)


class CellArrayExecutor(SmartArrayExecutor):
    """The kit executor, keeping ξ-sort's historical ``tree`` slot/signature."""

    def __init__(self, owner, vec: CellVectors, tree: TreeNetwork,
                 absorbed, cells: Optional[list] = None):
        self.tree = tree
        super().__init__(owner, vec, absorbed, cells=cells)

    def state_of(self, i: int) -> CellState:
        return self.vec.state_of(i)


class _XiArrayMixin(CellArrayPorts):
    """The ξ-sort-specific kit hooks, shared by both array shapes."""

    NOP_CMD = int(CellCmd.NOP)

    def _declare_ports(self) -> None:
        self.tree = TreeNetwork(self.n_cells)
        self._make_ports(self, self.word_bits)

    def _make_vectors(self, n_cells: int) -> CellVectors:
        return CellVectors(n_cells, self.word_bits)

    def _fold_vector(self, vec: CellVectors) -> None:
        fold_tree_outputs(vec, self.tree, self)

    def _apply_raw(self, vec: CellVectors) -> None:
        apply_vector_command(
            vec,
            CellCmd(self.cmd._value),
            self.broadcast._value,
            self.load_data._value,
            self.load_lower._value,
            self.load_upper._value,
        )

    def _seed_vectors(self, vec: CellVectors, cells: list) -> None:
        for i, cell in enumerate(cells):
            st = cell._state.value
            vec.data[i] = st.data
            vec.lower[i] = st.lower
            vec.upper[i] = st.upper
            vec.sel[i] = st.selected
            vec.saved[i] = st.saved


class VectorCellArray(_XiArrayMixin, VectorSmartArray):
    """All n cells as NumPy arrays; one seq process applies the command."""

    def _validate(self, n_cells: int) -> None:
        if n_cells - 1 >= SENTINEL:
            raise ValueError(f"n_cells must stay below the sentinel index {SENTINEL:#x}")

    def _apply_ports(self, vec: CellVectors) -> None:
        self._step(CellCmd(self.cmd.value))

    # -- the SIMD step (vectorised cell_step) -------------------------------------

    def _step(self, cmd: CellCmd) -> None:
        apply_vector_command(
            self.vec,
            cmd,
            self.broadcast.value,
            self.load_data.value,
            self.load_lower.value,
            self.load_upper.value,
        )

    def _make_executor(self) -> CellArrayExecutor:
        return CellArrayExecutor(
            self, self.vec, self.tree, [self._tree_fn, self._apply_fn]
        )

    # -- inspection ---------------------------------------------------------------

    def states(self) -> list[CellState]:
        """Snapshot as CellState objects (equivalence tests)."""
        return self.vec.states()


class StructuralCellArray(_XiArrayMixin, StructuralSmartArray):
    """One :class:`Cell` component per element plus a structural tree fold.

    Cycle-for-cycle equivalent to :class:`VectorCellArray`; used as the
    oracle in property tests and for small faithful simulations.  Under
    the compiled backend the whole column collapses into a
    :class:`CellArrayExecutor` — same observable behaviour, array-speed
    execution.
    """

    CELL_CLASS = Cell
    CELL_WIRES = ("cmd", "broadcast", "load_data", "load_lower", "load_upper")

    def _fold_cells(self, cells: list[Cell]) -> None:
        states = [c.state for c in cells]
        folded = fold_reduce([s.selected for s in states], [s.data for s in states])
        self.count.set(folded.count)
        self.leftmost_found.set(1 if folded.leftmost is not None else 0)
        if folded.leftmost is not None:
            s = states[folded.leftmost]
            self.leftmost_data.set(s.data)
            self.leftmost_lower.set(s.lower)
            self.leftmost_upper.set(s.upper)
        self.selected_unique.set(1 if folded.count == 1 else 0)
        self.selected_value.set(folded.any_value)

    def _make_executor(self) -> CellArrayExecutor:
        absorbed = [self._tree_fn] + [c._tick_fn for c in self.cells]
        return CellArrayExecutor(
            self,
            CellVectors(self.n_cells, self.word_bits),
            self.tree,
            absorbed,
            cells=self.cells,
        )

    def states(self) -> list[CellState]:
        return [c.state for c in self.cells]

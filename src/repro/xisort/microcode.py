"""Microcode for the ξ-sort core (thesis §3.3.3).

"The SIMD processor unit consists of a controller unit, a ROM storing
microcode programs controlling the SIMD cells and an array of the actual
SIMD cells."  This module defines the ξ-sort microprograms over the kit's
horizontal microinstruction word (:mod:`repro.smem.microcode`);
:mod:`repro.xisort.controller` executes them.

The microinstruction is *horizontal*: one word may simultaneously drive a
cell command, perform one small ALU operation on the controller's
temporaries, and stage an output — matching the thesis's few-cycle
operation latencies.  Every microprogram has a length independent of the
number of cells, which is the source of the paper's headline property:
"Each operation takes a fixed number of clock cycles with the FPGA; with a
CPU each operation requires an iteration that takes time proportional to
the number of data elements."

Besides the kit's controller-local atoms (``op_a``/``op_b``/``t``/``imm``),
ξ-sort contributes the fold-tree output atoms of its cell array:

========================  =====================================================
atom                      meaning
========================  =====================================================
``("count",)``            tree flag-count output
``("found",)``            tree leftmost-found output (0/1)
``("left_data",)``        data of the leftmost selected cell
``("left_interval",)``    packed ⟨lower,upper⟩ of the leftmost selected cell
``("sel_value",)``        single-selected-cell data retrieval
``("sel_unique",)``       1 when exactly one cell is selected
========================  =====================================================
"""

from __future__ import annotations

from typing import Optional

from ..smem.microcode import (
    OP_A,
    OP_B,
    AluOp,
    Atom,
    MicroInstr,
    format_microinstr,
    imm as _imm,
    pack_halves,
    t_ as _t,
    unpack_halves,
)
from ..smem.microcode import format_microcode as _kit_format_microcode
from .cell import INTERVAL_BITS, SENTINEL, CellCmd

__all__ = [
    "Atom", "AluOp", "MicroInstr", "MICROCODE",
    "XI_LOAD", "XI_SPLIT", "XI_FIND_PIVOT", "XI_READ_AT", "XI_STATUS",
    "XI_RESET", "XI_FIND_PIVOT_AT", "XI_WRITE_AT", "XI_RANK", "XI_COUNT_EQ",
    "XI_FLAG_FOUND", "pack_interval", "unpack_interval", "write_profile",
    "program_length", "format_microinstr", "format_microcode",
]

#: variety codes of the ξ-sort unit (the unit's "instruction set")
XI_LOAD = 0x01        # op_a = datum, op_b = n-1 (initial upper bound)
XI_SPLIT = 0x02       # op_a = pivot datum, op_b = packed pivot interval
XI_FIND_PIVOT = 0x03  # → dst1 = pivot datum, dst2 = packed interval, flags.found
XI_READ_AT = 0x04     # op_a = index → dst1 = datum, flags.found
XI_STATUS = 0x05      # → dst1 = number of imprecise cells
XI_RESET = 0x06       # clear the array to the empty state
XI_FIND_PIVOT_AT = 0x07  # op_a = k → pivot of the segment containing index k
XI_WRITE_AT = 0x08    # op_a = index, op_b = new datum → flags.found (smart update)
XI_RANK = 0x09        # op_a = value → dst1 = |{occupied cells with data < value}|
XI_COUNT_EQ = 0x0A    # op_a = value → dst1 = occurrences (membership in O(1))

#: flag bit the unit raises when FIND_PIVOT/READ_AT found a cell
XI_FLAG_FOUND = 0x01


def pack_interval(lower: int, upper: int) -> int:
    """⟨lower, upper⟩ → one word (lower in the high half)."""
    return pack_halves(lower, upper)


def unpack_interval(packed: int) -> tuple[int, int]:
    return unpack_halves(packed)


COUNT: Atom = ("count",)
FOUND: Atom = ("found",)
LEFT_DATA: Atom = ("left_data",)
LEFT_INTERVAL: Atom = ("left_interval",)
SEL_VALUE: Atom = ("sel_value",)
SEL_UNIQUE: Atom = ("sel_unique",)


def _load_program() -> tuple[MicroInstr, ...]:
    """Shift one datum in; its initial interval is ⟨0, op_b⟩ (op_b = n-1)."""
    return (
        MicroInstr(
            cell_cmd=CellCmd.LOAD,
            load_data=OP_A,
            load_lower=_imm(0),
            load_upper=OP_B,
            done=True,
        ),
    )


def _reset_program() -> tuple[MicroInstr, ...]:
    return (MicroInstr(cell_cmd=CellCmd.CLEAR, done=True),)


def _split_program() -> tuple[MicroInstr, ...]:
    """One χ-sort refinement step — constant length, any n.

    With pivot value v and pivot interval ⟨p, q⟩ (packed in op_b), and
    k = |{cells in segment ⟨p,q⟩ with data < v}|:

    * cells with data < v   → ⟨p, p+k−1⟩
    * cells with data > v   → ⟨p+k+1, q⟩
    * cells with data = v   → ⟨p+k, p+k⟩ (the pivot lands exactly)

    Emits k in dst1 (host-side progress/debug).
    """
    return (
        MicroInstr(alu=(0, AluOp.HI16, OP_B, OP_B)),                    # t0 = p
        MicroInstr(alu=(1, AluOp.LO16, OP_B, OP_B),
                   cell_cmd=CellCmd.SELECT_ALL),                        # t1 = q
        MicroInstr(cell_cmd=CellCmd.MATCH_LOWER_BOUND, broadcast=_t(0)),
        MicroInstr(cell_cmd=CellCmd.MATCH_UPPER_BOUND, broadcast=_t(1)),
        MicroInstr(cell_cmd=CellCmd.SAVE),
        MicroInstr(cell_cmd=CellCmd.MATCH_DATA_LT, broadcast=OP_A),
        MicroInstr(alu=(2, AluOp.MOV, COUNT, COUNT)),                   # t2 = k
        MicroInstr(alu=(3, AluOp.ADDM1, _t(0), _t(2))),                 # t3 = p+k-1
        MicroInstr(cell_cmd=CellCmd.SET_UPPER_BOUND, broadcast=_t(3)),
        MicroInstr(cell_cmd=CellCmd.RESTORE),
        MicroInstr(cell_cmd=CellCmd.MATCH_DATA_GT, broadcast=OP_A,
                   alu=(3, AluOp.ADDP1, _t(0), _t(2))),                 # t3 = p+k+1
        MicroInstr(cell_cmd=CellCmd.SET_LOWER_BOUND, broadcast=_t(3)),
        MicroInstr(cell_cmd=CellCmd.RESTORE,
                   alu=(3, AluOp.ADD, _t(0), _t(2))),                   # t3 = p+k
        MicroInstr(cell_cmd=CellCmd.MATCH_DATA_EQ, broadcast=OP_A),
        MicroInstr(cell_cmd=CellCmd.SET_BOUNDS, broadcast=_t(3)),
        MicroInstr(emit=(("data1", _t(2)),), done=True),
    )


def _find_pivot_program() -> tuple[MicroInstr, ...]:
    """Leftmost imprecise cell → (datum, packed interval, found flag)."""
    return (
        MicroInstr(cell_cmd=CellCmd.SELECT_ALL),
        MicroInstr(cell_cmd=CellCmd.SELECT_IMPRECISE),
        MicroInstr(
            emit=(
                ("data1", LEFT_DATA),
                ("data2", LEFT_INTERVAL),
                ("flags", FOUND),
            ),
            done=True,
        ),
    )


def _read_at_program() -> tuple[MicroInstr, ...]:
    """Retrieve the datum whose (precise) interval equals ⟨i, i⟩."""
    return (
        MicroInstr(cell_cmd=CellCmd.SELECT_ALL),
        MicroInstr(cell_cmd=CellCmd.MATCH_LOWER_BOUND, broadcast=OP_A),
        MicroInstr(cell_cmd=CellCmd.MATCH_UPPER_BOUND, broadcast=OP_A),
        MicroInstr(
            emit=(("data1", SEL_VALUE), ("flags", SEL_UNIQUE)),
            done=True,
        ),
    )


def _find_pivot_at_program() -> tuple[MicroInstr, ...]:
    """Pivot of the segment whose interval contains index k (selection path).

    Uses the interval-containment match commands (``MATCH_*_I`` in
    Fig. 3.12): among imprecise cells, keep those with lower ≤ k ≤ upper.
    All cells of that segment share one interval, so the leftmost is a
    valid pivot for the quickselect-style refinement.
    """
    return (
        MicroInstr(cell_cmd=CellCmd.SELECT_ALL),
        MicroInstr(cell_cmd=CellCmd.SELECT_IMPRECISE),
        MicroInstr(cell_cmd=CellCmd.MATCH_LOWER_BOUND_I, broadcast=OP_A),
        MicroInstr(cell_cmd=CellCmd.MATCH_UPPER_BOUND_I, broadcast=OP_A),
        MicroInstr(
            emit=(
                ("data1", LEFT_DATA),
                ("data2", LEFT_INTERVAL),
                ("flags", FOUND),
            ),
            done=True,
        ),
    )


def _write_at_program() -> tuple[MicroInstr, ...]:
    """Overwrite the datum at a (precise) index in place — the "smart
    memory" update path, built on the ``LOAD_SELECTED`` command of
    Fig. 3.12.  The found flag reports whether exactly one cell matched.

    Note the index interval of the written cell is unchanged: the caller is
    responsible for the ordering invariant (or for re-running splits after
    a batch of updates), exactly like storing through a pointer into a
    sorted array.
    """
    return (
        MicroInstr(cell_cmd=CellCmd.SELECT_ALL),
        MicroInstr(cell_cmd=CellCmd.MATCH_LOWER_BOUND, broadcast=OP_A),
        MicroInstr(cell_cmd=CellCmd.MATCH_UPPER_BOUND, broadcast=OP_A),
        MicroInstr(
            cell_cmd=CellCmd.LOAD_SELECTED,
            broadcast=OP_B,
            emit=(("flags", SEL_UNIQUE),),
            done=True,
        ),
    )


def _select_occupied() -> tuple[MicroInstr, ...]:
    """Select exactly the occupied cells.

    Empty cells hold the sentinel interval ⟨0xFFFF,0xFFFF⟩; occupied cells
    always have lower ≤ n−1 < 0xFFFF, so one containment match on the
    lower bound separates them.
    """
    return (
        MicroInstr(cell_cmd=CellCmd.SELECT_ALL),
        MicroInstr(cell_cmd=CellCmd.MATCH_LOWER_BOUND_I, broadcast=_imm(SENTINEL - 1)),
    )


def _rank_program() -> tuple[MicroInstr, ...]:
    """Order statistic in constant time: |{occupied cells with data < v}|.

    The data-parallel primitive the paper's "active data structures"
    argument is about — a software rank query walks all n elements; here
    every cell compares simultaneously and the tree counts.
    """
    return _select_occupied() + (
        MicroInstr(cell_cmd=CellCmd.MATCH_DATA_LT, broadcast=OP_A),
        MicroInstr(emit=(("data1", COUNT),), done=True),
    )


def _count_eq_program() -> tuple[MicroInstr, ...]:
    """Multiplicity of a value (membership test) in constant time."""
    return _select_occupied() + (
        MicroInstr(cell_cmd=CellCmd.MATCH_DATA_EQ, broadcast=OP_A),
        MicroInstr(emit=(("data1", COUNT),), done=True),
    )


def _status_program() -> tuple[MicroInstr, ...]:
    """Count of imprecise cells (0 ⇒ the array is fully sorted)."""
    return (
        MicroInstr(cell_cmd=CellCmd.SELECT_ALL),
        MicroInstr(cell_cmd=CellCmd.SELECT_IMPRECISE),
        MicroInstr(emit=(("data1", COUNT),), done=True),
    )


#: The microcode ROM image: variety code → program.
MICROCODE: dict[int, tuple[MicroInstr, ...]] = {
    XI_LOAD: _load_program(),
    XI_SPLIT: _split_program(),
    XI_FIND_PIVOT: _find_pivot_program(),
    XI_READ_AT: _read_at_program(),
    XI_STATUS: _status_program(),
    XI_RESET: _reset_program(),
    XI_FIND_PIVOT_AT: _find_pivot_at_program(),
    XI_WRITE_AT: _write_at_program(),
    XI_RANK: _rank_program(),
    XI_COUNT_EQ: _count_eq_program(),
}


def write_profile(variety: int) -> tuple[bool, bool, bool]:
    """Which destinations each ξ-sort instruction writes (decoder table)."""
    if variety in (XI_LOAD, XI_RESET):
        return False, False, False
    if variety in (XI_FIND_PIVOT, XI_FIND_PIVOT_AT):
        return True, True, True
    if variety in (XI_READ_AT,):
        return True, False, True
    if variety == XI_WRITE_AT:
        return False, False, True
    if variety in (XI_SPLIT, XI_STATUS, XI_RANK, XI_COUNT_EQ):
        return True, False, False
    # Unknown varieties claim nothing; the controller treats them as a
    # 1-cycle no-op so the unit cannot deadlock on a bad variety code.
    return False, False, False


def program_length(variety: int) -> int:
    """Microprogram length in cycles (constant in n — asserted by tests)."""
    prog = MICROCODE.get(variety)
    return len(prog) if prog is not None else 1


_VARIETY_NAMES = {
    XI_LOAD: "XI_LOAD",
    XI_SPLIT: "XI_SPLIT",
    XI_FIND_PIVOT: "XI_FIND_PIVOT",
    XI_READ_AT: "XI_READ_AT",
    XI_STATUS: "XI_STATUS",
    XI_RESET: "XI_RESET",
    XI_FIND_PIVOT_AT: "XI_FIND_PIVOT_AT",
    XI_WRITE_AT: "XI_WRITE_AT",
    XI_RANK: "XI_RANK",
    XI_COUNT_EQ: "XI_COUNT_EQ",
}


def format_microcode(varieties: Optional[list[int]] = None) -> str:
    """The whole ξ-sort ROM (or selected programs) as an annotated listing.

    Debugging/documentation aid — the view a microcode author works from.
    """
    return _kit_format_microcode(MICROCODE, varieties, names=_VARIETY_NAMES)

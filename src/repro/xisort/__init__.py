"""repro.xisort — the stateful χ-sort case study (paper §IV.B, thesis §3.3).

A smart-memory machine: an array of SIMD cells (datum + index interval +
selection/saved flags) under a logarithmic tree of fold/scan nodes, driven
by a microcode ROM and a two-state controller FSM, wrapped into the
framework by a functional-unit adapter.  Every operation takes a fixed
number of clock cycles regardless of the number of elements.
"""

from .adapter import XiSortUnit, xisort_factory
from .algorithm import XiSortAccelerator
from .cell import INTERVAL_BITS, SENTINEL, Cell, CellCmd, CellState, cell_step
from .cellarray import StructuralCellArray, VectorCellArray
from .controller import XiSortController
from .core import DirectXiSortMachine, XiSortCore
from .microcode import (
    MICROCODE,
    XI_FIND_PIVOT,
    XI_FIND_PIVOT_AT,
    XI_FLAG_FOUND,
    XI_LOAD,
    XI_READ_AT,
    XI_RESET,
    XI_SPLIT,
    XI_STATUS,
    XI_WRITE_AT,
    XI_RANK,
    XI_COUNT_EQ,
    MicroInstr,
    format_microcode,
    format_microinstr,
    pack_interval,
    program_length,
    unpack_interval,
    write_profile,
)
from .reference import (
    SoftwareXiSort,
    SwCell,
    quickselect_counted,
    quicksort_counted,
)
from .tree import NodeValue, TreeNetwork, fold_reduce, tree_depth, tree_node_count

__all__ = [
    "XiSortUnit",
    "xisort_factory",
    "XiSortAccelerator",
    "INTERVAL_BITS",
    "SENTINEL",
    "Cell",
    "CellCmd",
    "CellState",
    "cell_step",
    "StructuralCellArray",
    "VectorCellArray",
    "XiSortController",
    "DirectXiSortMachine",
    "XiSortCore",
    "MICROCODE",
    "XI_FIND_PIVOT",
    "XI_FIND_PIVOT_AT",
    "XI_FLAG_FOUND",
    "XI_LOAD",
    "XI_READ_AT",
    "XI_RESET",
    "XI_SPLIT",
    "XI_STATUS",
    "XI_WRITE_AT",
    "XI_RANK",
    "XI_COUNT_EQ",
    "MicroInstr",
    "format_microcode",
    "format_microinstr",
    "pack_interval",
    "program_length",
    "unpack_interval",
    "write_profile",
    "SoftwareXiSort",
    "SwCell",
    "quickselect_counted",
    "quicksort_counted",
    "NodeValue",
    "TreeNetwork",
    "fold_reduce",
    "tree_depth",
    "tree_node_count",
]

"""The ξ-sort controller — the kit's two-state FSM plus ξ-sort's buses.

The FSM, ROM flattening, ALU and controller-local atoms all live in
:class:`repro.smem.controller.MicroController`; this subclass contributes
what is ξ-sort-specific:

* the three load buses (``load_data``/``load_lower``/``load_upper``) of
  the shift-load command, driven alongside ``cmd``/``broadcast``;
* the fold-tree output atoms of the ξ-sort cell array (``count``,
  ``found``, ``left_data``, ``left_interval``, ``sel_value``,
  ``sel_unique``).
"""

from __future__ import annotations

from typing import Optional

from ..hdl import Component
from ..smem.controller import N_TEMPS, MicroController
from .cell import CellCmd
from .microcode import MICROCODE, Atom, MicroInstr, pack_interval

__all__ = ["XiSortController", "N_TEMPS"]


class XiSortController(MicroController):
    """Executes the ξ-sort microprograms against a ξ-sort cell array."""

    def __init__(
        self,
        name: str,
        array,  # VectorCellArray | StructuralCellArray
        word_bits: int = 32,
        parent: Optional[Component] = None,
    ):
        super().__init__(name, array, MICROCODE, word_bits, parent)

    # -- array bus driving --------------------------------------------------------

    def _drive_command(self, uinstr: MicroInstr) -> None:
        broadcast = 0
        load_data = 0
        load_lower = 0
        load_upper = 0
        if uinstr.broadcast is not None:
            broadcast = self._read_atom(uinstr.broadcast)
        if uinstr.load_data is not None:
            load_data = self._read_atom(uinstr.load_data)
        if uinstr.load_lower is not None:
            load_lower = self._read_atom(uinstr.load_lower)
        if uinstr.load_upper is not None:
            load_upper = self._read_atom(uinstr.load_upper)
        self.array.cmd.set(int(uinstr.cell_cmd))
        self.array.broadcast.set(broadcast)
        self.array.load_data.set(load_data)
        self.array.load_lower.set(load_lower)
        self.array.load_upper.set(load_upper)

    def _drive_idle(self) -> None:
        self.array.cmd.set(int(CellCmd.NOP))
        self.array.broadcast.set(0)
        self.array.load_data.set(0)
        self.array.load_lower.set(0)
        self.array.load_upper.set(0)

    # -- ξ-sort's fold-output atoms ----------------------------------------------

    def _read_port_atom(self, atom: Atom) -> int:
        kind = atom[0]
        if kind == "count":
            return self.array.count.value
        if kind == "found":
            return self.array.leftmost_found.value
        if kind == "left_data":
            return self.array.leftmost_data.value
        if kind == "left_interval":
            return pack_interval(
                self.array.leftmost_lower.value, self.array.leftmost_upper.value
            )
        if kind == "sel_value":
            return self.array.selected_value.value
        if kind == "sel_unique":
            return self.array.selected_unique.value
        # no super() here: the astpass inliner cannot resolve super() calls,
        # and this method is process-reachable via _read_atom.
        raise ValueError(f"unknown atom {atom!r}")

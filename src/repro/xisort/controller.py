"""The ξ-sort controller — the two-state FSM of thesis Fig. 3.10.

"The controller is implemented as a simple finite state machine having only
two states": *Idle* and *Run*.  A dispatch latches the operands and the
microprogram entry point; in Run the controller executes one horizontal
microinstruction per cycle — driving the cell-array command buses, its tiny
ALU and the output staging registers — and returns to Idle on the
program's ``done`` word, asserting ``completed`` for the adapter.
"""

from __future__ import annotations

from typing import Optional

from ..hdl import Component, Rom
from .cell import INTERVAL_BITS, CellCmd
from .cellarray import CellArrayPorts
from .microcode import MICROCODE, AluOp, Atom, MicroInstr, pack_interval

#: number of temporary registers in the controller datapath
N_TEMPS = 4


class XiSortController(Component):
    """Executes microprograms against a cell array."""

    def __init__(
        self,
        name: str,
        array,  # VectorCellArray | StructuralCellArray
        word_bits: int = 32,
        parent: Optional[Component] = None,
    ):
        super().__init__(name, parent)
        self.array = array
        self.word_bits = word_bits
        self._mask = (1 << word_bits) - 1

        # flatten the microcode ROM: variety → (base, length)
        image: list[MicroInstr] = []
        self._entry: dict[int, int] = {}
        for variety, program in sorted(MICROCODE.items()):
            self._entry[variety] = len(image)
            image.extend(program)
        # Invalid-variety handler: one cycle, zeroed outputs, done.  Keeps the
        # unit from ever wedging on a bad variety code.
        self._invalid_entry = len(image)
        image.append(
            MicroInstr(
                emit=(("data1", ("imm", 0)), ("data2", ("imm", 0)), ("flags", ("imm", 0))),
                done=True,
            )
        )
        self.rom = Rom("urom", image, parent=self)

        # -- control interface (driven by the adapter) ---------------------------
        self.start = self.signal("start", 1, 0)
        self.variety = self.signal("variety", 8, 0)
        self.op_a = self.signal("op_a", word_bits, 0)
        self.op_b = self.signal("op_b", word_bits, 0)
        #: Idle/Run state bit (Fig. 3.10); 0 = Idle
        self.running = self.reg("running", 1, 0)
        #: strobes for one cycle when a program finishes
        self.completed = self.signal("completed", 1, 0)
        # staged results
        self.out_data1 = self.reg("out_data1", word_bits, 0)
        self.out_data2 = self.reg("out_data2", word_bits, 0)
        self.out_flags = self.reg("out_flags", 8, 0)

        # -- internal state ----------------------------------------------------------
        self._pc = self.reg("pc", 16, 0)
        self._op_a = self.reg("lat_op_a", word_bits, 0)
        self._op_b = self.reg("lat_op_b", word_bits, 0)
        self._temps = [self.reg(f"t{i}", word_bits, 0) for i in range(N_TEMPS)]
        self._done_now = self.signal("done_now", 1, 0)

        @self.comb
        def _drive() -> None:
            running = self.running.value
            cmd = CellCmd.NOP
            broadcast = 0
            load_data = 0
            load_lower = 0
            load_upper = 0
            done = 0
            if running:
                uinstr: MicroInstr = self.rom.read(self._pc.value)
                cmd = uinstr.cell_cmd
                if uinstr.broadcast is not None:
                    broadcast = self._read_atom(uinstr.broadcast)
                if uinstr.load_data is not None:
                    load_data = self._read_atom(uinstr.load_data)
                if uinstr.load_lower is not None:
                    load_lower = self._read_atom(uinstr.load_lower)
                if uinstr.load_upper is not None:
                    load_upper = self._read_atom(uinstr.load_upper)
                done = 1 if uinstr.done else 0
            self.array.cmd.set(int(cmd))
            self.array.broadcast.set(broadcast)
            self.array.load_data.set(load_data)
            self.array.load_lower.set(load_lower)
            self.array.load_upper.set(load_upper)
            self._done_now.set(done)
            self.completed.set(done)

        @self.seq(pure=True)
        def _tick() -> None:
            if self.running.value:
                uinstr: MicroInstr = self.rom.read(self._pc.value)
                if uinstr.alu is not None:
                    dst, op, x_atom, y_atom = uinstr.alu
                    self._temps[dst].nxt = self._alu(op, x_atom, y_atom)
                for field_name, atom in uinstr.emit:
                    value = self._read_atom(atom)
                    if field_name == "data1":
                        self.out_data1.nxt = value
                    elif field_name == "data2":
                        self.out_data2.nxt = value
                    elif field_name == "flags":
                        self.out_flags.nxt = value
                    else:  # pragma: no cover - microcode is static
                        raise ValueError(f"unknown emit field {field_name!r}")
                if uinstr.done:
                    self.running.nxt = 0
                else:
                    self._pc.nxt = self._pc.value + 1
            elif self.start.value:
                variety = self.variety.value
                base = self._entry.get(variety, self._invalid_entry)
                self._pc.nxt = base
                self._op_a.nxt = self.op_a.value
                self._op_b.nxt = self.op_b.value
                self.running.nxt = 1

    # -- atom / ALU evaluation ---------------------------------------------------------

    def _read_atom(self, atom: Atom) -> int:
        kind = atom[0]
        if kind == "op_a":
            return self._op_a.value
        if kind == "op_b":
            return self._op_b.value
        if kind == "t":
            return self._temps[atom[1]].value
        if kind == "imm":
            return atom[1]
        if kind == "count":
            return self.array.count.value
        if kind == "found":
            return self.array.leftmost_found.value
        if kind == "left_data":
            return self.array.leftmost_data.value
        if kind == "left_interval":
            return pack_interval(
                self.array.leftmost_lower.value, self.array.leftmost_upper.value
            )
        if kind == "sel_value":
            return self.array.selected_value.value
        if kind == "sel_unique":
            return self.array.selected_unique.value
        raise ValueError(f"unknown atom {atom!r}")

    def _alu(self, op: str, x_atom: Atom, y_atom: Atom) -> int:
        x = self._read_atom(x_atom)
        y = self._read_atom(y_atom)
        if op == AluOp.MOV:
            result = x
        elif op == AluOp.ADD:
            result = x + y
        elif op == AluOp.ADDP1:
            result = x + y + 1
        elif op == AluOp.ADDM1:
            result = x + y - 1
        elif op == AluOp.HI16:
            result = (x >> INTERVAL_BITS) & ((1 << INTERVAL_BITS) - 1)
        elif op == AluOp.LO16:
            result = x & ((1 << INTERVAL_BITS) - 1)
        elif op == AluOp.PACK:
            result = pack_interval(x, y)
        else:
            raise ValueError(f"unknown ALU op {op!r}")
        return result & self._mask

"""The ξ-sort core: controller + microcode ROM + SIMD cell array.

Thesis §3.3.3: "The SIMD processor unit consists of a controller unit, a
ROM storing microcode programs controlling the SIMD cells and an array of
the actual SIMD cells."  :class:`XiSortCore` is the smart-memory kit's
:class:`~repro.smem.core.SmartMemoryCore` instantiated with the ξ-sort
array and controller; it exposes the controller's start/variety/operand
interface — the boundary the functional-unit adapter (thesis Fig. 3.13)
attaches to.

The core can also be driven *directly* (without the coprocessor framework)
via :class:`DirectXiSortMachine`, which is how the fixed-cycles-per-
operation benchmarks measure the machine in isolation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..smem.core import ArrayKind, DirectMachine, SmartMemoryCore
from .cellarray import StructuralCellArray, VectorCellArray
from .controller import XiSortController
from .microcode import (
    XI_FIND_PIVOT,
    XI_FIND_PIVOT_AT,
    XI_WRITE_AT,
    XI_RANK,
    XI_COUNT_EQ,
    XI_LOAD,
    XI_READ_AT,
    XI_RESET,
    XI_SPLIT,
    XI_STATUS,
    unpack_interval,
)

__all__ = ["ArrayKind", "XiSortCore", "DirectXiSortMachine"]


class XiSortCore(SmartMemoryCore):
    """Controller + cell array, ready to adapt into the framework."""

    vector_array_class = VectorCellArray
    structural_array_class = StructuralCellArray
    controller_class = XiSortController


class DirectXiSortMachine(DirectMachine):
    """Drives a bare ξ-sort core cycle-accurately, without the RTM.

    Used by unit tests and by the benchmarks that isolate the smart-memory
    machine's fixed-cycle behaviour from message/pipeline overhead.
    """

    core_class = XiSortCore
    core_name = "xicore"

    # -- high-level operations ------------------------------------------------------

    def reset_array(self) -> int:
        return self.op(XI_RESET)["cycles"]

    def load(self, values: Sequence[int]) -> int:
        """Shift in all values (last ends up in cell 0); returns cycles."""
        total = 0
        n = len(values)
        for v in values:
            total += self.op(XI_LOAD, v, n - 1)["cycles"]
        return total

    def find_pivot(self) -> Optional[tuple[int, int, int]]:
        """(datum, lower, upper) of the leftmost imprecise cell, or None."""
        out = self.op(XI_FIND_PIVOT)
        if not out["flags"] & 0x01:
            return None
        lo, hi = unpack_interval(out["data2"])
        return out["data1"], lo, hi

    def split(self, pivot: int, lower: int, upper: int) -> int:
        """One refinement step; returns k (elements below the pivot)."""
        from .microcode import pack_interval

        return self.op(XI_SPLIT, pivot, pack_interval(lower, upper))["data1"]

    def read_at(self, index: int) -> Optional[int]:
        out = self.op(XI_READ_AT, index)
        return out["data1"] if out["flags"] & 0x01 else None

    def imprecise_count(self) -> int:
        return self.op(XI_STATUS)["data1"]

    def rank(self, value: int) -> int:
        """|{occupied cells with data < value}| — a constant-time order
        statistic over the whole smart memory."""
        return self.op(XI_RANK, value)["data1"]

    def count_eq(self, value: int) -> int:
        """Multiplicity of ``value`` (0 = absent) in constant time."""
        return self.op(XI_COUNT_EQ, value)["data1"]

    def write_at(self, index: int, value: int) -> bool:
        """Overwrite the datum at a precise index; True when a cell matched.

        The smart-memory update path: the interval is untouched, so the
        caller owns the ordering invariant afterwards.
        """
        out = self.op(XI_WRITE_AT, index, value)
        return bool(out["flags"] & 0x01)

    def sort(self, values: Sequence[int]) -> list[int]:
        """Full χ-sort of distinct values; returns them in ascending order."""
        self.reset_array()
        self.load(values)
        while True:
            pivot = self.find_pivot()
            if pivot is None:
                break
            self.split(*pivot)
        return [self.read_at(i) for i in range(len(values))]

    def find_pivot_at(self, k: int) -> Optional[tuple[int, int, int]]:
        """Pivot of the segment whose interval contains index k (or None)."""
        out = self.op(XI_FIND_PIVOT_AT, k)
        if not out["flags"] & 0x01:
            return None
        lo, hi = unpack_interval(out["data2"])
        return out["data1"], lo, hi

    def select(self, values: Sequence[int], k: int) -> int:
        """k-th smallest (0-based) via interval refinement along one path.

        Only the segment containing k is ever split, so the expected number
        of refinement rounds is O(log n) — the quickselect analogue.
        """
        self.reset_array()
        self.load(values)
        while True:
            out = self.op(XI_READ_AT, k)
            if out["flags"] & 0x01:
                return out["data1"]
            pivot = self.find_pivot_at(k)
            if pivot is None:
                raise RuntimeError("no imprecise interval contains k; bad state")
            self.split(*pivot)

"""The ξ-sort core: controller + microcode ROM + SIMD cell array.

Thesis §3.3.3: "The SIMD processor unit consists of a controller unit, a
ROM storing microcode programs controlling the SIMD cells and an array of
the actual SIMD cells."  :class:`XiSortCore` wires those three together and
exposes the controller's start/variety/operand interface — the boundary the
functional-unit adapter (thesis Fig. 3.13) attaches to.

The core can also be driven *directly* (without the coprocessor framework)
via :class:`DirectXiSortMachine`, which is how the fixed-cycles-per-
operation benchmarks measure the machine in isolation.
"""

from __future__ import annotations

from typing import Literal, Optional, Sequence

from ..hdl import Component, Simulator
from .cellarray import StructuralCellArray, VectorCellArray
from .controller import XiSortController
from .microcode import (
    XI_FIND_PIVOT,
    XI_FIND_PIVOT_AT,
    XI_WRITE_AT,
    XI_RANK,
    XI_COUNT_EQ,
    XI_LOAD,
    XI_READ_AT,
    XI_RESET,
    XI_SPLIT,
    XI_STATUS,
    unpack_interval,
)

ArrayKind = Literal["vector", "structural"]


class XiSortCore(Component):
    """Controller + cell array, ready to adapt into the framework."""

    def __init__(
        self,
        name: str,
        n_cells: int,
        word_bits: int = 32,
        array_kind: ArrayKind = "vector",
        parent: Optional[Component] = None,
    ):
        super().__init__(name, parent)
        self.n_cells = n_cells
        self.word_bits = word_bits
        if array_kind == "vector":
            self.array = VectorCellArray("cells", n_cells, word_bits, parent=self)
        elif array_kind == "structural":
            self.array = StructuralCellArray("cells", n_cells, word_bits, parent=self)
        else:
            raise ValueError(f"unknown array kind {array_kind!r}")
        self.controller = XiSortController("ctrl", self.array, word_bits, parent=self)

    # convenient aliases to the controller interface
    @property
    def start(self):
        return self.controller.start

    @property
    def variety(self):
        return self.controller.variety

    @property
    def op_a(self):
        return self.controller.op_a

    @property
    def op_b(self):
        return self.controller.op_b

    @property
    def running(self):
        return self.controller.running

    @property
    def completed(self):
        return self.controller.completed


class DirectXiSortMachine:
    """Drives a bare ξ-sort core cycle-accurately, without the RTM.

    Used by unit tests and by the benchmarks that isolate the smart-memory
    machine's fixed-cycle behaviour from message/pipeline overhead.
    """

    def __init__(
        self,
        n_cells: int,
        word_bits: int = 32,
        array_kind: ArrayKind = "vector",
        backend: Optional[str] = None,
        scheduler: str = "event",
        wheel: bool = True,
    ):
        self.core = XiSortCore("xicore", n_cells, word_bits, array_kind=array_kind)
        self.sim = Simulator(self.core, scheduler=scheduler, wheel=wheel,
                             backend=backend)
        self.sim.reset()

    @property
    def cycles(self) -> int:
        return self.sim.now

    def op(self, variety: int, op_a: int = 0, op_b: int = 0, max_cycles: int = 1000) -> dict:
        """Run one microprogram to completion; returns outputs + cycle cost."""
        core = self.core
        start_cycle = self.sim.now
        core.variety.force(variety)
        core.op_a.force(op_a)
        core.op_b.force(op_b)
        core.start.force(1)
        self.sim.step()  # the start edge
        core.start.force(0)
        # run until the done strobe
        self.sim.settle()
        guard = 0
        while not core.completed.value:
            self.sim.step()
            self.sim.settle()
            guard += 1
            if guard > max_cycles:
                raise RuntimeError(f"microprogram {variety:#x} did not complete")
        self.sim.step()  # commit the done word (outputs latch here)
        ctrl = core.controller
        return {
            "data1": ctrl.out_data1.value,
            "data2": ctrl.out_data2.value,
            "flags": ctrl.out_flags.value,
            "cycles": self.sim.now - start_cycle,
        }

    # -- high-level operations ------------------------------------------------------

    def reset_array(self) -> int:
        return self.op(XI_RESET)["cycles"]

    def load(self, values: Sequence[int]) -> int:
        """Shift in all values (last ends up in cell 0); returns cycles."""
        total = 0
        n = len(values)
        for v in values:
            total += self.op(XI_LOAD, v, n - 1)["cycles"]
        return total

    def find_pivot(self) -> Optional[tuple[int, int, int]]:
        """(datum, lower, upper) of the leftmost imprecise cell, or None."""
        out = self.op(XI_FIND_PIVOT)
        if not out["flags"] & 0x01:
            return None
        lo, hi = unpack_interval(out["data2"])
        return out["data1"], lo, hi

    def split(self, pivot: int, lower: int, upper: int) -> int:
        """One refinement step; returns k (elements below the pivot)."""
        from .microcode import pack_interval

        return self.op(XI_SPLIT, pivot, pack_interval(lower, upper))["data1"]

    def read_at(self, index: int) -> Optional[int]:
        out = self.op(XI_READ_AT, index)
        return out["data1"] if out["flags"] & 0x01 else None

    def imprecise_count(self) -> int:
        return self.op(XI_STATUS)["data1"]

    def rank(self, value: int) -> int:
        """|{occupied cells with data < value}| — a constant-time order
        statistic over the whole smart memory."""
        return self.op(XI_RANK, value)["data1"]

    def count_eq(self, value: int) -> int:
        """Multiplicity of ``value`` (0 = absent) in constant time."""
        return self.op(XI_COUNT_EQ, value)["data1"]

    def write_at(self, index: int, value: int) -> bool:
        """Overwrite the datum at a precise index; True when a cell matched.

        The smart-memory update path: the interval is untouched, so the
        caller owns the ordering invariant afterwards.
        """
        out = self.op(XI_WRITE_AT, index, value)
        return bool(out["flags"] & 0x01)

    def sort(self, values: Sequence[int]) -> list[int]:
        """Full χ-sort of distinct values; returns them in ascending order."""
        self.reset_array()
        self.load(values)
        while True:
            pivot = self.find_pivot()
            if pivot is None:
                break
            self.split(*pivot)
        return [self.read_at(i) for i in range(len(values))]

    def find_pivot_at(self, k: int) -> Optional[tuple[int, int, int]]:
        """Pivot of the segment whose interval contains index k (or None)."""
        out = self.op(XI_FIND_PIVOT_AT, k)
        if not out["flags"] & 0x01:
            return None
        lo, hi = unpack_interval(out["data2"])
        return out["data1"], lo, hi

    def select(self, values: Sequence[int], k: int) -> int:
        """k-th smallest (0-based) via interval refinement along one path.

        Only the segment containing k is ever split, so the expected number
        of refinement rounds is O(log n) — the quickselect analogue.
        """
        self.reset_array()
        self.load(values)
        while True:
            out = self.op(XI_READ_AT, k)
            if out["flags"] & 0x01:
                return out["data1"]
            pivot = self.find_pivot_at(k)
            if pivot is None:
                raise RuntimeError("no imprecise interval contains k; bad state")
            self.split(*pivot)

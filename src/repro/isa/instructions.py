"""Convenience constructors for every instruction the framework defines.

These builders are what the host-side driver and the assembler use; they
keep the field-placement conventions (e.g. "the negation instruction is
applied to the second operand only, for reasons of logic compactness",
thesis §3.2.2) in one place.
"""

from __future__ import annotations

from .encoding import Instruction
from .opcodes import FP_FMT64, FP_NEGATE, ArithOp, LogicOp, Opcode


# -- framework primitives -----------------------------------------------------

def nop() -> Instruction:
    return Instruction(Opcode.NOP)


def halt() -> Instruction:
    return Instruction(Opcode.HALT)


def copy(dst: int, src: int) -> Instruction:
    return Instruction(Opcode.COPY, dst1=dst, src1=src)


def cpflag(dst_flag: int, src_flag: int) -> Instruction:
    return Instruction(Opcode.CPFLAG, dst_flag=dst_flag, src_flag=src_flag)


def get(src: int, tag: int = 0) -> Instruction:
    """Send the contents of register ``src`` back to the host, labelled ``tag``."""
    return Instruction(Opcode.GET, variety=tag, src1=src)


def getf(src_flag: int, tag: int = 0) -> Instruction:
    """Send the flag vector ``src_flag`` back to the host, labelled ``tag``."""
    return Instruction(Opcode.GETF, variety=tag, src_flag=src_flag)


def loadi(dst: int, imm: int) -> Instruction:
    return Instruction(Opcode.LOADI, dst1=dst, imm=imm & 0xFFFF_FFFF)


def loadis(dst: int, imm: int) -> Instruction:
    """Shift ``dst`` left 32 bits and OR in ``imm`` (builds >32-bit constants)."""
    return Instruction(Opcode.LOADIS, dst1=dst, imm=imm & 0xFFFF_FFFF)


def fence() -> Instruction:
    return Instruction(Opcode.FENCE)


def setf(dst_flag: int, value: int) -> Instruction:
    return Instruction(Opcode.SETF, variety=value & 0xFF, dst_flag=dst_flag)


# -- arithmetic unit (thesis Table 3.1) ----------------------------------------

def _arith(op: ArithOp, dst: int, a: int, b: int, dst_flag: int, src_flag: int) -> Instruction:
    return Instruction(
        Opcode.ARITH,
        variety=int(op),
        dst_flag=dst_flag,
        dst1=dst,
        src1=a,
        src2=b,
        src_flag=src_flag,
    )


def add(dst: int, a: int, b: int, dst_flag: int = 0) -> Instruction:
    return _arith(ArithOp.ADD, dst, a, b, dst_flag, 0)


def adc(dst: int, a: int, b: int, src_flag: int, dst_flag: int = 0) -> Instruction:
    """Add with carry taken from flag register ``src_flag`` (multi-word chains)."""
    return _arith(ArithOp.ADC, dst, a, b, dst_flag, src_flag)


def sub(dst: int, a: int, b: int, dst_flag: int = 0) -> Instruction:
    return _arith(ArithOp.SUB, dst, a, b, dst_flag, 0)


def sbb(dst: int, a: int, b: int, src_flag: int, dst_flag: int = 0) -> Instruction:
    return _arith(ArithOp.SBB, dst, a, b, dst_flag, src_flag)


def inc(dst: int, a: int, dst_flag: int = 0) -> Instruction:
    return _arith(ArithOp.INC, dst, a, 0, dst_flag, 0)


def dec(dst: int, a: int, dst_flag: int = 0) -> Instruction:
    return _arith(ArithOp.DEC, dst, a, 0, dst_flag, 0)


def neg(dst: int, b: int, dst_flag: int = 0) -> Instruction:
    """Two's complement negation — applied to the *second* operand (Table 3.1)."""
    return _arith(ArithOp.NEG, dst, 0, b, dst_flag, 0)


def cmp(a: int, b: int, dst_flag: int = 0) -> Instruction:
    return _arith(ArithOp.CMP, 0, a, b, dst_flag, 0)


def cmpb(a: int, b: int, src_flag: int, dst_flag: int = 0) -> Instruction:
    return _arith(ArithOp.CMPB, 0, a, b, dst_flag, src_flag)


# -- logic unit (thesis Table 3.2) ---------------------------------------------

def _logic(op: LogicOp, dst: int, a: int, b: int, dst_flag: int) -> Instruction:
    return Instruction(
        Opcode.LOGIC, variety=int(op), dst_flag=dst_flag, dst1=dst, src1=a, src2=b
    )


def and_(dst: int, a: int, b: int, dst_flag: int = 0) -> Instruction:
    return _logic(LogicOp.AND, dst, a, b, dst_flag)


def or_(dst: int, a: int, b: int, dst_flag: int = 0) -> Instruction:
    return _logic(LogicOp.OR, dst, a, b, dst_flag)


def xor(dst: int, a: int, b: int, dst_flag: int = 0) -> Instruction:
    return _logic(LogicOp.XOR, dst, a, b, dst_flag)


def not_(dst: int, a: int, dst_flag: int = 0) -> Instruction:
    return _logic(LogicOp.NOT, dst, a, 0, dst_flag)


def nand(dst: int, a: int, b: int, dst_flag: int = 0) -> Instruction:
    return _logic(LogicOp.NAND, dst, a, b, dst_flag)


def nor(dst: int, a: int, b: int, dst_flag: int = 0) -> Instruction:
    return _logic(LogicOp.NOR, dst, a, b, dst_flag)


def xnor(dst: int, a: int, b: int, dst_flag: int = 0) -> Instruction:
    return _logic(LogicOp.XNOR, dst, a, b, dst_flag)


def andn(dst: int, a: int, b: int, dst_flag: int = 0) -> Instruction:
    return _logic(LogicOp.ANDN, dst, a, b, dst_flag)


def orn(dst: int, a: int, b: int, dst_flag: int = 0) -> Instruction:
    return _logic(LogicOp.ORN, dst, a, b, dst_flag)


def pass_(dst: int, a: int, dst_flag: int = 0) -> Instruction:
    return _logic(LogicOp.PASS, dst, a, 0, dst_flag)


# -- floating-point units (pipelined FP family) ----------------------------------

def _fp_variety(fmt64: bool, negate: bool = False) -> int:
    return (FP_FMT64 if fmt64 else 0) | (FP_NEGATE if negate else 0)


def fadd(dst: int, a: int, b: int, dst_flag: int = 0, fmt64: bool = False) -> Instruction:
    return Instruction(
        Opcode.FPADD, variety=_fp_variety(fmt64), dst_flag=dst_flag,
        dst1=dst, src1=a, src2=b,
    )


def fsub(dst: int, a: int, b: int, dst_flag: int = 0, fmt64: bool = False) -> Instruction:
    return Instruction(
        Opcode.FPADD, variety=_fp_variety(fmt64, negate=True), dst_flag=dst_flag,
        dst1=dst, src1=a, src2=b,
    )


def fmul(dst: int, a: int, b: int, dst_flag: int = 0, fmt64: bool = False) -> Instruction:
    return Instruction(
        Opcode.FPMUL, variety=_fp_variety(fmt64), dst_flag=dst_flag,
        dst1=dst, src1=a, src2=b,
    )


def fmadd(acc: int, a: int, b: int, dst_flag: int = 0, fmt64: bool = False) -> Instruction:
    """Fused multiply-add: ``R[acc] := R[a]*R[b] + R[acc]`` (single rounding)."""
    return Instruction(
        Opcode.FPFMA, variety=_fp_variety(fmt64), dst_flag=dst_flag,
        dst1=acc, src1=a, src2=b,
    )


def fnmadd(acc: int, a: int, b: int, dst_flag: int = 0, fmt64: bool = False) -> Instruction:
    """Negated-product FMA: ``R[acc] := R[acc] - R[a]*R[b]``."""
    return Instruction(
        Opcode.FPFMA, variety=_fp_variety(fmt64, negate=True), dst_flag=dst_flag,
        dst1=acc, src1=a, src2=b,
    )


# -- generic functional-unit dispatch -------------------------------------------

def dispatch(
    unit: int,
    variety: int,
    dst1: int = 0,
    dst2: int = 0,
    src1: int = 0,
    src2: int = 0,
    dst_flag: int = 0,
    src_flag: int = 0,
) -> Instruction:
    """Build a dispatch to an arbitrary functional-unit opcode.

    This is the escape hatch user-defined units (and the ξ-sort adapter)
    use; ``unit`` is the function code configured in the FU table.
    """
    return Instruction(
        opcode=unit,
        variety=variety,
        dst_flag=dst_flag,
        dst1=dst1,
        dst2=dst2,
        src1=src1,
        src2=src2,
        src_flag=src_flag,
    )

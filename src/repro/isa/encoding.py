"""Encode/decode between :class:`Instruction` objects and 64-bit words."""

from __future__ import annotations

from dataclasses import dataclass, replace

from . import fields
from .fields import (
    DST1,
    DST2,
    DST_FLAG,
    IMM32,
    OPCODE,
    SRC1,
    SRC2,
    SRC_FLAG,
    VARIETY,
)
from .opcodes import IMMEDIATE_OPCODES, Opcode


class EncodingError(ValueError):
    """An instruction could not be encoded or decoded."""


@dataclass(frozen=True)
class Instruction:
    """A decoded RTM instruction.

    ``imm`` is only meaningful for the immediate-format opcodes
    (``LOADI``/``LOADIS``); for those, dst2/src1/src2/src_flag must be zero
    since their bits are occupied by the immediate.
    """

    opcode: int
    variety: int = 0
    dst_flag: int = 0
    dst1: int = 0
    dst2: int = 0
    src1: int = 0
    src2: int = 0
    src_flag: int = 0
    imm: int = 0

    @property
    def is_immediate(self) -> bool:
        return self.opcode in IMMEDIATE_OPCODES

    @property
    def is_primitive(self) -> bool:
        return self.opcode < fields_first_unit_opcode()

    @property
    def unit_code(self) -> int:
        """The functional-unit selector for dispatched instructions."""
        return self.opcode

    def with_variety(self, variety: int) -> "Instruction":
        return replace(self, variety=variety)

    def mnemonic_hint(self) -> str:
        try:
            return Opcode(self.opcode).name
        except ValueError:
            return f"UNIT_{self.opcode:#04x}"


def fields_first_unit_opcode() -> int:
    from .opcodes import FIRST_UNIT_OPCODE

    return FIRST_UNIT_OPCODE


def _check_range(name: str, value: int, width: int) -> None:
    if not 0 <= value < (1 << width):
        raise EncodingError(f"{name} value {value} does not fit in {width} bits")


def encode(instr: Instruction) -> int:
    """Pack an :class:`Instruction` into its 64-bit word."""
    _check_range("opcode", instr.opcode, OPCODE.width)
    _check_range("variety", instr.variety, VARIETY.width)
    _check_range("dst_flag", instr.dst_flag, DST_FLAG.width)
    _check_range("dst1", instr.dst1, DST1.width)
    word = 0
    word = OPCODE.insert(word, instr.opcode)
    word = VARIETY.insert(word, instr.variety)
    word = DST_FLAG.insert(word, instr.dst_flag)
    word = DST1.insert(word, instr.dst1)
    if instr.is_immediate:
        if instr.dst2 or instr.src1 or instr.src2 or instr.src_flag:
            raise EncodingError(
                "immediate-format instruction cannot carry dst2/src1/src2/src_flag"
            )
        _check_range("imm", instr.imm, IMM32.width)
        word = IMM32.insert(word, instr.imm)
    else:
        if instr.imm:
            raise EncodingError("register-format instruction cannot carry an immediate")
        _check_range("dst2", instr.dst2, DST2.width)
        _check_range("src1", instr.src1, SRC1.width)
        _check_range("src2", instr.src2, SRC2.width)
        _check_range("src_flag", instr.src_flag, SRC_FLAG.width)
        word = DST2.insert(word, instr.dst2)
        word = SRC1.insert(word, instr.src1)
        word = SRC2.insert(word, instr.src2)
        word = SRC_FLAG.insert(word, instr.src_flag)
    return word


def decode(word: int) -> Instruction:
    """Unpack a 64-bit instruction word."""
    if not 0 <= word < (1 << fields.WORD_BITS):
        raise EncodingError(f"instruction word {word:#x} exceeds 64 bits")
    opcode = OPCODE.extract(word)
    variety = VARIETY.extract(word)
    dst_flag = DST_FLAG.extract(word)
    dst1 = DST1.extract(word)
    if opcode in IMMEDIATE_OPCODES:
        return Instruction(
            opcode=opcode,
            variety=variety,
            dst_flag=dst_flag,
            dst1=dst1,
            imm=IMM32.extract(word),
        )
    return Instruction(
        opcode=opcode,
        variety=variety,
        dst_flag=dst_flag,
        dst1=dst1,
        dst2=DST2.extract(word),
        src1=SRC1.extract(word),
        src2=SRC2.extract(word),
        src_flag=SRC_FLAG.extract(word),
    )

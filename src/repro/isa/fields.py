"""Bit-level layout of the 64-bit RTM instruction word.

The paper fixes the instruction word at 64 bits and shows (Fig. 7 / thesis
Table 3.1) that an instruction names a function code, a variety with
datapath-steering modifier bits, up to three source registers (two data +
one flag) and up to two destination registers plus a destination flag
register.  The exact bit positions in the published figure are not fully
legible, so this module documents our reconstruction — chosen to hold every
field the paper requires at byte-aligned positions:

===========  =========  ====================================================
bits         field      meaning
===========  =========  ====================================================
``[63:56]``  opcode     function code; ``0x00–0x0F`` are framework
                        primitives executed in the RTM pipeline, values
                        ``>= 0x10`` select a functional unit (the thesis
                        lists the arithmetic unit under function code 16)
``[55:48]``  variety    8-bit variety code forwarded verbatim to the
                        functional unit (``variety_code[7..0]`` in Fig. 5)
``[47:40]``  dst_flag   destination flag register
``[39:32]``  dst1       first destination register
``[31:24]``  dst2       second destination register
``[23:16]``  src1       first source register
``[15:8]``   src2       second source register
``[7:0]``    src_flag   source flag register
===========  =========  ====================================================

Immediate-format instructions (``LOADI``/``LOADIS``) reuse ``[31:0]`` as a
32-bit immediate, overlapping dst2/src1/src2/src_flag.
"""

from __future__ import annotations

from dataclasses import dataclass

WORD_BITS = 64

OPCODE_BITS = 8
VARIETY_BITS = 8
REGFIELD_BITS = 8
IMM_BITS = 32

#: Maximum register index addressable by an instruction field.
MAX_REG_INDEX = (1 << REGFIELD_BITS) - 1


@dataclass(frozen=True)
class Field:
    """An inclusive bit slice ``[hi:lo]`` of the instruction word."""

    name: str
    hi: int
    lo: int

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    def extract(self, word: int) -> int:
        return (word >> self.lo) & self.mask

    def insert(self, word: int, value: int) -> int:
        if value & ~self.mask:
            raise ValueError(
                f"value {value:#x} does not fit in field {self.name} ({self.width} bits)"
            )
        return (word & ~(self.mask << self.lo)) | ((value & self.mask) << self.lo)


OPCODE = Field("opcode", 63, 56)
VARIETY = Field("variety", 55, 48)
DST_FLAG = Field("dst_flag", 47, 40)
DST1 = Field("dst1", 39, 32)
DST2 = Field("dst2", 31, 24)
SRC1 = Field("src1", 23, 16)
SRC2 = Field("src2", 15, 8)
SRC_FLAG = Field("src_flag", 7, 0)
IMM32 = Field("imm32", 31, 0)

REGISTER_FORMAT_FIELDS = (OPCODE, VARIETY, DST_FLAG, DST1, DST2, SRC1, SRC2, SRC_FLAG)
IMMEDIATE_FORMAT_FIELDS = (OPCODE, VARIETY, DST_FLAG, DST1, IMM32)

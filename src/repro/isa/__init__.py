"""repro.isa — the RTM instruction set: encodings, builders, (dis)assembler.

Reproduces Fig. 7 and thesis Tables 3.1/3.2: a 64-bit instruction word with
a function code, an 8-bit variety code steering the functional unit's
datapath, up to three source registers and up to two destinations plus a
destination flag register.
"""

from . import instructions
from .assembler import AssemblerError, assemble, assemble_line
from .disassembler import disassemble, disassemble_program, disassemble_word
from .encoding import EncodingError, Instruction, decode, encode
from .fields import (
    DST1,
    DST2,
    DST_FLAG,
    IMM32,
    MAX_REG_INDEX,
    OPCODE,
    SRC1,
    SRC2,
    SRC_FLAG,
    VARIETY,
    WORD_BITS,
)
from .opcodes import (
    ARITH_COMPL_SECOND,
    ARITH_FIRST_ZERO,
    ARITH_FIXED_CARRY,
    ARITH_OUTPUT_DATA,
    ARITH_SECOND_ZERO,
    ARITH_USE_CARRY,
    FIRST_UNIT_OPCODE,
    FLAG_BITS,
    FP_FMT64,
    FP_NEGATE,
    FLAG_CARRY,
    FLAG_ERROR,
    FLAG_NEGATIVE,
    FLAG_OVERFLOW,
    FLAG_PARITY,
    FLAG_ZERO,
    IMMEDIATE_OPCODES,
    ArithOp,
    LogicOp,
    Opcode,
)

__all__ = [
    "instructions",
    "AssemblerError",
    "assemble",
    "assemble_line",
    "disassemble",
    "disassemble_program",
    "disassemble_word",
    "EncodingError",
    "Instruction",
    "decode",
    "encode",
    "DST1",
    "DST2",
    "DST_FLAG",
    "IMM32",
    "MAX_REG_INDEX",
    "OPCODE",
    "SRC1",
    "SRC2",
    "SRC_FLAG",
    "VARIETY",
    "WORD_BITS",
    "ARITH_COMPL_SECOND",
    "ARITH_FIRST_ZERO",
    "ARITH_FIXED_CARRY",
    "ARITH_OUTPUT_DATA",
    "ARITH_SECOND_ZERO",
    "ARITH_USE_CARRY",
    "FIRST_UNIT_OPCODE",
    "FLAG_BITS",
    "FP_FMT64",
    "FP_NEGATE",
    "FLAG_CARRY",
    "FLAG_ERROR",
    "FLAG_NEGATIVE",
    "FLAG_OVERFLOW",
    "FLAG_PARITY",
    "FLAG_ZERO",
    "IMMEDIATE_OPCODES",
    "ArithOp",
    "LogicOp",
    "Opcode",
]

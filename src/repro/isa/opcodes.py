"""Opcode and variety-code definitions.

Framework primitives (opcodes ``0x00–0x0F``) execute inside the RTM's own
pipeline ("General management primitives, e.g. copying data from one
register to another, are provided by the framework and executed directly in
the main pipeline", thesis §1.3.1).  Opcodes ``>= 0x10`` are *user
instructions* dispatched to functional units via the functional-unit table;
the thesis's arithmetic-unit case study sits at function code 16 (Table 3.1
"Function code: 16"), which anchors our numbering.

The arithmetic unit is a **single adder datapath steered by six variety
bits** — exactly the structure of thesis Table 3.1, whose columns are the
modifier bits ("Use carry flag", "Fixed carry", "Output data", "First input
zero", "Second input zero", "Complement second input") and whose rows (ADD,
ADC, SUB, SBB, INC, DEC, NEG, CMP, CMPB) are particular bit patterns.
"""

from __future__ import annotations

from enum import IntEnum


class Opcode(IntEnum):
    """Major opcodes (instruction word bits ``[63:56]``)."""

    # -- framework primitives (executed in the RTM execution stage) -----------
    NOP = 0x00
    HALT = 0x01
    COPY = 0x02      # R[dst1] := R[src1]
    CPFLAG = 0x03    # F[dst_flag] := F[src_flag]
    GET = 0x04       # emit data record (tag=variety) carrying R[src1]
    GETF = 0x05      # emit flag vector (tag=variety) carrying F[src_flag]
    LOADI = 0x06     # R[dst1] := imm32
    LOADIS = 0x07    # R[dst1] := (R[dst1] << 32) | imm32   (build wide words)
    FENCE = 0x08     # stall until every register lock is released
    SETF = 0x09      # F[dst_flag] := variety (immediate flag write)

    # -- default functional-unit codes (configurable via the FU table) --------
    ARITH = 0x10     # thesis Table 3.1 — "Function code: 16"
    LOGIC = 0x11     # thesis Table 3.2
    XISORT = 0x12    # stateful ξ-sort case study
    SCAN = 0x13      # smart-memory prefix scan / reduce unit
    HISTO = 0x14     # smart-memory histogram unit
    MATCH = 0x15     # smart-memory streaming string-match unit
    FPADD = 0x16     # pipelined floating-point adder/subtractor
    FPMUL = 0x17     # pipelined floating-point multiplier
    FPFMA = 0x18     # pipelined fused multiply-add (accumulates into dst1)

    @property
    def is_primitive(self) -> bool:
        return self.value < FIRST_UNIT_OPCODE


#: Opcodes below this value are framework primitives; at or above, FU dispatches.
FIRST_UNIT_OPCODE = 0x10

#: Opcodes that use the immediate instruction format.
IMMEDIATE_OPCODES = frozenset({Opcode.LOADI, Opcode.LOADIS})


# ---------------------------------------------------------------------------
# Arithmetic unit variety bits (thesis Table 3.1 columns)
# ---------------------------------------------------------------------------

ARITH_USE_CARRY = 0x01       # carry-in taken from the source flag register
ARITH_FIXED_CARRY = 0x02     # carry-in forced to 1 (when not using the flag)
ARITH_OUTPUT_DATA = 0x04     # write the sum to dst1 (clear for CMP/CMPB)
ARITH_FIRST_ZERO = 0x08      # operand A forced to zero
ARITH_SECOND_ZERO = 0x10     # operand B forced to zero (before complement)
ARITH_COMPL_SECOND = 0x20    # operand B bitwise complemented


class ArithOp(IntEnum):
    """Table 3.1 rows, expressed as variety-bit patterns over one datapath."""

    ADD = ARITH_OUTPUT_DATA                                            # a + b
    ADC = ARITH_OUTPUT_DATA | ARITH_USE_CARRY                          # a + b + cf
    SUB = ARITH_OUTPUT_DATA | ARITH_COMPL_SECOND | ARITH_FIXED_CARRY   # a + ~b + 1
    SBB = ARITH_OUTPUT_DATA | ARITH_COMPL_SECOND | ARITH_USE_CARRY     # a + ~b + cf
    INC = ARITH_OUTPUT_DATA | ARITH_SECOND_ZERO | ARITH_FIXED_CARRY    # a + 0 + 1
    DEC = ARITH_OUTPUT_DATA | ARITH_SECOND_ZERO | ARITH_COMPL_SECOND   # a + ~0
    NEG = (ARITH_OUTPUT_DATA | ARITH_FIRST_ZERO                        # 0 + ~b + 1
           | ARITH_COMPL_SECOND | ARITH_FIXED_CARRY)
    CMP = ARITH_COMPL_SECOND | ARITH_FIXED_CARRY                       # flags of a - b
    CMPB = ARITH_COMPL_SECOND | ARITH_USE_CARRY                        # flags of a - b - !cf


# ---------------------------------------------------------------------------
# Logic unit varieties (thesis Table 3.2; exact rows reconstructed)
# ---------------------------------------------------------------------------

class LogicOp(IntEnum):
    """Bitwise operations of the logic unit.

    The thesis lists "a variety of basic bitwise logic operations", applied
    to both source operands (two-input ops) or the first operand only
    (one-input ops); the precise row set of Table 3.2 is not legible in the
    published scan, so this is the canonical two/one-input Boolean family.
    """

    AND = 0x00
    OR = 0x01
    XOR = 0x02
    NOT = 0x03     # ~a (one-input)
    NAND = 0x04
    NOR = 0x05
    XNOR = 0x06
    ANDN = 0x07    # a & ~b
    ORN = 0x08     # a | ~b
    PASS = 0x09    # a (one-input; register move through the unit)


# ---------------------------------------------------------------------------
# Floating-point unit variety bits (multi-word formats via the variety field)
# ---------------------------------------------------------------------------

FP_FMT64 = 0x01    # operands/result are binary64 (needs word_bits >= 64)
FP_NEGATE = 0x02   # adder: subtract (negate b); FMA: negate the product


# ---------------------------------------------------------------------------
# Flag vector bit assignments
# ---------------------------------------------------------------------------

FLAG_CARRY = 0x01      # carry out of the adder (borrow convention: 1 = no borrow)
FLAG_ZERO = 0x02       # result equal to zero
FLAG_NEGATIVE = 0x04   # most significant bit of the result
FLAG_OVERFLOW = 0x08   # signed (two's complement) overflow
FLAG_ERROR = 0x10      # exceptional condition (thesis §3.2.1, e.g. divide by zero)
FLAG_PARITY = 0x20     # even parity of the result (logic unit)

FLAG_BITS = 8

"""A small textual assembler for RTM instruction streams.

The paper treats RTM programming as "software design, considerably simpler
than designing a dedicated interface from the ground up" (§V).  This
assembler provides that software surface: a line-oriented syntax that
compiles directly to 64-bit instruction words.

Syntax (one instruction per line; ``;`` or ``#`` start a comment)::

    nop | halt | fence
    copy   rD, rS
    cpflag fD, fS
    get    rS [, tag]
    getf   fS [, tag]
    loadi  rD, imm
    loadis rD, imm
    setf   fD, imm
    add    rD, rA, rB            [-> fD]
    adc    rD, rA, rB, fC        [-> fD]
    sub    rD, rA, rB            [-> fD]
    sbb    rD, rA, rB, fC        [-> fD]
    inc    rD, rA                [-> fD]
    dec    rD, rA                [-> fD]
    neg    rD, rB                [-> fD]
    cmp    rA, rB                [-> fD]
    cmpb   rA, rB, fC            [-> fD]
    and|or|xor|nand|nor|xnor|andn|orn  rD, rA, rB   [-> fD]
    not|pass rD, rA              [-> fD]
    unit   code, variety [, rD [, rA [, rB]]] [-> fD]

Registers are ``rN``, flag registers ``fN``; immediates accept decimal,
hex (``0x``) and binary (``0b``).
"""

from __future__ import annotations

import re
from typing import Callable

from . import instructions as ins
from .encoding import Instruction

_COMMENT = re.compile(r"[;#].*$")
_ARROW = re.compile(r"->\s*f(\d+)\s*$")


class AssemblerError(ValueError):
    def __init__(self, lineno: int, line: str, message: str):
        self.lineno = lineno
        super().__init__(f"line {lineno}: {message}: {line.strip()!r}")


def _parse_int(tok: str) -> int:
    return int(tok, 0)


def _parse_reg(tok: str) -> int:
    m = re.fullmatch(r"r(\d+)", tok)
    if not m:
        raise ValueError(f"expected register rN, got {tok!r}")
    return int(m.group(1))


def _parse_flag(tok: str) -> int:
    m = re.fullmatch(r"f(\d+)", tok)
    if not m:
        raise ValueError(f"expected flag register fN, got {tok!r}")
    return int(m.group(1))


def _three_reg(builder: Callable[..., Instruction]):
    def build(args: list[str], dst_flag: int) -> Instruction:
        d, a, b = (_parse_reg(t) for t in args)
        return builder(d, a, b, dst_flag=dst_flag)

    return build


def _three_reg_flag(builder: Callable[..., Instruction]):
    def build(args: list[str], dst_flag: int) -> Instruction:
        d, a, b = (_parse_reg(t) for t in args[:3])
        cf = _parse_flag(args[3])
        return builder(d, a, b, cf, dst_flag=dst_flag)

    return build


def _two_reg(builder: Callable[..., Instruction]):
    def build(args: list[str], dst_flag: int) -> Instruction:
        d, a = (_parse_reg(t) for t in args)
        return builder(d, a, dst_flag=dst_flag)

    return build


def _build_nullary(builder):
    return lambda args, dst_flag: builder()


def _build_copy(args, dst_flag):
    return ins.copy(_parse_reg(args[0]), _parse_reg(args[1]))


def _build_cpflag(args, dst_flag):
    return ins.cpflag(_parse_flag(args[0]), _parse_flag(args[1]))


def _build_get(args, dst_flag):
    tag = _parse_int(args[1]) if len(args) > 1 else 0
    return ins.get(_parse_reg(args[0]), tag)


def _build_getf(args, dst_flag):
    tag = _parse_int(args[1]) if len(args) > 1 else 0
    return ins.getf(_parse_flag(args[0]), tag)


def _build_loadi(args, dst_flag):
    return ins.loadi(_parse_reg(args[0]), _parse_int(args[1]))


def _build_loadis(args, dst_flag):
    return ins.loadis(_parse_reg(args[0]), _parse_int(args[1]))


def _build_setf(args, dst_flag):
    return ins.setf(_parse_flag(args[0]), _parse_int(args[1]))


def _build_cmp(args, dst_flag):
    return ins.cmp(_parse_reg(args[0]), _parse_reg(args[1]), dst_flag=dst_flag)


def _build_cmpb(args, dst_flag):
    return ins.cmpb(
        _parse_reg(args[0]), _parse_reg(args[1]), _parse_flag(args[2]), dst_flag=dst_flag
    )


def _build_unit(args, dst_flag):
    code = _parse_int(args[0])
    variety = _parse_int(args[1])
    regs = [_parse_reg(t) for t in args[2:5]]
    regs += [0] * (3 - len(regs))
    return ins.dispatch(
        code, variety, dst1=regs[0], src1=regs[1], src2=regs[2], dst_flag=dst_flag
    )


def _xi(variety_name: str, **field_order):
    """Builder factory for ξ-sort mnemonics (variety looked up lazily to
    keep :mod:`repro.isa` free of a package cycle with :mod:`repro.xisort`)."""

    def build(args, dst_flag):
        from ..xisort import microcode as xi
        from .opcodes import Opcode

        variety = getattr(xi, variety_name)
        fields = {}
        for (field, parser), tok in zip(field_order.items(), args):
            fields[field] = _parse_reg(tok) if parser == "r" else _parse_int(tok)
        return ins.dispatch(Opcode.XISORT, variety, dst_flag=dst_flag, **fields)

    return build


_MNEMONICS: dict[str, Callable[[list[str], int], Instruction]] = {
    "nop": _build_nullary(ins.nop),
    "halt": _build_nullary(ins.halt),
    "fence": _build_nullary(ins.fence),
    "copy": _build_copy,
    "cpflag": _build_cpflag,
    "get": _build_get,
    "getf": _build_getf,
    "loadi": _build_loadi,
    "loadis": _build_loadis,
    "setf": _build_setf,
    "add": _three_reg(ins.add),
    "adc": _three_reg_flag(ins.adc),
    "sub": _three_reg(ins.sub),
    "sbb": _three_reg_flag(ins.sbb),
    "inc": _two_reg(ins.inc),
    "dec": _two_reg(ins.dec),
    "neg": _two_reg(ins.neg),
    "cmp": _build_cmp,
    "cmpb": _build_cmpb,
    "and": _three_reg(ins.and_),
    "or": _three_reg(ins.or_),
    "xor": _three_reg(ins.xor),
    "nand": _three_reg(ins.nand),
    "nor": _three_reg(ins.nor),
    "xnor": _three_reg(ins.xnor),
    "andn": _three_reg(ins.andn),
    "orn": _three_reg(ins.orn),
    "not": _two_reg(ins.not_),
    "pass": _two_reg(ins.pass_),
    "unit": _build_unit,
    # ξ-sort case-study mnemonics (opcode 0x12; see repro.xisort.microcode)
    "xi.reset": _xi("XI_RESET"),
    "xi.load": _xi("XI_LOAD", src1="r", src2="r"),
    "xi.split": _xi("XI_SPLIT", dst1="r", src1="r", src2="r"),
    "xi.findpivot": _xi("XI_FIND_PIVOT", dst1="r", dst2="r"),
    "xi.findpivotat": _xi("XI_FIND_PIVOT_AT", dst1="r", dst2="r", src1="r"),
    "xi.readat": _xi("XI_READ_AT", dst1="r", src1="r"),
    "xi.writeat": _xi("XI_WRITE_AT", src1="r", src2="r"),
    "xi.status": _xi("XI_STATUS", dst1="r"),
    "xi.rank": _xi("XI_RANK", dst1="r", src1="r"),
    "xi.counteq": _xi("XI_COUNT_EQ", dst1="r", src1="r"),
}


def assemble_line(line: str, lineno: int = 0) -> Instruction | None:
    """Assemble one source line; returns None for blank/comment lines."""
    text = _COMMENT.sub("", line).strip()
    if not text:
        return None
    dst_flag = 0
    arrow = _ARROW.search(text)
    if arrow:
        dst_flag = int(arrow.group(1))
        text = text[: arrow.start()].strip().rstrip(",")
    parts = text.split(None, 1)
    mnemonic = parts[0].lower()
    args = [t.strip() for t in parts[1].split(",")] if len(parts) > 1 else []
    builder = _MNEMONICS.get(mnemonic)
    if builder is None:
        raise AssemblerError(lineno, line, f"unknown mnemonic {mnemonic!r}")
    try:
        return builder(args, dst_flag)
    except (ValueError, IndexError) as exc:
        raise AssemblerError(lineno, line, str(exc)) from exc


def assemble(source: str) -> list[Instruction]:
    """Assemble a multi-line program into a list of instructions."""
    program: list[Instruction] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        instr = assemble_line(line, lineno)
        if instr is not None:
            program.append(instr)
    return program

"""Instruction → assembler-text disassembly (round-trips with the assembler)."""

from __future__ import annotations

from .encoding import Instruction, decode
from .opcodes import ArithOp, LogicOp, Opcode

_ARITH_NAMES = {int(op): op.name.lower() for op in ArithOp}
_LOGIC_NAMES = {int(op): op.name.lower() for op in LogicOp}


def _flag_suffix(instr: Instruction) -> str:
    return f" -> f{instr.dst_flag}" if instr.dst_flag else ""


def _disassemble_arith(instr: Instruction) -> str:
    name = _ARITH_NAMES.get(instr.variety)
    if name is None:
        return _disassemble_unit(instr)
    suffix = _flag_suffix(instr)
    if name in ("add", "sub"):
        return f"{name} r{instr.dst1}, r{instr.src1}, r{instr.src2}{suffix}"
    if name in ("adc", "sbb"):
        return f"{name} r{instr.dst1}, r{instr.src1}, r{instr.src2}, f{instr.src_flag}{suffix}"
    if name in ("inc", "dec"):
        return f"{name} r{instr.dst1}, r{instr.src1}{suffix}"
    if name == "neg":
        return f"neg r{instr.dst1}, r{instr.src2}{suffix}"
    if name == "cmp":
        return f"cmp r{instr.src1}, r{instr.src2}{suffix}"
    if name == "cmpb":
        return f"cmpb r{instr.src1}, r{instr.src2}, f{instr.src_flag}{suffix}"
    return _disassemble_unit(instr)


def _disassemble_logic(instr: Instruction) -> str:
    name = _LOGIC_NAMES.get(instr.variety)
    if name is None:
        return _disassemble_unit(instr)
    suffix = _flag_suffix(instr)
    if name in ("not", "pass"):
        return f"{name} r{instr.dst1}, r{instr.src1}{suffix}"
    return f"{name} r{instr.dst1}, r{instr.src1}, r{instr.src2}{suffix}"


def _disassemble_unit(instr: Instruction) -> str:
    text = f"unit {instr.opcode:#x}, {instr.variety:#x}"
    text += f", r{instr.dst1}, r{instr.src1}, r{instr.src2}"
    return text + _flag_suffix(instr)


def _disassemble_xisort(instr: Instruction) -> str:
    from ..xisort import microcode as xi

    suffix = _flag_suffix(instr)
    v = instr.variety
    if v == xi.XI_RESET:
        return f"xi.reset{suffix}"
    if v == xi.XI_LOAD:
        return f"xi.load r{instr.src1}, r{instr.src2}{suffix}"
    if v == xi.XI_SPLIT:
        return f"xi.split r{instr.dst1}, r{instr.src1}, r{instr.src2}{suffix}"
    if v == xi.XI_FIND_PIVOT:
        return f"xi.findpivot r{instr.dst1}, r{instr.dst2}{suffix}"
    if v == xi.XI_FIND_PIVOT_AT:
        return f"xi.findpivotat r{instr.dst1}, r{instr.dst2}, r{instr.src1}{suffix}"
    if v == xi.XI_READ_AT:
        return f"xi.readat r{instr.dst1}, r{instr.src1}{suffix}"
    if v == xi.XI_WRITE_AT:
        return f"xi.writeat r{instr.src1}, r{instr.src2}{suffix}"
    if v == xi.XI_STATUS:
        return f"xi.status r{instr.dst1}{suffix}"
    if v == xi.XI_RANK:
        return f"xi.rank r{instr.dst1}, r{instr.src1}{suffix}"
    if v == xi.XI_COUNT_EQ:
        return f"xi.counteq r{instr.dst1}, r{instr.src1}{suffix}"
    return _disassemble_unit(instr)


def disassemble(instr: Instruction) -> str:
    """Render one instruction as assembler text."""
    op = instr.opcode
    if op == Opcode.NOP:
        return "nop"
    if op == Opcode.HALT:
        return "halt"
    if op == Opcode.FENCE:
        return "fence"
    if op == Opcode.COPY:
        return f"copy r{instr.dst1}, r{instr.src1}"
    if op == Opcode.CPFLAG:
        return f"cpflag f{instr.dst_flag}, f{instr.src_flag}"
    if op == Opcode.GET:
        return f"get r{instr.src1}, {instr.variety}"
    if op == Opcode.GETF:
        return f"getf f{instr.src_flag}, {instr.variety}"
    if op == Opcode.LOADI:
        return f"loadi r{instr.dst1}, {instr.imm:#x}"
    if op == Opcode.LOADIS:
        return f"loadis r{instr.dst1}, {instr.imm:#x}"
    if op == Opcode.SETF:
        return f"setf f{instr.dst_flag}, {instr.variety:#x}"
    if op == Opcode.ARITH:
        return _disassemble_arith(instr)
    if op == Opcode.LOGIC:
        return _disassemble_logic(instr)
    if op == Opcode.XISORT:
        return _disassemble_xisort(instr)
    return _disassemble_unit(instr)


def disassemble_word(word: int) -> str:
    """Decode and render a raw 64-bit instruction word."""
    return disassemble(decode(word))


def disassemble_program(instrs) -> str:
    """Render an instruction sequence as a program listing."""
    return "\n".join(disassemble(i) for i in instrs)

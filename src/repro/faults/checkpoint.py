"""Architectural-state checkpoints for host-driven rollback-replay.

A checkpoint captures everything a quiescent coprocessor would need to
resume as if freshly programmed: the register file, the flag file, the
halt latch, and every smart-memory array's per-cell payload.  It is
taken only at *quiescent* points — engine idle, coprocessor not busy,
no latent taint — so locks are free, pipelines empty and FSMs parked,
none of which therefore needs capturing.

Restores go through the elements' backdoor load paths, which also
resynchronise the ECC shadows (:meth:`Protected.on_load`), so a restore
can never inherit a stale syndrome.
"""

from __future__ import annotations

from dataclasses import dataclass


def _arrays(soc) -> dict:
    """Every smart-memory array under the system, keyed by path."""
    # Imported here, not at module level: the smem package pulls in the
    # host/session layer, which imports the system builder, which imports
    # this package — a cycle at import time but not at call time.
    from ..smem.array import StructuralSmartArray, VectorSmartArray

    found = {}
    for comp in soc.walk():
        if isinstance(comp, (VectorSmartArray, StructuralSmartArray)):
            found[comp.path] = comp
    return found


@dataclass(frozen=True)
class Checkpoint:
    """One quiescent-point snapshot of the coprocessor's architectural state."""

    regs: tuple
    flags: tuple
    halted: int
    arrays: dict  # path → tuple of per-cell state objects (frozen dataclasses)
    cycle: int = 0


def snapshot_state(soc, cycle: int = 0) -> Checkpoint:
    """Capture the architectural state of a quiescent coprocessor.

    Under register renaming the *architectural* view is captured — each
    architectural index read through the rename map — because a restore
    lands on a freshly reset machine whose map is the identity.
    """
    rtm = soc.rtm
    return Checkpoint(
        regs=tuple(rtm.arch_registers()),
        flags=tuple(rtm.arch_flags()),
        halted=1 if rtm.halted else 0,
        arrays={path: tuple(arr.states()) for path, arr in _arrays(soc).items()},
        cycle=cycle,
    )


def restore_state(soc, ckpt: Checkpoint) -> None:
    """Load a checkpoint back into a freshly reset coprocessor."""
    rtm = soc.rtm
    rtm.load_arch_registers(ckpt.regs)
    rtm.load_arch_flags(ckpt.flags)
    rtm.execution.halted.force(1 if ckpt.halted else 0)
    arrays = _arrays(soc)
    for path, states in ckpt.arrays.items():
        arrays[path].load_states(list(states))
